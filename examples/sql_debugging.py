"""Debugging a realistic SQL grammar with counterexamples.

A language-design session: we extend the corpus SQL grammar with a few
"obviously useful" rules, watch the conflicts appear, and use the
counterexamples to understand and fix each defect — the workflow the
paper argues counterexamples enable.

Run with::

    python examples/sql_debugging.py
"""

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder, format_report, format_symbols
from repro.corpus.inject import add_rules
from repro.corpus.sql import sql_base_text
from repro.grammar import load_grammar


def analyse(title: str, text: str) -> None:
    print(f"=== {title} ===")
    grammar = load_grammar(text, name=title)
    automaton = build_lalr(grammar)
    if not automaton.conflicts:
        print("no conflicts — LALR(1)\n")
        return
    finder = CounterexampleFinder(automaton, time_limit=5.0)
    for report in finder.explain_all().reports:
        print(format_report(report))
        print()


def main() -> None:
    base = sql_base_text()
    analyse("base SQL grammar", base)

    # Defect 1: "JOIN should nest on both sides, right?"
    # The counterexample shows t1 JOIN t2 ON c JOIN t3 ON c parses two
    # ways; the fix is to keep the join left-recursive.
    analyse(
        "after adding join_ref JOIN join_ref",
        add_rules(base, "join_ref : join_ref JOIN join_ref ON cond ;"),
    )

    # Defect 2: "WHEN clauses should allow a per-clause ELSE."
    # The counterexample is the dangling else in CASE clothing.
    analyse(
        "after adding a per-WHEN ELSE",
        add_rules(base, "when_clause : WHEN cond THEN expr ELSE expr ;"),
    )

    # Defect 3: a careless duplicate rule — classic reduce/reduce.
    analyse(
        "after duplicating the DROP TABLE name rule",
        add_rules(base, "drop_stmt : DROP TABLE qualified ;\nqualified : ID ;"),
    )


if __name__ == "__main__":
    main()
