"""Quickstart: define a grammar, find its conflicts, read the counterexamples.

Run with::

    python examples/quickstart.py
"""

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder, format_report
from repro.grammar import load_grammar

# A yacc-like grammar text. Names used as rule heads are nonterminals;
# everything else (including quoted symbols) is a terminal.
GRAMMAR = """
%grammar quickstart
%start stmt
stmt : IF expr THEN stmt ELSE stmt
     | IF expr THEN stmt
     | ID ':=' expr
     ;
expr : expr '+' expr
     | ID
     | NUM
     ;
"""


def main() -> None:
    grammar = load_grammar(GRAMMAR)
    print(f"grammar {grammar.name!r}: "
          f"{grammar.num_user_nonterminals} nonterminals, "
          f"{grammar.num_user_productions} productions")

    # Build the LALR(1) automaton; conflicts are detected during table
    # construction.
    automaton = build_lalr(grammar)
    print(f"LALR automaton: {len(automaton.states)} states, "
          f"{len(automaton.conflicts)} conflicts\n")

    # Explain every conflict with a counterexample (paper time policy:
    # 5 s per conflict, 2 minutes total for the unifying searches).
    finder = CounterexampleFinder(automaton)
    for report in finder.explain_all().reports:
        print(format_report(report))
        print()

    # The two conflicts here are the dangling else (ambiguous — a
    # unifying counterexample with two derivations) and the missing
    # associativity of '+' (also ambiguous). Both counterexamples are
    # sentential forms: nonterminals stand for themselves, keeping the
    # examples as abstract as the conflict allows (§3.2 of the paper).


if __name__ == "__main__":
    main()
