"""The paper's running example, end to end (Figures 1, 2, 5, 11).

Walks through everything the paper shows for the grammar of Figure 1:

1. the three conflicts, including the "challenging" one of §3.1;
2. the shortest lookahead-sensitive path of Figure 5(a) — and why the
   plain shortest path would be wrong;
3. the unifying counterexamples, including the §3.1 counterexample that
   took an experienced designer "some time" to find by hand;
4. the Figure 11-style report;
5. the fix: resolving the + conflict with %left, and the dangling else
   with an explicit ELSE association.

Run with::

    python examples/dangling_else.py
"""

from repro.automaton import build_lalr
from repro.core import (
    CounterexampleFinder,
    LookaheadSensitiveGraph,
    format_report,
    format_symbols,
    path_prefix_symbols,
)
from repro.grammar import load_grammar

FIGURE1 = """
%grammar figure1
%start stmt
stmt : IF expr THEN stmt ELSE stmt
     | IF expr THEN stmt
     | expr '?' stmt stmt
     | arr '[' expr ']' ':=' expr
     ;
expr : num | expr '+' expr ;
num  : DIGIT | num DIGIT ;
"""

FIXED = """
%grammar figure1-fixed
%start stmt
%nonassoc THEN
%nonassoc ELSE
%left '+'
stmt : IF expr THEN stmt ELSE stmt
     | IF expr THEN stmt %prec THEN
     | expr '?' stmt stmt
     | arr '[' expr ']' ':=' expr
     ;
expr : num | expr '+' expr ;
num  : DIGIT | num DIGIT ;
"""


def main() -> None:
    grammar = load_grammar(FIGURE1)
    automaton = build_lalr(grammar)

    print("=== conflicts (paper §2.2, §3.1) ===")
    for conflict in automaton.conflicts:
        print(f"  {conflict}")
    print()

    # --- The lookahead-sensitive path (Figure 5a) -------------------- #
    graph = LookaheadSensitiveGraph(automaton)
    dangling = next(c for c in automaton.conflicts if str(c.terminal) == "ELSE")
    path = graph.shortest_path(dangling)
    prefix = " ".join(str(s) for s in path_prefix_symbols(path))
    print("=== shortest lookahead-sensitive path to the dangling else ===")
    print(f"prefix: {prefix}")
    print("(the plain shortest path, IF expr THEN stmt, is NOT a valid")
    print(" counterexample: with ELSE next, only the shift is viable)\n")

    # --- Counterexamples for all three conflicts --------------------- #
    print("=== counterexamples (Figure 11 format) ===")
    finder = CounterexampleFinder(automaton)
    for report in finder.explain_all().reports:
        print(format_report(report))
        print()

    # The DIGIT conflict is §3.1's "challenging conflict": the tool finds
    #   expr ? arr [ expr ] := num • DIGIT DIGIT ? stmt stmt
    # automatically — the counterexample an experienced designer needed
    # real effort to construct by hand.

    # --- The fix ------------------------------------------------------ #
    fixed = build_lalr(load_grammar(FIXED))
    print("=== after precedence declarations ===")
    print(f"conflicts remaining: {len(fixed.conflicts)}")
    print("(the + conflict is resolved by %left; the dangling else by the")
    print(" THEN/ELSE precedence pair. The DIGIT conflict is genuinely a")
    print(" language-design problem — the counterexample shows the two")
    print(" statements of 'expr ? stmt stmt' need a delimiter.)")


if __name__ == "__main__":
    main()
