"""Conflicts without ambiguity: nonunifying counterexamples (§2.2, §4).

Not every conflict signals an ambiguous grammar. This example works
through two unambiguous-but-conflicted grammars:

* the paper's Figure 3 grammar, which is LR(2): after ``a`` with another
  ``a`` coming, the parser cannot know whether to reduce ``X -> a`` (the
  next ``a`` starts a new T) or shift toward ``Y -> a a b``;
* a reduce/reduce variant where two nonterminals share a prefix and the
  disambiguating token arrives one step too late.

For these, the tool reports a *nonunifying* counterexample: two derivable
strings sharing the prefix up to the conflict point and diverging after
it — plus the fact that the unifying search exhausted, i.e. no ambiguity
exists along the searched paths. A GLR run confirms every input has at
most one parse.

Run with::

    python examples/unambiguous_nonlalr.py
"""

from repro.automaton import build_lalr
from repro.core import CounterexampleFinder, format_report
from repro.grammar import load_grammar
from repro.parsing import GLRParser

FIGURE3 = """
%grammar figure3
%start S
S : T | S T ;
T : X | Y ;
X : 'a' ;
Y : 'a' 'a' 'b' ;
"""

RR_LR2 = """
%grammar rr-lr2
%start s
s : t 'x' 'p' | u 'x' 'q' ;
t : 'k' ;
u : 'k' ;
"""


def analyse(text: str) -> None:
    grammar = load_grammar(text)
    automaton = build_lalr(grammar)
    print(f"=== {grammar.name} ===")
    finder = CounterexampleFinder(automaton, time_limit=5.0)
    summary = finder.explain_all()
    for report in summary.reports:
        print(format_report(report))
        exhausted = report.stats is not None and report.stats.exhausted
        if exhausted:
            print("(search exhausted: no unifying counterexample exists under")
            print(" the restricted search — the grammar looks unambiguous)")
        print()


def main() -> None:
    analyse(FIGURE3)
    analyse(RR_LR2)

    # GLR confirms unambiguity on concrete inputs: every accepted string
    # has exactly one parse, even though LALR(1) cannot decide locally.
    glr = GLRParser(load_grammar(FIGURE3))
    for tokens in (["a"], ["a", "a", "b"], ["a", "a", "a", "b"], ["a", "a"]):
        parses = glr.parse_all(tokens)
        print(f"GLR parses of {' '.join(tokens)!r}: {len(parses)}")
    print("\nThe right fix here is not precedence but more lookahead or a")
    print("grammar refactoring — which is exactly what the nonunifying")
    print("counterexample's diverging suffixes point at.")


if __name__ == "__main__":
    main()
