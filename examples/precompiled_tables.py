"""Precompiled parse tables: generate once, parse from JSON forever.

A production deployment of a parser generator does not rebuild the
automaton on every run. This example:

1. builds the corpus SQL grammar's LALR tables;
2. serializes them to JSON (`repro.automaton.serialize`);
3. reloads the tables in a fresh parser (no automaton construction) and
   parses real SQL text through the bundled lexer;
4. shows the grammar DSL emitter (`repro.grammar.emit`), the matching
   artifact for the *grammar* itself.

Run with::

    python examples/precompiled_tables.py
"""

import time

from repro.automaton import build_lalr, dump_tables, load_tables
from repro.corpus.lexers import sql_lexer
from repro.corpus.sql import sql_base
from repro.grammar import dump_grammar
from repro.parsing import LRParser

QUERY = """
SELECT name, COUNT(*) AS orders
FROM customers c JOIN orders o ON c.id = o.customer
WHERE o.amount > 100 AND NOT o.status IS NULL
GROUP BY name
ORDER BY orders DESC ;
"""


def main() -> None:
    # --- 1. Build once -------------------------------------------------- #
    started = time.monotonic()
    grammar = sql_base()
    automaton = build_lalr(grammar)
    build_time = time.monotonic() - started
    print(f"built LALR automaton: {len(automaton.states)} states "
          f"in {build_time:.2f}s")

    # --- 2. Serialize --------------------------------------------------- #
    payload = dump_tables(automaton)
    print(f"serialized tables: {len(payload) / 1024:.0f} KiB of JSON")

    # --- 3. Reload and parse ------------------------------------------- #
    started = time.monotonic()
    tables, loaded_grammar = load_tables(payload)
    parser = LRParser.from_tables(tables, loaded_grammar)
    load_time = time.monotonic() - started
    print(f"reloaded tables in {load_time * 1000:.1f}ms "
          f"({build_time / max(load_time, 1e-9):.0f}x faster than building)")

    tokens = sql_lexer().tokenize(QUERY)
    tree = parser.parse(tokens)
    print(f"parsed {len(tokens)} tokens; parse tree has {tree.size()} nodes")

    # --- 4. The grammar artifact ---------------------------------------- #
    text = dump_grammar(grammar)
    first_lines = "\n".join(text.splitlines()[:6])
    print("\nemitted grammar DSL (first lines):")
    print(first_lines)
    print("...")


if __name__ == "__main__":
    main()
