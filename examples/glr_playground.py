"""GLR, brute force, and counterexamples on the same ambiguity (§8).

The paper situates its static counterexamples against two dynamic
approaches: GLR parsing (which forks at conflicts and surfaces ambiguity
only when an ambiguous *input* arrives) and enumeration-based detection
(which searches for an ambiguous input blindly). This example runs all
three on one grammar so the trade-offs are visible:

* the counterexample finder explains each conflict statically and
  instantly, at parser-construction time;
* GLR demonstrates the cost of postponing: Catalan-number parse forests;
* brute-force enumeration finds a witness, but only by checking
  sentences one at a time.

Run with::

    python examples/glr_playground.py
"""

from repro.automaton import build_lalr
from repro.baselines import find_ambiguity
from repro.core import CounterexampleFinder, format_symbols
from repro.grammar import GrammarAnalysis, load_grammar
from repro.parsing import GLRParser

GRAMMAR = """
%grammar playground
%start e
e : e '+' e | e '*' e | '(' e ')' | NUM ;
"""


def main() -> None:
    grammar = load_grammar(GRAMMAR)
    automaton = build_lalr(grammar)

    # --- 1. Static counterexamples ------------------------------------ #
    print("=== counterexamples (static, parser-construction time) ===")
    finder = CounterexampleFinder(automaton)
    examples = []
    for report in finder.explain_all().reports:
        example = report.counterexample
        examples.append(example)
        print(f"  {example.conflict.terminal}: "
              f"{format_symbols(example.example1())}  "
              f"(unifying nonterminal: {example.nonterminal})")
    print()

    # --- 2. GLR: pay at parse time ------------------------------------ #
    print("=== GLR parse forests (dynamic, per input) ===")
    glr = GLRParser(automaton)
    for n in range(1, 6):
        tokens = ["NUM"] + ["+", "NUM"] * n
        forest = glr.parse_all(tokens)
        print(f"  NUM {'+ NUM ' * n}-> {len(forest)} parses")
    print("  (Catalan growth: the ambiguity the counterexamples predicted)\n")

    # --- 3. Brute force: search for a witness -------------------------- #
    print("=== brute-force enumeration (AMBER-style) ===")
    result = find_ambiguity(grammar, max_length=7, time_limit=30)
    print(f"  {result}\n")

    # --- 4. Instantiating a counterexample ----------------------------- #
    # A unifying counterexample is a sentential form; replacing each
    # nonterminal leaf by any of its derivations yields a concrete
    # ambiguous sentence.
    analysis = GrammarAnalysis(grammar)
    example = examples[0]
    tokens = []
    for symbol in example.example1_symbols():
        tokens.extend(analysis.shortest_expansion(symbol))
    forest = glr.parse_all(tokens)
    print("=== instantiating the first counterexample ===")
    print(f"  {format_symbols(example.example1())}  ->  {' '.join(map(str, tokens))}")
    print(f"  GLR parses of the instantiation: {len(forest)} (>= 2: ambiguous)")


if __name__ == "__main__":
    main()
