#!/usr/bin/env python3
"""CI smoke sweep for the grammar-analysis service.

Boots the real server as a subprocess (the same entry CI users run:
``repro-conflicts serve``) and drives the full supervised lifecycle over
actual HTTP:

1. a healthy grammar completes, and a repeat submission proves the warm
   automaton cache (no ``automaton`` build phase the second time);
2. a poison grammar — crash-injected via ``REPRO_FAULTS`` with a
   ``match`` filter — exhausts its retries, trips its circuit breaker,
   and is breaker-rejected on resubmission, while healthy traffic keeps
   flowing;
3. SIGTERM drains the server: it exits 0 with no tracebacks;
4. ``kill -9`` mid-job, then a restart on the same journal, resumes the
   interrupted job to completion with no duplicate side effects.

Exits nonzero (with a diagnostic) on the first failed check.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HEALTHY = """
%grammar healthy
%start S
S : T | S T ;
T : X | Y ;
X : 'a' ;
Y : 'a' 'a' 'b' ;
"""

POISON = HEALTHY.replace("%grammar healthy", "%grammar poison").replace(
    "'b'", "'c'"
)

SLOW_OPTIONS = {"chaos_sleep_s": 30.0}


#: Every live server subprocess, so an aborting check can reap them.
#: Without this, fail() used to sys.exit() over running servers: the
#: orphans kept appending to journals inside a directory the sweep was
#: tearing down, stranding half-written journal temp files (and the
#: server processes themselves) behind the exiting script.
_LIVE_SERVERS: list["Server"] = []


def _reap_servers() -> None:
    for server in _LIVE_SERVERS:
        if server.process.poll() is None:
            server.process.kill()
            try:
                server.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass


def fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    _reap_servers()
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"  ok: {message}")


class Server:
    """One ``repro-conflicts serve`` subprocess."""

    def __init__(self, workdir: str, extra_env: dict | None = None, **flags):
        os.makedirs(workdir, exist_ok=True)
        self.workdir = workdir
        args = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--journal",
            os.path.join(workdir, "journal.jsonl"),
            "--cache-dir",
            os.path.join(workdir, "cache"),
        ]
        for flag, value in flags.items():
            args.extend([f"--{flag.replace('_', '-')}", str(value)])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        env.update(extra_env or {})
        self.process = subprocess.Popen(
            args,
            cwd=workdir,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        _LIVE_SERVERS.append(self)
        self.port = self._await_port()

    def _await_port(self) -> int:
        deadline = time.time() + 30.0
        assert self.process.stdout is not None
        while time.time() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            if line.startswith("listening on http://"):
                return int(line.rsplit(":", 1)[1])
        out, err = self.process.communicate(timeout=5)
        fail(f"server never announced its port.\nstdout:{out}\nstderr:{err}")
        raise AssertionError  # unreachable

    def request(self, method: str, path: str, body: dict | None = None):
        url = f"http://127.0.0.1:{self.port}{path}"
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(url, data=data, method=method)
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def analyze(self, grammar: str, name: str, wait: float = 90.0, **options):
        body = {"grammar": grammar, "name": name}
        if options:
            body["options"] = options
        return self.request("POST", f"/v1/analyze?wait={wait}", body)

    def stop(self, sig=signal.SIGTERM, timeout: float = 30.0):
        self.process.send_signal(sig)
        try:
            out, err = self.process.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            out, err = self.process.communicate()
            fail("server did not exit after signal")
        if self in _LIVE_SERVERS:
            _LIVE_SERVERS.remove(self)
        return self.process.returncode, out, err


def phase_healthy_and_cache(workdir: str) -> None:
    print("phase 1: healthy grammar + warm cache")
    server = Server(workdir)
    try:
        status, first = server.analyze(HEALTHY, "healthy")
        check(status == 200, f"healthy analysis returns 200 (got {status})")
        check(first["state"] == "completed", "healthy job completes")
        check(first["result"]["conflicts"] == 1, "conflict is reported")
        phases = first["result"]["phases"]
        check(
            any(p == "automaton" or p.startswith("automaton/") for p in phases),
            "cold run builds the automaton",
        )
        status, second = server.analyze(HEALTHY, "healthy")
        check(second["state"] == "completed", "repeat submission completes")
        phases = second["result"]["phases"]
        check(
            not any(p == "automaton" or p.startswith("automaton/") for p in phases),
            "warm run has no automaton build phase (cache hit)",
        )
        check("cache/decode" in phases, "warm run decoded the cached entry")
        status, health = server.request("GET", "/healthz")
        check(status == 200, "/healthz answers")
        for key in ("queue_depth", "breakers", "retries", "admission"):
            check(key in health, f"/healthz reports {key}")
    finally:
        code, out, err = server.stop()
        check(code == 0, f"clean SIGTERM exit (got {code})")
        check("Traceback" not in err, "no tracebacks on stderr")
        check("shutdown complete" in out, "drain reported on stdout")


def phase_poison_breaker(workdir: str) -> None:
    print("phase 2: poison grammar trips its breaker; fleet stays healthy")
    faults = json.dumps(
        [
            {
                "point": "worker",
                "kind": "crash",
                "count": 1000000,
                "match": "poison",
            }
        ]
    )
    server = Server(
        workdir,
        extra_env={"REPRO_FAULTS": faults},
        retry_attempts=2,
        breaker_threshold=2,
        breaker_cooldown=300,
    )
    try:
        status, poisoned = server.analyze(POISON, "poison")
        check(poisoned["state"] == "degraded", "poison job degrades, not lost")
        check(
            poisoned["result"]["degradation"]["error_type"] == "RetriesExhausted",
            "degradation names exhausted retries",
        )
        status, rejected = server.analyze(POISON, "poison")
        check(
            rejected["result"]["degradation"]["error_type"] == "CircuitBreakerOpen",
            "resubmission is breaker-rejected",
        )
        check(rejected["attempts"] == 0, "breaker rejection burns no workers")
        status, healthy = server.analyze(HEALTHY, "healthy")
        check(healthy["state"] == "completed", "healthy traffic unaffected")
        _, health = server.request("GET", "/healthz")
        check(health["breakers"]["open"] >= 1, "/healthz shows the open breaker")
        check(
            health["retries"].get("failure.crash", 0) >= 2,
            "/healthz shows crash retry counters",
        )
    finally:
        code, _, err = server.stop()
        check(code == 0, f"clean exit with a tripped breaker (got {code})")
        check("Traceback" not in err, "no tracebacks on stderr")


def phase_kill9_resume(workdir: str) -> None:
    print("phase 3: kill -9 mid-job, restart resumes the journal")
    server = Server(workdir, drain_timeout=5)
    status, accepted = server.analyze(
        HEALTHY, "interrupted", wait=0, **SLOW_OPTIONS
    )
    check(status == 202, "slow job accepted")
    job_id = accepted["id"]
    deadline = time.time() + 30.0
    while time.time() < deadline:
        _, snapshot = server.request("GET", f"/v1/jobs/{job_id}")
        if snapshot["state"] == "running":
            break
        time.sleep(0.1)
    check(snapshot["state"] == "running", "job reached running before the kill")
    server.process.kill()  # SIGKILL: no drain, no checkpoint
    server.process.wait(timeout=10)

    restarted = Server(workdir)
    try:
        _, replayed = restarted.request("GET", f"/v1/jobs/{job_id}")
        check(
            replayed["state"] in ("queued", "running", "completed"),
            f"journal resumed the interrupted job (state={replayed['state']})",
        )
        deadline = time.time() + 120.0
        while time.time() < deadline:
            _, final = restarted.request("GET", f"/v1/jobs/{job_id}")
            if final["state"] not in ("queued", "running"):
                break
            time.sleep(0.5)
        check(
            final["state"] == "completed",
            f"resumed job completed (state={final['state']})",
        )
        _, health = restarted.request("GET", "/healthz")
        check(health["resumed"] == 1, "exactly one job was resumed (no dupes)")
    finally:
        code, _, err = restarted.stop()
        check(code == 0, f"clean exit after resume (got {code})")
        check("Traceback" not in err, "no tracebacks on stderr")


def main() -> int:
    # The resumed job re-runs its synthetic sleep; keep it short enough
    # for CI but long enough to straddle the kill.
    SLOW_OPTIONS["chaos_sleep_s"] = 8.0
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as workdir:
        phase_healthy_and_cache(os.path.join(workdir, "p1"))
        phase_poison_breaker(os.path.join(workdir, "p2"))
        phase_kill9_resume(os.path.join(workdir, "p3"))
    print("service smoke sweep: all phases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
