"""Table-driven LR shift-reduce parser (paper §2.1).

The driver consumes a stream of terminal names or
:class:`~repro.grammar.symbols.Terminal` objects and produces a
:class:`~repro.parsing.tree.ParseTree`. It refuses to run on tables with
unresolved conflicts unless ``allow_conflicts=True`` is passed, in which
case the yacc defaults baked into the tables apply (shift over reduce,
earliest production among reduces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.automaton.lalr import LALRAutomaton
from repro.automaton.tables import Accept, ErrorAction, Reduce, Shift
from repro.grammar import END_OF_INPUT, Grammar, Terminal
from repro.parsing.tree import ParseTree, leaf, node


class ParseError(Exception):
    """Raised when the input is not in the grammar's language.

    Attributes:
        position: Index of the offending token in the input.
        terminal: The offending terminal.
        expected: Terminals acceptable at this point.
    """

    def __init__(
        self,
        position: int,
        terminal: Terminal,
        expected: Sequence[Terminal],
        state_id: int,
    ) -> None:
        self.position = position
        self.terminal = terminal
        self.expected = tuple(expected)
        self.state_id = state_id
        expected_text = ", ".join(sorted(str(t) for t in expected)) or "<nothing>"
        super().__init__(
            f"syntax error at token {position} ({terminal}); "
            f"in state {state_id}, expected one of: {expected_text}"
        )


class ParserLoopError(ParseError):
    """The driver detected a reduction livelock.

    Only possible with ``allow_conflicts=True``: conflict-free tables
    drive a terminating parser, but yacc-default resolution over a
    grammar with derivation cycles can pick an epsilon or unit reduction
    whose goto re-enters the same state, reducing forever without
    consuming input (found by the differential fuzzer; see
    ``repro.verify``). Subclasses :class:`ParseError` so callers that
    treat errors as rejection keep working.
    """

    def __init__(self, position: int, terminal: Terminal, state_id: int) -> None:
        super().__init__(position, terminal, [], state_id)
        self.args = (
            f"reduction livelock at token {position} ({terminal}) in state "
            f"{state_id}: the default-resolved tables reduce forever "
            "without consuming input",
        )


class ConflictedGrammarError(Exception):
    """Raised when constructing a parser over tables with unresolved conflicts."""


@dataclass
class TraceEntry:
    """One step of a traced parse, for debugging and the examples."""

    state_id: int
    action: str
    detail: str


class LRParser:
    """An LALR(1) parser for a grammar."""

    def __init__(
        self, source: Grammar | LALRAutomaton, allow_conflicts: bool = False
    ) -> None:
        if isinstance(source, LALRAutomaton):
            self.automaton = source
        else:
            self.automaton = LALRAutomaton(source)
        self.grammar = self.automaton.grammar
        self.tables = self.automaton.tables
        if self.tables.conflicts and not allow_conflicts:
            raise ConflictedGrammarError(
                f"grammar {self.grammar.name!r} has "
                f"{len(self.tables.conflicts)} unresolved conflicts; "
                "pass allow_conflicts=True to parse with yacc defaults"
            )

    @classmethod
    def from_tables(cls, tables, grammar: Grammar) -> "LRParser":
        """Build a parser from preconstructed tables (see
        :mod:`repro.automaton.serialize`) without automaton construction."""
        parser = cls.__new__(cls)
        parser.automaton = None  # type: ignore[assignment]
        parser.grammar = grammar
        parser.tables = tables
        return parser

    # ------------------------------------------------------------------ #

    def _coerce(self, tokens: Iterable[Terminal | str]) -> list[Terminal]:
        coerced: list[Terminal] = []
        for token in tokens:
            if isinstance(token, Terminal):
                coerced.append(token)
            else:
                coerced.append(Terminal(token))
        coerced.append(END_OF_INPUT)
        return coerced

    def parse(
        self,
        tokens: Iterable[Terminal | str],
        trace: list[TraceEntry] | None = None,
    ) -> ParseTree:
        """Parse *tokens*, returning the parse tree rooted at the start symbol.

        Args:
            tokens: Terminals or terminal names, without the end marker.
            trace: Optional list that receives a :class:`TraceEntry` per
                parser action.
        """
        input_tokens = self._coerce(tokens)
        state_stack: list[int] = [0]
        tree_stack: list[ParseTree] = []
        position = 0

        # Livelock guard: a terminating parse performs far fewer reductions
        # between two shifts than states x productions allows; anything
        # beyond this generous bound must be a default-resolution cycle.
        max_reduce_run = (
            (len(input_tokens) + 2)
            * max(1, len(self.tables.action))
            * (len(self.grammar.productions) + 2)
        )
        reduce_run = 0

        while True:
            state_id = state_stack[-1]
            terminal = input_tokens[position]
            action = self.tables.action_for(state_id, terminal)

            if action is None or isinstance(action, ErrorAction):
                expected = [
                    t
                    for t, a in self.tables.action[state_id].items()
                    if not isinstance(a, ErrorAction)
                ]
                raise ParseError(position, terminal, expected, state_id)

            if isinstance(action, Shift):
                if trace is not None:
                    trace.append(TraceEntry(state_id, "shift", str(terminal)))
                state_stack.append(action.state_id)
                tree_stack.append(leaf(terminal))
                position += 1
                reduce_run = 0
                continue

            if isinstance(action, Reduce):
                reduce_run += 1
                if reduce_run > max_reduce_run:
                    raise ParserLoopError(position, terminal, state_id)
                production = action.production
                arity = len(production.rhs)
                if trace is not None:
                    trace.append(TraceEntry(state_id, "reduce", str(production)))
                children = tree_stack[len(tree_stack) - arity :] if arity else []
                del tree_stack[len(tree_stack) - arity :]
                del state_stack[len(state_stack) - arity :]
                goto_state = self.tables.goto_for(state_stack[-1], production.lhs)
                if goto_state is None:
                    raise RuntimeError(
                        f"corrupt tables: no goto on {production.lhs} "
                        f"from state {state_stack[-1]}"
                    )
                state_stack.append(goto_state)
                tree_stack.append(node(production, children))
                continue

            assert isinstance(action, Accept)
            if trace is not None:
                trace.append(TraceEntry(state_id, "accept", ""))
            # The tree stack holds exactly the start symbol's tree.
            assert len(tree_stack) == 1, "accept with unreduced fragments"
            return tree_stack[0]

    def accepts(self, tokens: Iterable[Terminal | str]) -> bool:
        """Whether *tokens* parses without error."""
        try:
            self.parse(tokens)
        except ParseError:
            return False
        return True
