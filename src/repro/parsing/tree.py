"""Parse trees shared by the LR, GLR, and Earley runtimes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.grammar import Production, Symbol


@dataclass(frozen=True)
class ParseTree:
    """A parse (sub)tree.

    A leaf has ``production is None`` and no children; its symbol is the
    token (or, when parsing sentential forms, possibly a nonterminal that
    matched itself). An interior node records the production applied.

    Hashes are cached bottom-up at construction so that hashing a deep
    tree is O(1) rather than a deep recursion (the GLR runtime keeps sets
    of configurations holding arbitrarily deep trees).
    """

    symbol: Symbol
    children: tuple["ParseTree", ...] = ()
    production: Production | None = None

    def __post_init__(self) -> None:
        if self.production is None and self.children:
            raise ValueError("leaf nodes cannot have children")
        if self.production is not None and self.production.lhs != self.symbol:
            raise ValueError(
                f"node symbol {self.symbol} does not match production {self.production}"
            )
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    self.symbol,
                    tuple(child._hash for child in self.children),  # type: ignore[attr-defined]
                    None if self.production is None else self.production.index,
                )
            ),
        )

    @property
    def is_leaf(self) -> bool:
        return self.production is None

    def leaves(self) -> Iterator["ParseTree"]:
        """All leaf nodes, left to right (iterative — trees can be deep)."""
        stack: list[ParseTree] = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(reversed(node.children))

    def leaf_symbols(self) -> tuple[Symbol, ...]:
        """The yield of the tree as a symbol sequence."""
        return tuple(leaf.symbol for leaf in self.leaves())

    def size(self) -> int:
        """Total number of nodes (iterative — trees can be deep)."""
        count = 0
        stack: list[ParseTree] = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def depth(self) -> int:
        """Height of the tree; a leaf has depth 1 (iterative)."""
        best = 1
        stack: list[tuple[ParseTree, int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            for child in node.children:
                stack.append((child, level + 1))
        return best

    # ------------------------------------------------------------------ #

    def pretty(self, indent: str = "") -> str:
        """Indented multi-line rendering."""
        if self.is_leaf:
            return f"{indent}{self.symbol}"
        lines = [f"{indent}{self.symbol}"]
        for child in self.children:
            lines.append(child.pretty(indent + "  "))
        return "\n".join(lines)

    def bracketed(self) -> str:
        """Single-line rendering with brackets around each production."""
        if self.is_leaf:
            return str(self.symbol)
        inner = " ".join(child.bracketed() for child in self.children)
        return f"[{self.symbol}: {inner}]" if inner else f"[{self.symbol}: ε]"

    def __str__(self) -> str:
        return self.bracketed()


# Replace the dataclass-generated recursive hash with the cached one.
ParseTree.__hash__ = lambda self: self._hash  # type: ignore[method-assign, attr-defined]


def leaf(symbol: Symbol) -> ParseTree:
    """A leaf node for *symbol*."""
    return ParseTree(symbol)


def node(production: Production, children: Sequence[ParseTree]) -> ParseTree:
    """An interior node applying *production* to *children*."""
    return ParseTree(production.lhs, tuple(children), production)
