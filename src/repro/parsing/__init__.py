"""Parser runtimes: deterministic LR, Earley (sentential forms), GLR."""

from repro.parsing.earley import DerivationBudgetExceeded, EarleyItem, EarleyParser
from repro.parsing.lexer import LexError, Lexer, Token, keyword_table
from repro.parsing.glr import GLRParser, TooManyParses
from repro.parsing.runtime import (
    ConflictedGrammarError,
    LRParser,
    ParseError,
    ParserLoopError,
    TraceEntry,
)
from repro.parsing.tree import ParseTree, leaf, node

__all__ = [
    "ConflictedGrammarError",
    "DerivationBudgetExceeded",
    "EarleyItem",
    "EarleyParser",
    "GLRParser",
    "LRParser",
    "LexError",
    "Lexer",
    "Token",
    "keyword_table",
    "ParseError",
    "ParseTree",
    "ParserLoopError",
    "TooManyParses",
    "TraceEntry",
    "leaf",
    "node",
]
