"""A breadth-first generalized LR parser (paper §8, Tomita 1991).

This is deliberately the *simple* formulation of GLR: the parser keeps a
set of live ``(state stack, tree stack)`` configurations and explores all
applicable actions — every reduce whose LALR lookahead matches plus any
shift — splitting the configuration at conflicts. There is no
graph-structured stack, so worst-case behaviour is exponential; a
configurable configuration cap keeps runs bounded. That trade-off is fine
for this library, where GLR exists to *demonstrate* the runtime cost of
unresolved ambiguity that the counterexample finder diagnoses statically.

Precedence declarations are honoured: conflicts that the parse tables
resolved are not re-split; only genuinely unresolved conflicts fork.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automaton.lalr import LALRAutomaton
from repro.automaton.tables import Accept, ErrorAction, Reduce, Shift
from repro.grammar import END_OF_INPUT, Grammar, Production, Terminal
from repro.parsing.runtime import ParseError
from repro.parsing.tree import ParseTree, leaf, node


class TooManyParses(Exception):
    """Raised when the live-configuration cap is exceeded."""


@dataclass(frozen=True)
class _Config:
    states: tuple[int, ...]
    trees: tuple[ParseTree, ...]


class GLRParser:
    """Breadth-first GLR parser returning *all* parse trees of the input."""

    def __init__(
        self, source: Grammar | LALRAutomaton, max_configurations: int = 10_000
    ) -> None:
        if isinstance(source, LALRAutomaton):
            self.automaton = source
        else:
            self.automaton = LALRAutomaton(source)
        self.grammar = self.automaton.grammar
        self.tables = self.automaton.tables
        self.max_configurations = max_configurations
        self._actions = self._collect_actions()

    def _collect_actions(self) -> dict[tuple[int, Terminal], list[object]]:
        """All actions per (state, terminal): the table entry plus conflict alternatives."""
        actions: dict[tuple[int, Terminal], list[object]] = {}
        for state_id, row in enumerate(self.tables.action):
            for terminal, action in row.items():
                if not isinstance(action, ErrorAction):
                    actions[(state_id, terminal)] = [action]
        for conflict in self.tables.conflicts:
            key = (conflict.state_id, conflict.terminal)
            alternatives = actions.setdefault(key, [])
            reduction = Reduce(conflict.reduce_item.production)
            if reduction not in alternatives:
                alternatives.append(reduction)
            if not conflict.is_shift_reduce:
                other = Reduce(conflict.other_item.production)
                if other not in alternatives:
                    alternatives.append(other)
        return actions

    # ------------------------------------------------------------------ #

    def parse_all(self, tokens) -> list[ParseTree]:
        """Every parse tree of *tokens*; empty list when the input is rejected."""
        input_tokens: list[Terminal] = [
            token if isinstance(token, Terminal) else Terminal(token)
            for token in tokens
        ]
        input_tokens.append(END_OF_INPUT)

        live: set[_Config] = {_Config((0,), ())}
        accepted: list[ParseTree] = []

        for terminal in input_tokens:
            # Close over reductions, then shift (or accept) on the terminal.
            frontier = list(live)
            closed: set[_Config] = set(live)
            next_live: set[_Config] = set()
            while frontier:
                config = frontier.pop()
                for action in self._actions.get((config.states[-1], terminal), []):
                    if isinstance(action, Reduce):
                        successor = self._reduce(config, action.production)
                        if successor is not None and successor not in closed:
                            closed.add(successor)
                            frontier.append(successor)
                            if len(closed) > self.max_configurations:
                                raise TooManyParses(
                                    f"more than {self.max_configurations} live "
                                    "GLR configurations"
                                )
                    elif isinstance(action, Shift):
                        next_live.add(
                            _Config(
                                config.states + (action.state_id,),
                                config.trees + (leaf(terminal),),
                            )
                        )
                    elif isinstance(action, Accept):
                        if len(config.trees) == 1:
                            accepted.append(config.trees[0])
            live = next_live
            if not live and terminal != END_OF_INPUT and not accepted:
                return []

        # Deduplicate structurally identical trees.
        unique: list[ParseTree] = []
        seen: set[ParseTree] = set()
        for tree in accepted:
            if tree not in seen:
                seen.add(tree)
                unique.append(tree)
        return unique

    def _reduce(self, config: _Config, production: Production) -> _Config | None:
        arity = len(production.rhs)
        if arity > len(config.trees):
            return None
        states = config.states[: len(config.states) - arity]
        children = config.trees[len(config.trees) - arity :] if arity else ()
        goto_state = self.tables.goto_for(states[-1], production.lhs)
        if goto_state is None:
            return None
        return _Config(
            states + (goto_state,),
            config.trees[: len(config.trees) - arity] + (node(production, children),),
        )

    # ------------------------------------------------------------------ #

    def parse(self, tokens) -> ParseTree:
        """The unique parse of *tokens*; raises on rejection or ambiguity."""
        trees = self.parse_all(tokens)
        if not trees:
            raise ParseError(0, END_OF_INPUT, [], -1)
        if len(trees) > 1:
            raise TooManyParses(f"input is ambiguous: {len(trees)} parses")
        return trees[0]

    def is_ambiguous_input(self, tokens) -> bool:
        """Whether *tokens* has two or more parses."""
        return len(self.parse_all(tokens)) >= 2
