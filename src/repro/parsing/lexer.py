"""A small regex-based lexer, so examples can parse text rather than tokens.

The parser runtimes in this library consume terminal streams. For demos
and integration tests over the corpus language grammars it is convenient
to produce those streams from source text; :class:`Lexer` is a classic
longest-match, first-rule-wins scanner:

* token rules are ``(terminal name, regex)`` pairs tried in order at each
  position; the longest match wins, ties broken by rule order;
* keyword tables map an identifier-like match to a keyword terminal;
* rules with terminal name ``None`` are skipped (whitespace, comments).

Example::

    lexer = Lexer(
        rules=[(None, r"\\s+"), ("NUM", r"[0-9]+"), ("ID", r"[a-z]+"),
               ("'+'", r"\\+")],
        keywords={"if": "IF"},
    )
    tokens = lexer.tokenize("if 12 + x")

The terminal-name convention matches the grammar DSL: quoted names like
``"'+'"`` strip to the symbol ``+``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.grammar import Terminal


class LexError(Exception):
    """No rule matched the input at some position."""

    def __init__(self, text: str, position: int, line: int) -> None:
        self.position = position
        self.line = line
        snippet = text[position : position + 10]
        super().__init__(f"cannot tokenize at line {line}: {snippet!r}...")


@dataclass(frozen=True)
class Token:
    """One lexeme: its terminal, source text, position and line."""

    terminal: Terminal
    text: str
    position: int
    line: int

    def __str__(self) -> str:
        return f"{self.terminal}({self.text!r})"


def _strip_quotes(name: str) -> str:
    if len(name) >= 3 and name[0] == name[-1] and name[0] in "'\"":
        return name[1:-1]
    return name


class Lexer:
    """Longest-match, ordered-rule lexer producing :class:`Token` streams."""

    def __init__(
        self,
        rules: Sequence[tuple[str | None, str]],
        keywords: dict[str, str] | None = None,
    ) -> None:
        """
        Args:
            rules: ``(terminal name or None-to-skip, regex)`` pairs. Names
                may be quoted (``"'+'"``), matching the grammar DSL.
            keywords: Maps exact matched text (of any rule) to a keyword
                terminal name that overrides the rule's terminal.
        """
        self._rules: list[tuple[Terminal | None, re.Pattern[str]]] = []
        for name, pattern in rules:
            terminal = None if name is None else Terminal(_strip_quotes(name))
            self._rules.append((terminal, re.compile(pattern)))
        self._keywords = {
            text: Terminal(_strip_quotes(name))
            for text, name in (keywords or {}).items()
        }

    # ------------------------------------------------------------------ #

    def tokens(self, text: str) -> Iterator[Token]:
        """Yield tokens; raises :class:`LexError` on untokenizable input."""
        position = 0
        line = 1
        length = len(text)
        while position < length:
            best_terminal: Terminal | None = None
            best_end = position
            matched = False
            for terminal, pattern in self._rules:
                match = pattern.match(text, position)
                if match is None or match.end() == position:
                    continue
                if match.end() > best_end:
                    matched = True
                    best_end = match.end()
                    best_terminal = terminal
            if not matched:
                raise LexError(text, position, line)
            fragment = text[position:best_end]
            line += fragment.count("\n")
            if best_terminal is not None:
                terminal = self._keywords.get(fragment, best_terminal)
                yield Token(terminal, fragment, position, line)
            position = best_end

    def tokenize(self, text: str) -> list[Terminal]:
        """The terminal stream for *text* (what the parsers consume)."""
        return [token.terminal for token in self.tokens(text)]


def keyword_table(*names: str) -> dict[str, str]:
    """Build a keyword table mapping lowercase spellings to terminals.

    ``keyword_table("SELECT", "FROM")`` maps both ``select`` and ``SELECT``
    to the ``SELECT`` terminal — convenient for case-insensitive languages.
    """
    table: dict[str, str] = {}
    for name in names:
        table[name.lower()] = name
        table[name.upper()] = name
    return table
