"""Earley parsing over sentential forms, with derivation counting.

This module is the library's independent ambiguity oracle. The paper's
counterexamples are *sentential forms* — sequences mixing terminals and
nonterminals, where a nonterminal leaf stands for itself — so the
recogniser here treats every grammar symbol as a possible token: an item
expecting symbol ``X`` can consume token ``X`` directly, and an item
expecting a nonterminal can also expand it the usual way.

Uses:

* :meth:`EarleyParser.recognizes` — membership of a sentential form in the
  sentential-form language of a nonterminal;
* :meth:`EarleyParser.derivations` — enumerate distinct derivation trees
  (up to a limit), which is how unifying counterexamples are verified to
  be genuinely ambiguous;
* the brute-force ambiguity baseline builds on the same counting.

The implementation processes each chart set with a worklist so that
nullable completions (the Aycock–Horspool subtlety) are handled without
special cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.grammar import (
    Grammar,
    Nonterminal,
    Production,
    Symbol,
    Terminal,
)
from repro.parsing.tree import ParseTree, leaf, node
from repro.robust.budget import Budget
from repro.robust.errors import BudgetExhausted


class DerivationBudgetExceeded(BudgetExhausted):
    """Derivation enumeration ran out of its step budget.

    Highly ambiguous cyclic grammars admit combinatorially many split
    points; when a form has fewer distinct derivations than the requested
    limit, lazy enumeration must exhaust that whole space to prove it.
    Callers that only need a quick verdict pass ``step_budget`` and treat
    this exception as "unknown" rather than a count.

    A subclass of :class:`~repro.robust.errors.BudgetExhausted`, so
    budget-aware callers can treat both step-cap and wall-clock overruns
    uniformly.
    """


@dataclass(frozen=True, slots=True)
class EarleyItem:
    """A classic Earley item: production, dot, and origin position."""

    production: Production
    dot: int
    origin: int

    @property
    def at_end(self) -> bool:
        return self.dot == len(self.production.rhs)

    @property
    def next_symbol(self) -> Symbol | None:
        if self.at_end:
            return None
        return self.production.rhs[self.dot]

    def advance(self) -> "EarleyItem":
        return EarleyItem(self.production, self.dot + 1, self.origin)

    def __str__(self) -> str:
        rhs = [str(s) for s in self.production.rhs]
        rhs.insert(self.dot, "•")
        return f"({self.production.lhs} ::= {' '.join(rhs)}, {self.origin})"


class EarleyParser:
    """Earley recogniser/enumerator for sentential forms of a grammar."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar

    # ------------------------------------------------------------------ #
    # Chart construction

    def _chart(
        self,
        root: Nonterminal,
        tokens: Sequence[Symbol],
        budget: Budget | None = None,
    ) -> list[set[EarleyItem]]:
        sets: list[set[EarleyItem]] = [set() for _ in range(len(tokens) + 1)]

        def add(index: int, item: EarleyItem, worklist: list[EarleyItem]) -> None:
            if item not in sets[index]:
                sets[index].add(item)
                worklist.append(item)

        for position in range(len(tokens) + 1):
            if position == 0:
                for production in self.grammar.productions_of(root):
                    sets[0].add(EarleyItem(production, 0, 0))
            # Process the set to a fixpoint. Completions over an empty span
            # (nullable productions) can enable further completions among
            # items processed earlier, so the whole set is re-swept until
            # it stops growing (the Aycock–Horspool subtlety, handled by
            # brute force — chart sets are small in this library's usage).
            while True:
                size_before = len(sets[position])
                worklist: list[EarleyItem] = list(sets[position])
                while worklist:
                    if budget is not None:
                        budget.charge()
                        budget.poll("verify")
                    item = worklist.pop()
                    symbol = item.next_symbol
                    if symbol is None:
                        # Completion: advance parents waiting at the origin.
                        for parent in list(sets[item.origin]):
                            if parent.next_symbol == item.production.lhs:
                                add(position, parent.advance(), worklist)
                        continue
                    # Scan: a token always matches itself (sentential forms).
                    if position < len(tokens) and tokens[position] == symbol:
                        sets[position + 1].add(item.advance())
                    # Prediction for nonterminals.
                    if symbol.is_nonterminal:
                        assert isinstance(symbol, Nonterminal)
                        for production in self.grammar.productions_of(symbol):
                            add(position, EarleyItem(production, 0, position), worklist)
                if len(sets[position]) == size_before:
                    break
        return sets

    # ------------------------------------------------------------------ #
    # Recognition

    def recognizes(
        self,
        root: Nonterminal,
        form: Sequence[Symbol],
        budget: Budget | None = None,
    ) -> bool:
        """Whether *root* derives the sentential form *form* in >= 1 step."""
        tokens = list(form)
        sets = self._chart(root, tokens, budget=budget)
        return any(
            item.at_end and item.origin == 0 and item.production.lhs == root
            for item in sets[len(tokens)]
        )

    # ------------------------------------------------------------------ #
    # Derivation enumeration

    def derivations(
        self,
        root: Nonterminal,
        form: Sequence[Symbol],
        limit: int = 2,
        step_budget: int | None = None,
        budget: Budget | None = None,
    ) -> list[ParseTree]:
        """Up to *limit* distinct derivation trees of *form* from *root*.

        Each tree's root applies a production of *root* (so the trivial
        zero-step derivation of the single-symbol form ``[root]`` is not
        counted). Cyclic grammars can have unboundedly many derivations;
        enumeration allows each ``(symbol, span)`` to be re-entered at most
        ``limit + 1`` times along one recursion path, which bounds unit
        cycling while still producing *limit* distinct cyclic trees.

        Args:
            step_budget: Optional cap on enumeration steps; when the space
                is larger, raises :class:`DerivationBudgetExceeded` instead
                of searching it exhaustively.
            budget: Optional wall-clock/node budget polled through chart
                construction and enumeration; raises its structured
                errors on overrun.
        """
        tokens = list(form)
        sets = self._chart(root, tokens, budget=budget)
        length = len(tokens)
        nullable = self._nullable()

        def min_need(symbol: Symbol) -> int:
            """Minimum tokens a symbol consumes in a sentential form."""
            return 0 if symbol in nullable else 1

        spans, completed = self._completed_spans(sets)

        found: list[ParseTree] = []
        seen: set[ParseTree] = set()
        reentry_limit = limit + 1
        visiting: dict[tuple[Symbol, int, int], int] = {}
        steps_left = [step_budget if step_budget is not None else -1]

        def spend_step() -> None:
            if steps_left[0] == 0:
                raise DerivationBudgetExceeded(
                    f"derivation enumeration exceeded {step_budget} steps",
                    stage="verify",
                )
            steps_left[0] -= 1
            if budget is not None:
                budget.charge()
                budget.poll("verify")

        def symbol_trees(symbol: Symbol, start: int, end: int) -> Iterator[ParseTree]:
            """All trees deriving tokens[start:end] from *symbol*."""
            spend_step()
            if end == start + 1 and tokens[start] == symbol:
                yield leaf(symbol)
            if not symbol.is_nonterminal:
                return
            key = (symbol, start, end)
            if visiting.get(key, 0) >= reentry_limit:
                return
            visiting[key] = visiting.get(key, 0) + 1
            try:
                assert isinstance(symbol, Nonterminal)
                for production in completed.get((symbol, start, end), []):
                    for children in split_trees(production.rhs, 0, start, end):
                        # Release the re-entry hold across the yield: once a
                        # complete subtree is handed upward, this expansion is
                        # no longer an *ancestor* of whatever the caller builds
                        # next. Sibling occurrences of the same (symbol, span)
                        # — e.g. the three n1's of `n0 : n1 n1 n1` over the
                        # empty string — would otherwise burn the cycle budget
                        # meant for genuine recursive descent and undercount
                        # derivations of ambiguous nullable forms.
                        visiting[key] -= 1
                        try:
                            yield node(production, children)
                        finally:
                            visiting[key] += 1
            finally:
                visiting[key] -= 1

        def split_trees(
            rhs: tuple[Symbol, ...], index: int, start: int, end: int
        ) -> Iterator[tuple[ParseTree, ...]]:
            """All ways to derive tokens[start:end] from rhs[index:]."""
            if index == len(rhs):
                if start == end:
                    yield ()
                return
            symbol = rhs[index]
            rest_need = sum(min_need(s) for s in rhs[index + 1 :])
            ends: set[int] = set()
            if start < end and tokens[start] == symbol:
                ends.add(start + 1)
            if symbol.is_nonterminal:
                assert isinstance(symbol, Nonterminal)
                ends.update(j for j in spans.get((symbol, start), ()) if j <= end)
            for middle in sorted(ends):
                if end - middle < rest_need:
                    continue  # the remaining symbols cannot fit
                for first in symbol_trees(symbol, start, middle):
                    for rest in split_trees(rhs, index + 1, middle, end):
                        yield (first,) + rest

        for production in completed.get((root, 0, length), []):
            for children in split_trees(production.rhs, 0, 0, length):
                tree = node(production, children)
                if tree not in seen:
                    seen.add(tree)
                    found.append(tree)
                    if len(found) >= limit:
                        return found
        return found

    @staticmethod
    def _completed_spans(
        sets,
    ) -> tuple[
        dict[tuple[Nonterminal, int], set[int]],
        dict[tuple[Nonterminal, int, int], list[Production]],
    ]:
        """Completed-item index of a chart.

        ``spans[(nonterminal, i)]`` holds every ``j`` with a completed
        derivation of ``tokens[i:j]``; ``completed[(nonterminal, i, j)]``
        lists the productions completing that span.
        """
        spans: dict[tuple[Nonterminal, int], set[int]] = {}
        completed: dict[tuple[Nonterminal, int, int], list[Production]] = {}
        for index, chart_set in enumerate(sets):
            for item in chart_set:
                if item.at_end:
                    lhs = item.production.lhs
                    assert isinstance(lhs, Nonterminal)
                    spans.setdefault((lhs, item.origin), set()).add(index)
                    completed.setdefault((lhs, item.origin, index), []).append(
                        item.production
                    )
        return spans, completed

    def _nullable(self) -> frozenset:
        """Nullable nonterminals, computed once per parser."""
        cached = getattr(self, "_nullable_cache", None)
        if cached is None:
            from repro.grammar import GrammarAnalysis

            cached = GrammarAnalysis(self.grammar).nullable
            self._nullable_cache = cached
        return cached

    def count_derivations(
        self,
        root: Nonterminal,
        form: Sequence[Symbol],
        limit: int = 2,
        step_budget: int | None = None,
        budget: Budget | None = None,
    ) -> int:
        """Number of distinct derivation trees, saturating at *limit*.

        Unlike :meth:`derivations`, this never enumerates trees: counts
        live in ``{0, ..., limit}`` and each ``(symbol, span)`` cell is the
        saturating sum, over its completed productions, of the saturating
        product over split points — iterated to a fixpoint so cyclic
        grammars (infinitely many trees) converge in polynomial time
        instead of exhausting an exponential enumeration space. Counts
        strictly below *limit* are exact; *limit* means "at least".
        """
        tokens = list(form)
        sets = self._chart(root, tokens, budget=budget)
        length = len(tokens)
        spans, completed = self._completed_spans(sets)
        cap = max(1, limit)
        steps_left = [step_budget if step_budget is not None else -1]

        def spend_step() -> None:
            if steps_left[0] == 0:
                raise DerivationBudgetExceeded(
                    f"derivation counting exceeded {step_budget} steps",
                    stage="verify",
                )
            steps_left[0] -= 1
            if budget is not None:
                budget.charge()
                budget.poll("verify")

        ways: dict[tuple[Nonterminal, int, int], int] = dict.fromkeys(
            completed, 0
        )

        def symbol_ways(symbol: Symbol, start: int, end: int) -> int:
            total = 1 if end == start + 1 and tokens[start] == symbol else 0
            if symbol.is_nonterminal:
                total += ways.get((symbol, start, end), 0)  # type: ignore[arg-type]
            return min(cap, total)

        def split_ways(
            rhs: tuple[Symbol, ...],
            index: int,
            start: int,
            end: int,
            memo: dict[tuple[int, int, int], int],
        ) -> int:
            """Ways to derive tokens[start:end] from rhs[index:]."""
            if index == len(rhs):
                return 1 if start == end else 0
            key = (index, start, end)
            cached = memo.get(key)
            if cached is not None:
                return cached
            spend_step()
            symbol = rhs[index]
            ends: set[int] = set()
            if start < end and tokens[start] == symbol:
                ends.add(start + 1)
            if symbol.is_nonterminal:
                assert isinstance(symbol, Nonterminal)
                ends.update(j for j in spans.get((symbol, start), ()) if j <= end)
            total = 0
            for middle in sorted(ends):
                first = symbol_ways(symbol, start, middle)
                if not first:
                    continue
                rest = split_ways(rhs, index + 1, middle, end, memo)
                if rest:
                    total += first * rest
                    if total >= cap:
                        break
            total = min(cap, total)
            memo[key] = total
            return total

        def recount(symbol: Nonterminal, start: int, end: int) -> int:
            # Cells hold production-derived counts only; the single-token
            # leaf case is added at use sites by symbol_ways().
            total = 0
            for production in completed[(symbol, start, end)]:
                total += split_ways(production.rhs, 0, start, end, {})
                if total >= cap:
                    break
            return min(cap, total)

        # Kleene iteration: counts only grow and are bounded by the cap, so
        # the chaotic recomputation below reaches the least fixpoint — the
        # capped true count — in at most cap * len(ways) sweeps.
        changed = True
        while changed:
            changed = False
            for (symbol, start, end), current in ways.items():
                if current >= cap:
                    continue
                updated = recount(symbol, start, end)
                if updated > current:
                    ways[(symbol, start, end)] = updated
                    changed = True

        # The trivial zero-step derivation of [root] is not counted: the
        # top level sums over applied productions only, like derivations().
        total = 0
        for production in completed.get((root, 0, length), []):
            total += split_ways(production.rhs, 0, 0, length, {})
            if total >= cap:
                break
        return min(cap, total)

    def is_ambiguous_form(
        self,
        root: Nonterminal,
        form: Sequence[Symbol],
        step_budget: int | None = None,
        budget: Budget | None = None,
    ) -> bool:
        """Whether *form* has at least two distinct derivations from *root*."""
        return (
            self.count_derivations(
                root, form, limit=2, step_budget=step_budget, budget=budget
            )
            >= 2
        )
