"""The per-stage failure boundary and the degradation record.

:func:`run_guarded` is the only place pipeline-stage exceptions are
allowed to stop: it converts any failure — structured
:class:`~repro.robust.errors.ExplanationError`, injected fault, or
genuine bug — into a :class:`DegradedExplanation` that names the stage,
the reason, and the captured traceback, and lets the finder fall to the
next rung of the degradation ladder:

    unifying counterexample → nonunifying counterexample → conflict stub

Only :class:`~repro.robust.errors.Cancelled` passes through: a
cancellation means "stop the run", and the finder handles it at the
run level (remaining conflicts get stub entries, the report stays
complete).
"""

from __future__ import annotations

import enum
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

from repro.robust.errors import Cancelled, ExplanationError

T = TypeVar("T")


class Stage(enum.Enum):
    """The five guarded pipeline stages (= fault injection points)."""

    LASG = "lasg"
    SEARCH = "search"
    VERIFY = "verify"
    NONUNIFYING = "nonunifying"
    RENDER = "render"


class Rung(enum.Enum):
    """Where on the degradation ladder a conflict's explanation landed."""

    UNIFYING = "unifying"
    NONUNIFYING = "nonunifying"
    STUB = "stub"


@dataclass(frozen=True)
class DegradedExplanation:
    """One stage failure, recorded instead of raised.

    Attributes:
        stage: The stage that failed.
        reason: One-line human description (the exception's message, with
            stage/context annotations for structured errors).
        error_type: Qualified exception class name.
        traceback: The captured traceback text.
        artifacts: Partial results the stage produced before failing
            (e.g. the prefix length the LASG reached), stringified.
    """

    stage: Stage
    reason: str
    error_type: str
    traceback: str = ""
    artifacts: dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        return f"[{self.stage.value}] {self.error_type}: {self.reason}"

    def to_json(self) -> dict[str, Any]:
        return {
            "stage": self.stage.value,
            "reason": self.reason,
            "error_type": self.error_type,
            "artifacts": dict(self.artifacts),
        }


@dataclass
class GuardOutcome:
    """What :func:`run_guarded` hands back: a value or a degradation."""

    value: Any = None
    degraded: DegradedExplanation | None = None

    @property
    def ok(self) -> bool:
        return self.degraded is None


def degradation_from(
    stage: Stage,
    error: BaseException,
    artifacts: dict[str, str] | None = None,
) -> DegradedExplanation:
    """Build the record for *error*, preserving structured context."""
    if isinstance(error, ExplanationError):
        reason = error.describe()
    else:
        reason = str(error) or type(error).__name__
    return DegradedExplanation(
        stage=stage,
        reason=reason,
        error_type=type(error).__qualname__,
        traceback="".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        ),
        artifacts=artifacts or {},
    )


def run_guarded(
    stage: Stage,
    fn: Callable[..., T],
    *args: Any,
    artifacts: dict[str, str] | None = None,
    **kwargs: Any,
) -> GuardOutcome:
    """Run one pipeline stage; never lets an exception escape.

    Catches every :class:`Exception` — including ``MemoryError`` and
    injected faults — except :class:`Cancelled`, which is re-raised for
    the run-level handler. ``KeyboardInterrupt``/``SystemExit`` pass
    through untouched.
    """
    try:
        return GuardOutcome(value=fn(*args, **kwargs))
    except Cancelled:
        raise
    except Exception as error:  # noqa: BLE001 — the fault boundary
        return GuardOutcome(degraded=degradation_from(stage, error, artifacts))
