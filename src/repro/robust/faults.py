"""Deterministic fault injection for the explanation pipeline.

Each pipeline stage declares a *named injection point* by calling
:func:`fire` at its entry (``lasg``, ``search``, ``verify``,
``nonunifying``, ``render``). Tests and the fuzz campaign install
:class:`FaultSpec`\\ s into the module registry — usually via the
:func:`inject_faults` context manager — to force a timeout, budget
exhaustion, generic exception, or simulated OOM at an exact arrival,
then assert that the degradation ladder still terminates with a
complete report.

Injection is deterministic: every point counts its arrivals, and a spec
fires on arrivals ``at .. at + count - 1``. With an empty registry
:func:`fire` is a single attribute check, so production runs pay
nothing.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.robust.errors import BudgetExhausted, SearchTimeout

#: The five canonical injection points, in pipeline order.
INJECTION_POINTS = ("lasg", "search", "verify", "nonunifying", "render")


class FaultKind(enum.Enum):
    """What an injected fault simulates."""

    TIMEOUT = "timeout"
    BUDGET = "budget"
    EXCEPTION = "exception"
    OOM = "oom"


class InjectedFault(RuntimeError):
    """The generic injected exception (deliberately *not* an
    :class:`~repro.robust.errors.ExplanationError` — it exercises the
    guard's handling of unexpected errors)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Args:
        point: Injection-point name (see :data:`INJECTION_POINTS`).
        kind: What to raise.
        at: Zero-based arrival index at which the fault first fires.
        count: Number of consecutive arrivals that fire (a large value
            makes the point fail persistently).
        message: Attached to the raised exception.
    """

    point: str
    kind: FaultKind = FaultKind.EXCEPTION
    at: int = 0
    count: int = 1
    message: str = "injected fault"

    def build_exception(self) -> BaseException:
        detail = f"{self.message} [{self.kind.value} @ {self.point}]"
        if self.kind is FaultKind.TIMEOUT:
            return SearchTimeout(detail, stage=self.point, injected=True)
        if self.kind is FaultKind.BUDGET:
            return BudgetExhausted(detail, stage=self.point, injected=True)
        if self.kind is FaultKind.OOM:
            return MemoryError(detail)
        return InjectedFault(detail)


@dataclass
class FaultRegistry:
    """Arrival-counting registry behind the module-level :func:`fire`."""

    specs: list[FaultSpec] = field(default_factory=list)
    arrivals: dict[str, int] = field(default_factory=dict)
    fired: list[tuple[str, FaultKind, int]] = field(default_factory=list)

    @property
    def active(self) -> bool:
        return bool(self.specs)

    def install(self, *specs: FaultSpec) -> None:
        for spec in specs:
            if spec.point not in INJECTION_POINTS:
                raise ValueError(
                    f"unknown injection point {spec.point!r}; "
                    f"known points: {', '.join(INJECTION_POINTS)}"
                )
            self.specs.append(spec)

    def reset(self) -> None:
        self.specs.clear()
        self.arrivals.clear()
        self.fired.clear()

    def fire(self, point: str) -> None:
        """Record an arrival at *point*; raise if a spec covers it."""
        arrival = self.arrivals.get(point, 0)
        self.arrivals[point] = arrival + 1
        for spec in self.specs:
            if spec.point == point and spec.at <= arrival < spec.at + spec.count:
                self.fired.append((point, spec.kind, arrival))
                raise spec.build_exception()


_REGISTRY = FaultRegistry()


def registry() -> FaultRegistry:
    """The process-wide registry (tests may inspect ``fired``)."""
    return _REGISTRY


def fire(point: str) -> None:
    """Declare an injection point; no-op unless faults are installed."""
    if _REGISTRY.active:
        _REGISTRY.fire(point)


@contextmanager
def inject_faults(*specs: FaultSpec) -> Iterator[FaultRegistry]:
    """Install *specs* for the duration of the ``with`` block.

    The registry (including its arrival counters) is fully reset on
    exit, so campaigns are isolated from each other.
    """
    _REGISTRY.reset()
    _REGISTRY.install(*specs)
    try:
        yield _REGISTRY
    finally:
        _REGISTRY.reset()
