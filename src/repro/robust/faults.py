"""Deterministic fault injection for the explanation pipeline.

Each pipeline stage declares a *named injection point* by calling
:func:`fire` at its entry (``lasg``, ``search``, ``verify``,
``nonunifying``, ``render``). Tests and the fuzz campaign install
:class:`FaultSpec`\\ s into the module registry — usually via the
:func:`inject_faults` context manager — to force a timeout, budget
exhaustion, generic exception, or simulated OOM at an exact arrival,
then assert that the degradation ladder still terminates with a
complete report.

Injection is deterministic: every point counts its arrivals, and a spec
fires on arrivals ``at .. at + count - 1``. With an empty registry
:func:`fire` is a single attribute check, so production runs pay
nothing.

The grammar-analysis service (:mod:`repro.service`) adds three
service-level points — ``worker`` (the subprocess entry, supporting the
``crash`` and ``hang`` kinds), ``queue`` (the admission controller's
enqueue decision), and ``journal`` (the job store's append, supporting
``torn_write``) — plus :func:`install_from_env` / :func:`specs_to_env`
so a parent can arm faults in worker subprocesses and external smoke
tests can poison a running server through ``REPRO_FAULTS``.
"""

from __future__ import annotations

import enum
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.robust.errors import BudgetExhausted, SearchTimeout

#: The canonical injection points: the five pipeline stages in order,
#: then the three service-level points.
INJECTION_POINTS = (
    "lasg", "search", "verify", "nonunifying", "render",
    "worker", "queue", "journal",
)

#: Environment variable carrying JSON-encoded fault specs for
#: subprocesses (see :func:`install_from_env`).
ENV_FAULTS = "REPRO_FAULTS"


class FaultKind(enum.Enum):
    """What an injected fault simulates."""

    TIMEOUT = "timeout"
    BUDGET = "budget"
    EXCEPTION = "exception"
    OOM = "oom"
    #: Hard process death (service workers translate this to ``_exit``).
    CRASH = "crash"
    #: A wedged worker: heartbeats stop but the process stays alive.
    HANG = "hang"
    #: A partially persisted journal line (crash mid-``write``).
    TORN_WRITE = "torn_write"


class InjectedFault(RuntimeError):
    """The generic injected exception (deliberately *not* an
    :class:`~repro.robust.errors.ExplanationError` — it exercises the
    guard's handling of unexpected errors)."""


class InjectedCrash(InjectedFault):
    """Caught at the worker-subprocess entry and turned into a hard exit."""


class InjectedHang(InjectedFault):
    """Caught at the worker-subprocess entry: stop heartbeating, sleep."""


class InjectedTornWrite(InjectedFault):
    """Caught by the journal: persist only a prefix of the line."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Args:
        point: Injection-point name (see :data:`INJECTION_POINTS`).
        kind: What to raise.
        at: Zero-based arrival index at which the fault first fires.
        count: Number of consecutive arrivals that fire (a large value
            makes the point fail persistently).
        message: Attached to the raised exception.
        match: Optional substring filter on the arrival's *context*
            (e.g. a grammar name): the spec only fires when the firing
            site passed a context containing it. ``None`` matches every
            arrival. Lets a chaos run poison one grammar while the rest
            of the fleet stays healthy.
    """

    point: str
    kind: FaultKind = FaultKind.EXCEPTION
    at: int = 0
    count: int = 1
    message: str = "injected fault"
    match: str | None = None

    def build_exception(self) -> BaseException:
        detail = f"{self.message} [{self.kind.value} @ {self.point}]"
        if self.kind is FaultKind.TIMEOUT:
            return SearchTimeout(detail, stage=self.point, injected=True)
        if self.kind is FaultKind.BUDGET:
            return BudgetExhausted(detail, stage=self.point, injected=True)
        if self.kind is FaultKind.OOM:
            return MemoryError(detail)
        if self.kind is FaultKind.CRASH:
            return InjectedCrash(detail)
        if self.kind is FaultKind.HANG:
            return InjectedHang(detail)
        if self.kind is FaultKind.TORN_WRITE:
            return InjectedTornWrite(detail)
        return InjectedFault(detail)

    def to_json(self) -> dict[str, object]:
        return {
            "point": self.point,
            "kind": self.kind.value,
            "at": self.at,
            "count": self.count,
            "message": self.message,
            "match": self.match,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FaultSpec":
        return cls(
            point=str(data["point"]),
            kind=FaultKind(str(data.get("kind", FaultKind.EXCEPTION.value))),
            at=int(data.get("at", 0)),  # type: ignore[arg-type]
            count=int(data.get("count", 1)),  # type: ignore[arg-type]
            message=str(data.get("message", "injected fault")),
            match=(str(data["match"]) if data.get("match") is not None else None),
        )


@dataclass
class FaultRegistry:
    """Arrival-counting registry behind the module-level :func:`fire`."""

    specs: list[FaultSpec] = field(default_factory=list)
    arrivals: dict[str, int] = field(default_factory=dict)
    #: Arrival counters for ``match``-filtered specs, keyed by
    #: ``(point, match)`` and counting only arrivals whose context
    #: matched — so an ``at``/``count`` window on a filtered spec indexes
    #: the *target's* arrivals, unperturbed by unrelated traffic.
    matched_arrivals: dict[tuple[str, str], int] = field(default_factory=dict)
    fired: list[tuple[str, FaultKind, int]] = field(default_factory=list)

    @property
    def active(self) -> bool:
        return bool(self.specs)

    def install(self, *specs: FaultSpec) -> None:
        for spec in specs:
            if spec.point not in INJECTION_POINTS:
                raise ValueError(
                    f"unknown injection point {spec.point!r}; "
                    f"known points: {', '.join(INJECTION_POINTS)}"
                )
            self.specs.append(spec)

    def reset(self) -> None:
        self.specs.clear()
        self.arrivals.clear()
        self.matched_arrivals.clear()
        self.fired.clear()

    def fire(self, point: str, context: str | None = None) -> None:
        """Record an arrival at *point*; raise if a spec covers it.

        *context* is matched against each spec's ``match`` filter; specs
        without a filter fire regardless. Filtered specs index their
        ``at``/``count`` windows over *matching* arrivals only, so
        poisoning one grammar is unaffected by how much healthy traffic
        interleaves with it.
        """
        arrival = self.arrivals.get(point, 0)
        self.arrivals[point] = arrival + 1
        matched_indices: dict[tuple[str, str], int] = {}
        for spec in self.specs:
            if spec.point != point or spec.match is None:
                continue
            if context is not None and spec.match in context:
                key = (point, spec.match)
                if key not in matched_indices:
                    index = self.matched_arrivals.get(key, 0)
                    matched_indices[key] = index
                    self.matched_arrivals[key] = index + 1
        for spec in self.specs:
            if spec.point != point:
                continue
            if spec.match is None:
                index = arrival
            else:
                key = (point, spec.match)
                if key not in matched_indices:
                    continue  # this arrival's context did not match
                index = matched_indices[key]
            if spec.at <= index < spec.at + spec.count:
                self.fired.append((point, spec.kind, index))
                raise spec.build_exception()

    def seed_arrivals(self, offsets: Mapping[str, int]) -> None:
        """Pre-count arrivals (cross-process continuity).

        A supervisor retrying a crashed worker spawns a *fresh* process
        whose registry starts at zero; seeding the worker's arrival
        counter with the attempt number lets a ``count``-bounded crash
        spec stop firing after the planned number of attempts. Filtered
        counters are seeded to the same offset for every installed spec
        at the point.
        """
        for point, offset in offsets.items():
            if offset > self.arrivals.get(point, 0):
                self.arrivals[point] = offset
            for spec in self.specs:
                if spec.point == point and spec.match is not None:
                    key = (point, spec.match)
                    if offset > self.matched_arrivals.get(key, 0):
                        self.matched_arrivals[key] = offset


_REGISTRY = FaultRegistry()


def registry() -> FaultRegistry:
    """The process-wide registry (tests may inspect ``fired``)."""
    return _REGISTRY


def fire(point: str, context: str | None = None) -> None:
    """Declare an injection point; no-op unless faults are installed."""
    if _REGISTRY.active:
        _REGISTRY.fire(point, context)


def specs_to_env(specs: Iterator[FaultSpec] | list[FaultSpec]) -> str:
    """Serialize *specs* for the :data:`ENV_FAULTS` environment variable."""
    return json.dumps([spec.to_json() for spec in specs])


def install_from_env(environ: Mapping[str, str] | None = None) -> list[FaultSpec]:
    """Install specs from ``$REPRO_FAULTS`` (JSON list) into the registry.

    Returns the installed specs (empty when the variable is unset).
    Malformed JSON raises ``ValueError`` — an armed chaos run must never
    silently run un-poisoned.
    """
    raw = (environ if environ is not None else os.environ).get(ENV_FAULTS)
    if not raw:
        return []
    try:
        entries = json.loads(raw)
        specs = [FaultSpec.from_json(entry) for entry in entries]
    except (TypeError, KeyError, ValueError) as error:
        raise ValueError(f"malformed {ENV_FAULTS}: {error}") from error
    _REGISTRY.install(*specs)
    return specs


@contextmanager
def inject_faults(*specs: FaultSpec) -> Iterator[FaultRegistry]:
    """Install *specs* for the duration of the ``with`` block.

    The registry (including its arrival counters) is fully reset on
    exit, so campaigns are isolated from each other.
    """
    _REGISTRY.reset()
    _REGISTRY.install(*specs)
    try:
        yield _REGISTRY
    finally:
        _REGISTRY.reset()
