"""Structured exceptions for the explanation pipeline.

Every failure the pipeline can recover from is an
:class:`ExplanationError`. The hierarchy replaces the bare
``RuntimeError``s the early stages used to raise: each exception carries
the *stage* it came from and whatever conflict/state context the raiser
had, so a degraded report entry can name both without parsing message
strings.

The hierarchy::

    ExplanationError
    ├── PathNotFoundError        the LASG / backward walk found no path
    ├── SearchTimeout            a wall-clock deadline expired
    ├── BudgetExhausted          a node/step/configuration budget ran out
    │   └── MemoryBudgetExceeded the tracemalloc high-water mark was hit
    ├── VerificationFailed       the Earley oracle rejected a candidate
    └── Cancelled                the caller's CancellationToken fired

``Cancelled`` is deliberately *not* absorbed by the per-stage guard
(:func:`repro.robust.degrade.run_guarded` re-raises it): cancellation
means "stop the whole run", not "skip this stage".
"""

from __future__ import annotations

from typing import Any


class ExplanationError(Exception):
    """Base class for recoverable pipeline failures.

    Args:
        message: Human-readable description.
        stage: Pipeline stage name (one of ``repro.robust.degrade.Stage``
            values), when known at raise time.
        context: Free-form extra context (conflict, state id, counters);
            values are stringified lazily by :meth:`describe`.
    """

    def __init__(
        self, message: str, *, stage: str | None = None, **context: Any
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.context = context

    def describe(self) -> str:
        """The message plus any stage/context annotations."""
        parts = [str(self.args[0]) if self.args else type(self).__name__]
        if self.stage:
            parts.append(f"stage={self.stage}")
        parts.extend(f"{key}={value}" for key, value in self.context.items())
        return "; ".join(parts)


class PathNotFoundError(ExplanationError):
    """No lookahead-sensitive path (or backward walk) reaches the target.

    On a well-formed automaton this indicates an internal inconsistency —
    LALR conflicts are always reachable — so it is reported as a degraded
    entry rather than silently tolerated.
    """


class SearchTimeout(ExplanationError):
    """A cooperative wall-clock deadline expired mid-stage."""


class BudgetExhausted(ExplanationError):
    """A discrete budget (configurations, nodes, steps) ran out."""


class MemoryBudgetExceeded(BudgetExhausted):
    """The ``tracemalloc`` high-water mark exceeded the memory budget."""


class VerificationFailed(ExplanationError):
    """The independent Earley oracle could not confirm a counterexample."""


class Cancelled(ExplanationError):
    """The caller's :class:`~repro.robust.budget.CancellationToken` fired."""
