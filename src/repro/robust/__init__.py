"""Resource governance and fault isolation for the explanation pipeline.

This package makes the whole counterexample pipeline budget-governed,
cancellable, and fault-isolated:

* :mod:`repro.robust.budget` — the unified :class:`Budget` /
  :class:`Deadline` / :class:`CancellationToken` model, polled
  cooperatively with an adaptive cadence;
* :mod:`repro.robust.errors` — the structured
  :class:`ExplanationError` hierarchy the stages raise;
* :mod:`repro.robust.degrade` — the :func:`run_guarded` stage boundary
  and the :class:`DegradedExplanation` record behind the three-rung
  degradation ladder (unifying → nonunifying → conflict stub);
* :mod:`repro.robust.faults` — the deterministic fault-injection
  registry tests use to prove the ladder always terminates;
* :mod:`repro.robust.ledger` — the generic crash-safe snapshot ledger
  (append-only JSONL, torn-write tolerant, atomically rotated) behind
  the service journal and the campaign shard checkpoints.

See ``docs/ROBUSTNESS.md`` for the full model.
"""

from repro.robust.budget import AdaptiveTicker, Budget, CancellationToken, Deadline
from repro.robust.degrade import (
    DegradedExplanation,
    GuardOutcome,
    Rung,
    Stage,
    degradation_from,
    run_guarded,
)
from repro.robust.errors import (
    BudgetExhausted,
    Cancelled,
    ExplanationError,
    MemoryBudgetExceeded,
    PathNotFoundError,
    SearchTimeout,
    VerificationFailed,
)
from repro.robust.faults import (
    ENV_FAULTS,
    INJECTION_POINTS,
    FaultKind,
    FaultRegistry,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    InjectedTornWrite,
    fire,
    inject_faults,
    install_from_env,
    registry,
    specs_to_env,
)
from repro.robust.ledger import ReplayStats, SnapshotLedger
from repro.robust.retry import NO_RETRY, RetryPolicy, call_with_retry

__all__ = [
    "AdaptiveTicker",
    "Budget",
    "BudgetExhausted",
    "Cancelled",
    "CancellationToken",
    "ENV_FAULTS",
    "Deadline",
    "DegradedExplanation",
    "ExplanationError",
    "FaultKind",
    "FaultRegistry",
    "FaultSpec",
    "GuardOutcome",
    "INJECTION_POINTS",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "InjectedTornWrite",
    "MemoryBudgetExceeded",
    "NO_RETRY",
    "PathNotFoundError",
    "ReplayStats",
    "RetryPolicy",
    "SnapshotLedger",
    "Rung",
    "SearchTimeout",
    "Stage",
    "VerificationFailed",
    "call_with_retry",
    "degradation_from",
    "fire",
    "inject_faults",
    "install_from_env",
    "registry",
    "run_guarded",
    "specs_to_env",
]
