"""Generic retry policy: capped attempts, exponential backoff, jitter.

Every retry loop in the system — the finder's budget-escalating re-search
of timed-out conflicts, the service supervisor's re-spawn of crashed
workers, the parallel explainer's parent-side retry — used to hard-code
its own attempt accounting. :class:`RetryPolicy` centralises the policy
half (how many attempts, how long to wait between them) while leaving
the mechanism (what "failure" means, how to sleep) to the caller:

* delays grow geometrically from ``base_delay`` by ``multiplier`` and
  are clamped at ``max_delay``;
* optional proportional jitter (``±jitter`` fraction) desynchronises
  herds of retriers — pass a seeded :class:`random.Random` to keep runs
  deterministic;
* ``max_attempts`` counts *total* attempts including the first, so
  ``max_attempts=1`` means "never retry" and the default of 3 means
  "two retries".

:func:`call_with_retry` is the plain synchronous executor for callers
without their own loop; async callers (the service supervisor) consume
:meth:`RetryPolicy.delay` directly and ``await`` their own sleeps.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry and how long to back off in between.

    Args:
        max_attempts: Total attempts, including the first (>= 1).
        base_delay: Seconds before the first retry.
        multiplier: Geometric growth factor per subsequent retry.
        max_delay: Clamp on any single backoff delay.
        jitter: Proportional jitter: each delay is scaled by a uniform
            factor in ``[1 - jitter, 1 + jitter]`` when an RNG is given.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    # ------------------------------------------------------------------ #

    @property
    def max_retries(self) -> int:
        """Retries after the first attempt."""
        return self.max_attempts - 1

    def should_retry(self, attempts_made: int) -> bool:
        """Whether another attempt is allowed after *attempts_made* (>= 1)."""
        return attempts_made < self.max_attempts

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before the retry that follows failed attempt *attempt*.

        *attempt* is 1-based: ``delay(1)`` precedes the second attempt.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if rng is not None and self.jitter > 0.0 and raw > 0.0:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """The full backoff schedule: one delay per allowed retry."""
        for attempt in range(1, self.max_attempts):
            yield self.delay(attempt, rng)


#: "Never retry" — a single attempt, no backoff.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    *,
    retriable: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    rng: random.Random | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Run *fn* under *policy*; re-raise the last error when it gives up.

    Args:
        fn: Zero-argument callable to attempt.
        policy: Attempt/backoff policy.
        retriable: Exception types that trigger a retry; anything else
            propagates immediately.
        sleep: Injectable sleeper (tests pass a recorder).
        rng: Jitter source; ``None`` disables jitter.
        on_retry: Observer called with ``(attempt, error)`` before each
            backoff sleep.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retriable as error:
            if not policy.should_retry(attempt):
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            pause = policy.delay(attempt, rng)
            if pause > 0.0:
                sleep(pause)


__all__ = ["NO_RETRY", "RetryPolicy", "call_with_retry"]
