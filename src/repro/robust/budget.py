"""The unified resource budget threaded through the pipeline.

One :class:`Budget` replaces the three ad-hoc timing mechanisms the
finder and search used to carry separately (a per-conflict deadline
polled every 256 expansions, a cumulative stopwatch, and a bare
configuration cap). A budget combines:

* a wall-clock :class:`Deadline` (optional);
* a discrete node/configuration/step cap (optional);
* a ``tracemalloc`` memory high-water mark (optional);
* a shared :class:`CancellationToken` (optional).

Budgets are *cooperative*: governed loops call :meth:`Budget.charge` for
every unit of work and :meth:`Budget.poll` once per iteration. ``poll``
keeps the cheap checks (cancellation flag, node count) on every call and
gates the expensive ones (``time.monotonic``, ``tracemalloc``) behind an
:class:`AdaptiveTicker`, whose cadence starts at 1, grows geometrically
while iterations are fast, and collapses back to 1 the moment a slow
stretch is observed — so a burst of expensive expansions can never
overrun the deadline by a whole fixed-size polling window.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable

from repro.robust.errors import (
    BudgetExhausted,
    Cancelled,
    MemoryBudgetExceeded,
    SearchTimeout,
)

Clock = Callable[[], float]


class CancellationToken:
    """A caller-owned flag that cooperatively stops a whole run.

    Cancellation is sticky: once :meth:`cancel` is called, every budget
    sharing the token raises :class:`~repro.robust.errors.Cancelled` at
    its next poll.
    """

    __slots__ = ("_cancelled", "_reason")

    def __init__(self) -> None:
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "cancelled by caller") -> None:
        self._cancelled = True
        self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> str:
        return self._reason

    def raise_if_cancelled(self, stage: str | None = None) -> None:
        if self._cancelled:
            raise Cancelled(self._reason or "cancelled", stage=stage)


class Deadline:
    """An absolute wall-clock deadline."""

    __slots__ = ("at", "_clock")

    def __init__(self, at: float, clock: Clock = time.monotonic) -> None:
        self.at = at
        self._clock = clock

    @classmethod
    def after(cls, seconds: float, clock: Clock = time.monotonic) -> "Deadline":
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self.at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.at


class AdaptiveTicker:
    """Adaptive cadence for polling an expensive clock inside a hot loop.

    The first :meth:`tick` always fires (so a zero deadline is noticed on
    iteration one, not iteration 256). After a fast stretch the interval
    doubles, up to ``max_interval``; after any stretch slower than
    ``slow_stretch`` seconds it resets to 1, so one expensive expansion
    forces an immediate re-check.
    """

    __slots__ = ("_interval", "_until_next", "_last_fire", "_clock",
                 "max_interval", "slow_stretch")

    def __init__(
        self,
        max_interval: int = 256,
        slow_stretch: float = 0.05,
        clock: Clock = time.monotonic,
    ) -> None:
        self.max_interval = max_interval
        self.slow_stretch = slow_stretch
        self._clock = clock
        self._interval = 1
        self._until_next = 1
        self._last_fire: float | None = None

    @property
    def interval(self) -> int:
        """Current iterations-per-check cadence (for tests/telemetry)."""
        return self._interval

    def tick(self) -> bool:
        """Count one iteration; ``True`` when the caller should check."""
        self._until_next -= 1
        if self._until_next > 0:
            return False
        now = self._clock()
        if self._last_fire is not None and now - self._last_fire > self.slow_stretch:
            self._interval = 1
        else:
            self._interval = min(self._interval * 2, self.max_interval)
        self._last_fire = now
        self._until_next = self._interval
        return True


class Budget:
    """A unified, cooperatively-polled resource budget.

    Args:
        time_limit: Wall-clock seconds; the deadline anchors lazily at the
            first charge/poll, so a budget may be built ahead of use.
        max_nodes: Cap on units charged via :meth:`charge`
            (configurations, vertices, Earley steps — the stage decides
            the unit).
        max_memory_bytes: ``tracemalloc`` high-water mark relative to the
            baseline at start. Tracing is started on demand and noted, so
            :meth:`close` can stop it again.
        token: Shared cancellation token.
        stage: Default stage name attached to raised errors.
        clock: Injectable clock (tests use a fake).
    """

    def __init__(
        self,
        time_limit: float | None = None,
        max_nodes: int | None = None,
        max_memory_bytes: int | None = None,
        token: CancellationToken | None = None,
        stage: str | None = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self.time_limit = time_limit
        self.max_nodes = max_nodes
        self.max_memory_bytes = max_memory_bytes
        self.token = token
        self.stage = stage
        self._clock = clock
        self.nodes_spent = 0
        self._started_at: float | None = None
        self._deadline: Deadline | None = None
        self._memory_baseline = 0
        self._owns_tracing = False
        self._ticker = AdaptiveTicker(clock=clock)

    # ------------------------------------------------------------------ #

    def start(self) -> "Budget":
        """Anchor the deadline and memory baseline now (idempotent)."""
        if self._started_at is None:
            self._started_at = self._clock()
            if self.time_limit is not None:
                self._deadline = Deadline.after(self.time_limit, self._clock)
            if self.max_memory_bytes is not None:
                if not tracemalloc.is_tracing():
                    tracemalloc.start()
                    self._owns_tracing = True
                self._memory_baseline = tracemalloc.get_traced_memory()[0]
        return self

    def close(self) -> None:
        """Stop ``tracemalloc`` if this budget started it."""
        if self._owns_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracing = False

    def elapsed(self) -> float:
        """Wall-clock seconds since the budget was first used."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining_time(self) -> float | None:
        """Seconds left on the deadline, or ``None`` when unbounded."""
        if self.time_limit is None:
            return None
        self.start()
        assert self._deadline is not None
        return self._deadline.remaining()

    # ------------------------------------------------------------------ #

    def charge(self, nodes: int = 1) -> None:
        """Record *nodes* units of work (checked at the next poll)."""
        self.nodes_spent += nodes

    def poll(self, stage: str | None = None) -> None:
        """Cheap per-iteration check; full check at the ticker's cadence.

        Raises :class:`Cancelled`, :class:`BudgetExhausted`,
        :class:`MemoryBudgetExceeded`, or :class:`SearchTimeout`.
        """
        stage = stage or self.stage
        if self.token is not None and self.token.cancelled:
            self.token.raise_if_cancelled(stage)
        if self.max_nodes is not None and self.nodes_spent > self.max_nodes:
            raise BudgetExhausted(
                f"node budget of {self.max_nodes} exhausted",
                stage=stage,
                nodes_spent=self.nodes_spent,
            )
        if self._ticker.tick():
            self.check(stage)

    def check(self, stage: str | None = None) -> None:
        """Unconditional full check (deadline + memory + cheap checks)."""
        stage = stage or self.stage
        self.start()
        if self.token is not None:
            self.token.raise_if_cancelled(stage)
        if self.max_nodes is not None and self.nodes_spent > self.max_nodes:
            raise BudgetExhausted(
                f"node budget of {self.max_nodes} exhausted",
                stage=stage,
                nodes_spent=self.nodes_spent,
            )
        if self._deadline is not None and self._deadline.expired:
            raise SearchTimeout(
                f"time limit of {self.time_limit}s expired",
                stage=stage,
                elapsed=round(self.elapsed(), 4),
            )
        if self.max_memory_bytes is not None and tracemalloc.is_tracing():
            current = tracemalloc.get_traced_memory()[0]
            used = current - self._memory_baseline
            if used > self.max_memory_bytes:
                raise MemoryBudgetExceeded(
                    f"memory budget of {self.max_memory_bytes} bytes exceeded",
                    stage=stage,
                    bytes_used=used,
                )

    # ------------------------------------------------------------------ #

    def sub(
        self,
        time_limit: float | None = None,
        max_nodes: int | None = None,
        stage: str | None = None,
    ) -> "Budget":
        """A child budget sharing this budget's token and clock.

        The child's time limit is clipped to the parent's remaining time,
        so a sub-stage can never outlive the stage that spawned it.
        """
        remaining = self.remaining_time()
        if remaining is not None:
            time_limit = remaining if time_limit is None else min(time_limit, remaining)
        return Budget(
            time_limit=time_limit,
            max_nodes=max_nodes,
            token=self.token,
            stage=stage or self.stage,
            clock=self._clock,
        )
