"""Generic crash-safe snapshot ledger (append-only JSONL).

Extracted from :mod:`repro.service.journal` so the same snapshot/replay
discipline serves any subsystem that must survive ``kill -9`` — the
analysis service's job store and the campaign orchestrator's per-shard
unit ledgers both ride on it.

The discipline:

* every mutation appends one **full snapshot** as a JSON line keyed by
  an id field; replay folds the lines left to right, so the last intact
  snapshot per key wins and replaying twice can never invent state;
* a **torn final line** (crash mid-``write``) fails JSON decoding and is
  skipped — the key falls back to its previous snapshot;
* on re-open for append, a missing trailing newline is **healed** first,
  so the next snapshot starts on a fresh line instead of fusing with the
  torn fragment;
* mid-file garbage is counted and skipped, never fatal;
* rotation rewrites the ledger through a temp file published with
  ``os.replace``, so a crash mid-rotation preserves the old ledger
  byte-for-byte — and the **stale rotation temp** such a crash leaves
  behind is swept on the next open (an aborted process must not leak
  ``*.rotate.tmp`` litter next to the ledger it never rotated).

The ``journal`` fault-injection point simulates a torn write: under an
installed :class:`~repro.robust.faults.FaultKind.TORN_WRITE` spec the
line is persisted only up to its midpoint, exactly what a power cut
mid-``write(2)`` leaves behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.robust.faults import InjectedTornWrite, fire


@dataclass
class ReplayStats:
    """What :meth:`SnapshotLedger.replay` saw while folding the ledger."""

    lines: int = 0
    applied: int = 0
    torn: int = 0
    errors: list[str] = field(default_factory=list)


class SnapshotLedger:
    """Append-only JSONL ledger of keyed snapshots.

    Args:
        path: Ledger file location (parent directories are created).
        key: Snapshot field holding the fold key.
        fsync: Force each append to stable storage. Off by default —
            the crash contract only promises *at-least-once* execution,
            and an OS-buffered line lost with the power merely re-runs
            the work it recorded.
        rotate_after: Appends between automatic compactions.
        fault_point: Fault-registry point fired before each line write
            (torn-write chaos rides the service's ``journal`` point).
        fault_context: Context string given to the fault registry's
            ``match`` filter, so chaos specs can target one ledger.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        key: str = "id",
        fsync: bool = False,
        rotate_after: int = 512,
        fault_point: str = "journal",
        fault_context: str | None = None,
    ) -> None:
        self.path = Path(path)
        self.key = key
        self.fsync = fsync
        self.rotate_after = rotate_after
        self.fault_point = fault_point
        self.fault_context = fault_context
        self.appends_since_rotate = 0
        self.torn_writes = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.stale_temps_removed = self._remove_stale_temps()

    # ------------------------------------------------------------------ #
    # Hygiene

    def _rotate_tmp(self) -> Path:
        return self.path.with_name(self.path.name + ".rotate.tmp")

    def _remove_stale_temps(self) -> int:
        """Sweep rotation temps a crashed/aborted writer left behind.

        A temp that never reached ``os.replace`` is garbage by
        construction (the published ledger is still the old one), so
        removing it on open is always safe.
        """
        removed = 0
        try:
            candidates = list(self.path.parent.glob(self.path.name + ".rotate.tmp*"))
        except OSError:
            return removed
        for stale in candidates:
            try:
                stale.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------ #
    # Writing

    def append(self, snapshot: Mapping[str, Any]) -> None:
        """Durably append one *snapshot* (must carry the key field)."""
        if self.key not in snapshot:
            raise ValueError(f"snapshot is missing its {self.key!r} key")
        line = json.dumps(dict(snapshot), separators=(",", ":"))
        self._write_line(line)
        self.appends_since_rotate += 1

    def _write_line(self, line: str) -> None:
        healed = self._needs_heal()
        with open(self.path, "a", encoding="utf-8") as handle:
            if healed:
                handle.write("\n")
            try:
                fire(self.fault_point, self.fault_context)
                handle.write(line + "\n")
            except InjectedTornWrite:
                # Simulate a crash mid-write: persist only a prefix, no
                # trailing newline. The snapshot is lost; replay falls
                # back to the key's previous snapshot.
                handle.write(line[: max(1, len(line) // 2)])
                self.torn_writes += 1
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def _needs_heal(self) -> bool:
        """True when the ledger exists and does not end in a newline."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    # ------------------------------------------------------------------ #
    # Reading

    def replay(
        self, decode: Callable[[dict[str, Any]], Any] | None = None
    ) -> tuple[dict[str, Any], ReplayStats]:
        """Fold the ledger into the latest snapshot per key.

        *decode* optionally maps each raw snapshot dict to a richer
        object; a decode failure (``ValueError``/``KeyError``/
        ``TypeError``) counts the line as torn, same as bad JSON.
        """
        stats = ReplayStats()
        records: dict[str, Any] = {}
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return records, stats
        for index, raw in enumerate(lines):
            raw = raw.strip()
            if not raw:
                continue
            stats.lines += 1
            try:
                data = json.loads(raw)
                if not isinstance(data, dict) or self.key not in data:
                    raise ValueError(f"snapshot without a {self.key!r} key")
                value = decode(data) if decode is not None else data
            except (ValueError, KeyError, TypeError) as error:
                stats.torn += 1
                stats.errors.append(f"line {index + 1}: {error}")
                continue
            records[str(data[self.key])] = value
            stats.applied += 1
        return records, stats

    # ------------------------------------------------------------------ #
    # Rotation

    def maybe_rotate(self, snapshots: Iterable[Mapping[str, Any]]) -> bool:
        """Compact once enough appends have accumulated."""
        if self.appends_since_rotate < self.rotate_after:
            return False
        self.rotate(snapshots)
        return True

    def rotate(self, snapshots: Iterable[Mapping[str, Any]]) -> None:
        """Atomically rewrite the ledger as the given snapshots, in order.

        The rewrite goes through a temp file + ``os.replace``, so a
        crash mid-rotation preserves the previous ledger byte-for-byte
        (and leaves a temp the next open sweeps away).
        """
        tmp = self._rotate_tmp()
        with open(tmp, "w", encoding="utf-8") as handle:
            for snapshot in snapshots:
                handle.write(
                    json.dumps(dict(snapshot), separators=(",", ":")) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self.appends_since_rotate = 0

    # ------------------------------------------------------------------ #

    def info(self) -> dict[str, Any]:
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "path": str(self.path),
            "size_bytes": size,
            "appends_since_rotate": self.appends_since_rotate,
            "torn_writes": self.torn_writes,
            "stale_temps_removed": self.stale_temps_removed,
        }


__all__ = ["ReplayStats", "SnapshotLedger"]
