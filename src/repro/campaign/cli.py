"""``repro-conflicts campaign`` — plan, run, warm, and merge campaigns.

Subcommands::

    campaign plan  [spec flags] [--shard k/M]     list the work units
    campaign run   [spec flags] --out DIR         run (or resume) shards
    campaign warm  [spec flags] --cache-dir DIR   pre-populate the cache
    campaign merge SHARD.json... --out REPORT     merge + gate

``run`` executes either **one** shard of an M-way campaign
(``--shard k/M`` — the CI matrix shape) or **all** shards locally
(``--shards M --jobs W`` — the work-stealing fleet shape). Both
checkpoint every unit to per-shard ledgers in ``--out``, so re-running
the identical command after a crash resumes instead of restarting.

``merge`` folds shard result files into the canonical byte-stable
campaign report and exits non-zero when the gate fails (unit errors,
fatal fuzz failures, flakes, pinned-counter drift, or a cold cache when
``--min-cache-hit-shards`` demands warmth).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.campaign.report import (
    MergeError,
    check_report,
    merge_shard_documents,
    render_report,
    render_summary_markdown,
)
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.units import (
    CampaignSpec,
    parse_shard,
    plan_units,
    select_shard,
)


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    spec = parser.add_argument_group("campaign spec")
    spec.add_argument(
        "--spec",
        type=Path,
        default=None,
        help="JSON spec file; overrides the individual spec flags",
    )
    spec.add_argument("--fuzz-iterations", type=int, default=0)
    spec.add_argument("--fuzz-seed", type=int, default=0)
    spec.add_argument(
        "--corpus", nargs="*", default=None, metavar="NAME",
        help="corpus grammars to sweep (lint + ambiguity + provenance)",
    )
    spec.add_argument(
        "--bench", nargs="*", default=None, metavar="NAME",
        help="grammars to benchmark ('FAST' expands to the fast suite)",
    )
    spec.add_argument("--time-limit", type=float, default=0.3)
    spec.add_argument("--cumulative-limit", type=float, default=2.0)
    spec.add_argument("--oracle-samples", type=int, default=4)
    spec.add_argument("--max-lr1-states", type=int, default=2_000)
    spec.add_argument("--verify-step-budget", type=int, default=50_000)
    spec.add_argument("--bench-repeats", type=int, default=1)


def _split_names(values) -> list[str]:
    """Flatten name arguments, accepting both spaces and commas."""
    names: list[str] = []
    for value in values or ():
        names.extend(part for part in value.split(",") if part)
    return names


def _validate_grammar_names(spec: CampaignSpec) -> None:
    """Reject unknown corpus/bench grammar names before any unit runs.

    A typo'd name would otherwise surface late as an error *unit* deep
    into a shard; failing the whole invocation up front (exit 2) is the
    CI-friendly behaviour.
    """
    from repro.corpus import registry

    known = {entry.name for entry in registry.all_specs()}
    unknown = [
        name for name in (*spec.corpus, *spec.bench) if name not in known
    ]
    if unknown:
        raise ValueError(
            "unknown grammar name(s): "
            + ", ".join(sorted(set(unknown)))
            + " (see repro-conflicts --list-corpus)"
        )


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec is not None:
        spec = CampaignSpec.from_json(json.loads(args.spec.read_text()))
    else:
        bench = _split_names(args.bench)
        if "FAST" in bench:
            from repro.perf.bench import FAST_GRAMMARS

            bench = [g for g in bench if g != "FAST"] + list(FAST_GRAMMARS)
        spec = CampaignSpec(
            fuzz_iterations=args.fuzz_iterations,
            fuzz_seed=args.fuzz_seed,
            corpus=tuple(_split_names(args.corpus)),
            bench=tuple(bench),
            time_limit=args.time_limit,
            cumulative_limit=args.cumulative_limit,
            oracle_samples=args.oracle_samples,
            max_lr1_states=args.max_lr1_states,
            verify_step_budget=args.verify_step_budget,
            bench_repeats=args.bench_repeats,
        )
    _validate_grammar_names(spec)
    return spec


# ---------------------------------------------------------------------- #
# Subcommands


def _cmd_plan(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    if args.shard:
        selection = select_shard(spec, parse_shard(args.shard))
        units = selection.units
        print(f"campaign {spec.digest()} {selection.name}: {len(units)} units")
    else:
        units = plan_units(spec)
        print(f"campaign {spec.digest()}: {len(units)} units")
    for unit in units:
        print(f"  {unit.id}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)

    def progress(shard_name: str, unit_id: str, result) -> None:
        print(
            f"[{shard_name}] {unit_id}: {result.outcome} "
            f"({result.telemetry.get('elapsed_s', 0):.2f}s)",
            flush=True,
        )

    scheduler = CampaignScheduler(
        spec,
        args.out,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        retries=args.retries,
        fsync=args.fsync,
        progress=progress if not args.quiet else None,
    )
    try:
        if args.shard:
            paths = [scheduler.run_shard(parse_shard(args.shard))]
        else:
            paths = scheduler.run_local(args.shards)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    errors = 0
    for path in paths:
        document = json.loads(path.read_text())
        bad = sum(
            1 for unit in document["units"].values() if unit["outcome"] != "ok"
        )
        errors += bad
        print(
            f"wrote {path} ({len(document['units'])} units, {bad} errored, "
            f"{document['telemetry']['resumed']} resumed, "
            f"{document['telemetry']['stolen']} stolen)"
        )
    return 1 if errors else 0


def _cmd_warm(args: argparse.Namespace) -> int:
    from repro.corpus import registry
    from repro.perf.cache import (
        AutomatonCache,
        analyze_conflicts_cached,
        build_automaton_cached,
    )

    spec = _spec_from_args(args)
    names = list(dict.fromkeys([*spec.corpus, *spec.bench]))
    if not names:
        names = [grammar_spec.name for grammar_spec in registry.all_specs()]
    cache = AutomatonCache(args.cache_dir)
    for name in names:
        automaton = build_automaton_cached(registry.load(name), cache)
        analyze_conflicts_cached(automaton, cache)
    print(
        f"warmed {args.cache_dir}: {len(names)} grammars, "
        f"{cache.hits} hits / {cache.misses} misses"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    documents = []
    for path in args.shards:
        try:
            documents.append(json.loads(Path(path).read_text()))
        except (OSError, ValueError) as error:
            print(f"error: cannot read shard file {path}: {error}", file=sys.stderr)
            return 2
    expect = {}
    if args.expect_file:
        try:
            expect.update(json.loads(Path(args.expect_file).read_text()))
        except (OSError, ValueError) as error:
            print(f"error: cannot read --expect-file: {error}", file=sys.stderr)
            return 2
    for pin in args.expect or ():
        key, _, value = pin.partition("=")
        if not _:
            print(f"error: malformed --expect {pin!r} (want path=value)",
                  file=sys.stderr)
            return 2
        expect[key] = json.loads(value)
    try:
        report, telemetry = merge_shard_documents(documents)
    except MergeError as error:
        print(f"merge error: {error}", file=sys.stderr)
        return 2

    rendered = render_report(report)
    if args.out:
        Path(args.out).write_text(rendered)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(rendered)
    if args.telemetry_out:
        Path(args.telemetry_out).write_text(
            json.dumps(telemetry, indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote {args.telemetry_out}")
    if args.summary_out:
        summary = render_summary_markdown(report, telemetry)
        with open(args.summary_out, "a", encoding="utf-8") as handle:
            handle.write(summary + "\n")
        print(f"appended summary to {args.summary_out}")

    failures = []
    if args.check:
        failures = check_report(report, expect=expect)
        if args.min_cache_hit_shards:
            warm = sum(
                1
                for shard in telemetry["shards"].values()
                if shard.get("cache_hits", 0) > 0
            )
            if warm < args.min_cache_hit_shards:
                failures.append(
                    f"only {warm} shard(s) hit the automaton cache "
                    f"(require >= {args.min_cache_hit_shards}) — cache "
                    "sharing across shards is broken"
                )
    if failures:
        print("campaign gate failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if args.check:
        print("campaign gate passed")
    return 0


# ---------------------------------------------------------------------- #


def campaign_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-conflicts campaign",
        description="Sharded, resumable verification campaigns "
        "(see docs/CAMPAIGN.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan_p = sub.add_parser("plan", help="list a campaign's work units")
    _add_spec_arguments(plan_p)
    plan_p.add_argument("--shard", default=None, metavar="k/M")
    plan_p.set_defaults(func=_cmd_plan)

    run_p = sub.add_parser("run", help="run or resume campaign shards")
    _add_spec_arguments(run_p)
    run_p.add_argument("--out", type=Path, required=True,
                       help="ledger + shard-result directory")
    shape = run_p.add_mutually_exclusive_group()
    shape.add_argument("--shard", default=None, metavar="k/M",
                       help="run only shard k of M (CI matrix mode)")
    shape.add_argument("--shards", type=int, default=1,
                       help="run all M shards locally with work stealing")
    run_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process)")
    run_p.add_argument("--cache-dir", default=None,
                       help="shared automaton-cache directory")
    run_p.add_argument("--retries", type=int, default=0,
                       help="re-run a unit this many times after an error")
    run_p.add_argument("--fsync", action="store_true",
                       help="fsync every ledger append")
    run_p.add_argument("--quiet", action="store_true")
    run_p.set_defaults(func=_cmd_run)

    warm_p = sub.add_parser("warm", help="pre-populate the automaton cache")
    _add_spec_arguments(warm_p)
    warm_p.add_argument("--cache-dir", required=True)
    warm_p.set_defaults(func=_cmd_warm)

    merge_p = sub.add_parser("merge", help="merge shard files; gate the result")
    merge_p.add_argument("shards", nargs="+", metavar="SHARD.json")
    merge_p.add_argument("--out", type=Path, default=None,
                         help="merged report path (default: stdout)")
    merge_p.add_argument("--telemetry-out", type=Path, default=None)
    merge_p.add_argument("--summary-out", type=Path, default=None,
                         help="append a markdown summary (GITHUB_STEP_SUMMARY)")
    merge_p.add_argument("--check", action="store_true",
                         help="fail on errors, fatal fuzz failures, flakes")
    merge_p.add_argument("--expect", action="append", default=None,
                         metavar="PATH=VALUE",
                         help="pin an aggregate counter, e.g. "
                         "corpus.conflicts=42 (repeatable)")
    merge_p.add_argument("--expect-file", type=Path, default=None,
                         help="JSON file of pinned counters "
                         "({\"fuzz.conflicts\": 12, ...})")
    merge_p.add_argument("--min-cache-hit-shards", type=int, default=0,
                         help="require at least N shards with cache hits")
    merge_p.set_defaults(func=_cmd_merge)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


__all__ = ["campaign_main"]
