"""Fleet-scale campaign orchestration (see docs/CAMPAIGN.md).

A *campaign* turns the repo's verification surfaces — fuzz iterations,
corpus lint/ambiguity/provenance sweeps, benchmark passes — into a flat
list of deterministic, individually addressable **work units** that can
be partitioned across shards, executed by work-stealing worker
processes, checkpointed to crash-safe ledgers, and merged back into one
byte-stable campaign report:

* :mod:`repro.campaign.units` — specs, unit addressing, sharding;
* :mod:`repro.campaign.runner` — unit execution, payload/telemetry split;
* :mod:`repro.campaign.ledger` — per-shard resumable checkpoints;
* :mod:`repro.campaign.scheduler` — local fleet + CI-matrix execution;
* :mod:`repro.campaign.report` — merge, aggregation, gating, summaries;
* :mod:`repro.campaign.cli` — ``repro-conflicts campaign ...``.
"""

from repro.campaign.ledger import LedgerState, ShardLedger
from repro.campaign.report import (
    MergeError,
    check_report,
    merge_shard_documents,
    render_report,
    render_summary_markdown,
)
from repro.campaign.runner import UnitResult, execute_unit
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.units import (
    CampaignSpec,
    ShardSelection,
    WorkUnit,
    parse_shard,
    partition_units,
    plan_units,
    select_shard,
)

__all__ = [
    "CampaignScheduler",
    "CampaignSpec",
    "LedgerState",
    "MergeError",
    "ShardLedger",
    "ShardSelection",
    "UnitResult",
    "WorkUnit",
    "check_report",
    "execute_unit",
    "merge_shard_documents",
    "parse_shard",
    "partition_units",
    "plan_units",
    "render_report",
    "render_summary_markdown",
    "select_shard",
]
