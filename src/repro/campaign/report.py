"""Merge per-shard result files into one deterministic campaign report.

The merged report is the campaign's single source of truth and it is
**byte-stable**: any partition of the same spec — ``--shard 1/1`` in one
process, a 4-shard local fleet with stealing, or a 4-runner CI matrix —
renders to the identical file. That property rests on three invariants
enforced here:

* every shard file carries the same campaign digest and spec;
* the shard tuples form exactly ``1/M .. M/M`` for one ``M``, the unit
  sets are disjoint, and their union is exactly ``plan_units(spec)``;
* only the deterministic halves (outcome + payload + digest) enter the
  report; telemetry (timings, cache hits, steal counts) is folded into a
  separate side document for the CI step summary.

``check_report`` turns the report into a pass/fail gate: unit errors,
fatal fuzz failures, flaky units, and coverage holes each produce one
human-readable failure line.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.campaign.units import SCHEMA, CampaignSpec, plan_units


class MergeError(ValueError):
    """Shard files that cannot form one campaign report."""


# ---------------------------------------------------------------------- #
# Merge


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise MergeError(message)


def merge_shard_documents(
    documents: Iterable[Mapping[str, Any]],
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Fold shard result documents into ``(report, telemetry)``.

    Raises :class:`MergeError` on schema/campaign mismatches, partial or
    overlapping shard sets, or unit coverage holes.
    """
    documents = list(documents)
    _require(bool(documents), "no shard documents to merge")
    for doc in documents:
        _require(
            doc.get("schema") == SCHEMA,
            f"unexpected schema {doc.get('schema')!r} (want {SCHEMA!r})",
        )

    campaign = documents[0]["campaign"]
    spec_json = documents[0]["spec"]
    for doc in documents[1:]:
        _require(
            doc["campaign"] == campaign,
            f"campaign digest mismatch: {doc['campaign']} != {campaign}",
        )
        _require(doc["spec"] == spec_json, "spec mismatch between shard files")
    spec = CampaignSpec.from_json(spec_json)
    _require(
        spec.digest() == campaign,
        "campaign digest does not match the embedded spec",
    )

    shards = sorted(tuple(doc["shard"]) for doc in documents)
    total = shards[0][1]
    _require(
        shards == [(k, total) for k in range(1, total + 1)],
        f"shard set {shards} is not exactly 1/{total}..{total}/{total}",
    )

    units: dict[str, dict[str, Any]] = {}
    flakes: dict[str, list[str]] = {}
    for doc in sorted(documents, key=lambda d: tuple(d["shard"])):
        for unit_id, result in doc["units"].items():
            _require(
                unit_id not in units,
                f"unit {unit_id} reported by more than one shard",
            )
            units[unit_id] = {
                "outcome": result["outcome"],
                "payload": result["payload"],
                "digest": result["digest"],
            }
        for unit_id, digests in doc.get("flakes", {}).items():
            flakes[unit_id] = list(digests)

    planned = [unit.id for unit in plan_units(spec)]
    missing = sorted(set(planned) - set(units))
    extra = sorted(set(units) - set(planned))
    _require(not missing, f"units missing from all shards: {', '.join(missing[:5])}")
    _require(not extra, f"units outside the campaign plan: {', '.join(extra[:5])}")

    # The shard count is deliberately NOT part of the report: any
    # partition of the same spec must render to the identical bytes.
    report = {
        "schema": SCHEMA,
        "campaign": campaign,
        "spec": spec_json,
        "units": {unit_id: units[unit_id] for unit_id in sorted(units)},
        "aggregates": _aggregate(units),
        "flakes": {unit_id: flakes[unit_id] for unit_id in sorted(flakes)},
    }
    telemetry = {
        "campaign": campaign,
        "shard_count": total,
        "shards": {
            "-".join(str(part) for part in doc["shard"]): {
                key: value
                for key, value in doc.get("telemetry", {}).items()
                if key != "units"
            }
            for doc in documents
        },
        "totals": _telemetry_totals(documents),
    }
    return report, telemetry


def _telemetry_totals(documents: list[Mapping[str, Any]]) -> dict[str, Any]:
    totals = {
        key: 0
        for key in (
            "executed",
            "resumed",
            "stolen",
            "retried",
            "cache_hits",
            "cache_misses",
            "torn_writes",
        )
    }
    for doc in documents:
        telemetry = doc.get("telemetry", {})
        for key in totals:
            totals[key] += int(telemetry.get(key, 0))
    return totals


# ---------------------------------------------------------------------- #
# Aggregation over deterministic payloads


def _sum_into(target: dict[str, int], source: Mapping[str, Any]) -> None:
    for key, value in source.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            target[key] = target.get(key, 0) + value


def _aggregate(units: Mapping[str, Mapping[str, Any]]) -> dict[str, Any]:
    by_kind: dict[str, int] = {}
    outcomes = {"ok": 0, "error": 0}
    fuzz: dict[str, int] = {}
    fuzz_ambiguity: dict[str, int] = {}
    fuzz_failures: dict[str, int] = {}
    corpus: dict[str, Any] = {
        "grammars": 0,
        "conflicts": 0,
        "lint": {},
        "ambiguity": {},
        "provenance": {},
    }
    bench = {"grammars": 0, "conflicts": 0}

    for unit_id in sorted(units):
        result = units[unit_id]
        kind = unit_id.split(":", 1)[0]
        by_kind[kind] = by_kind.get(kind, 0) + 1
        outcomes[result["outcome"]] = outcomes.get(result["outcome"], 0) + 1
        if result["outcome"] != "ok":
            continue
        payload = result["payload"]
        if kind == "fuzz":
            _sum_into(
                fuzz,
                {
                    key: payload.get(key, 0)
                    for key in (
                        "grammars",
                        "grammars_with_conflicts",
                        "conflicts",
                        "counterexamples_validated",
                        "oracle_samples",
                        "lint_diagnostics",
                        "merge_artifacts",
                        "genuine_conflicts",
                    )
                },
            )
            _sum_into(fuzz_ambiguity, payload.get("ambiguity", {}))
            for failure in payload.get("failures", []):
                fuzz_failures[failure["kind"]] = (
                    fuzz_failures.get(failure["kind"], 0) + 1
                )
        elif kind == "corpus":
            corpus["grammars"] += 1
            corpus["conflicts"] += payload.get("conflicts", 0)
            _sum_into(corpus["lint"], payload.get("lint", {}))
            _sum_into(corpus["ambiguity"], payload.get("ambiguity", {}))
            _sum_into(corpus["provenance"], payload.get("provenance", {}))
        elif kind == "bench":
            bench["grammars"] += 1
            bench["conflicts"] += payload.get("conflicts", 0)

    fuzz["ambiguity"] = dict(sorted(fuzz_ambiguity.items()))
    fuzz["failures"] = dict(sorted(fuzz_failures.items()))
    return {
        "units": {
            "total": len(units),
            "by_kind": dict(sorted(by_kind.items())),
            "outcomes": outcomes,
        },
        "fuzz": fuzz,
        "corpus": corpus,
        "bench": bench,
    }


# ---------------------------------------------------------------------- #
# Rendering + gating


def render_report(report: Mapping[str, Any]) -> str:
    """The canonical byte-stable rendering of a campaign report."""
    return json.dumps(report, indent=1, sort_keys=True) + "\n"


def check_report(
    report: Mapping[str, Any],
    *,
    expect: Mapping[str, Any] | None = None,
) -> list[str]:
    """Gate failures for *report*; empty list means the campaign passed.

    *expect* optionally pins aggregate counters (dotted paths into
    ``aggregates``, e.g. ``{"fuzz.conflicts": 12}``) so CI catches silent
    behaviour drift, not just crashes.
    """
    failures: list[str] = []
    for unit_id, result in report["units"].items():
        if result["outcome"] != "ok":
            payload = result["payload"]
            failures.append(
                f"unit {unit_id} errored: "
                f"{payload.get('error_type')}: {payload.get('error')}"
            )
    fuzz_failures = report["aggregates"]["fuzz"].get("failures", {})
    for kind, count in sorted(fuzz_failures.items()):
        failures.append(f"fuzz harness reported {count} {kind} failure(s)")
    for unit_id, digests in report.get("flakes", {}).items():
        failures.append(
            f"unit {unit_id} is flaky: attempts produced digests "
            + ", ".join(sorted(set(digests)))
        )
    for path, want in sorted((expect or {}).items()):
        node: Any = report["aggregates"]
        try:
            for part in path.split("."):
                node = node[part]
        except (KeyError, TypeError):
            failures.append(f"expected counter {path} missing from report")
            continue
        if node != want:
            failures.append(f"counter {path} = {node}, pinned to {want}")
    return failures


def render_summary_markdown(
    report: Mapping[str, Any], telemetry: Mapping[str, Any]
) -> str:
    """Per-shard health table + aggregates for ``$GITHUB_STEP_SUMMARY``."""
    lines = [
        "## Campaign report",
        "",
        f"- campaign `{report['campaign']}`, "
        f"{telemetry.get('shard_count', '?')} shard(s), "
        f"{report['aggregates']['units']['total']} units "
        f"({report['aggregates']['units']['outcomes'].get('error', 0)} errored, "
        f"{len(report.get('flakes', {}))} flaky)",
        "",
        "| shard | units | resumed | stolen | time (s) | cache hits | cache misses |",
        "|---|---|---|---|---|---|---|",
    ]
    for shard_name in sorted(telemetry.get("shards", {})):
        shard = telemetry["shards"][shard_name]
        lines.append(
            f"| {shard_name} | {shard.get('executed', 0)} "
            f"| {shard.get('resumed', 0)} | {shard.get('stolen', 0)} "
            f"| {shard.get('elapsed_s', 0)} | {shard.get('cache_hits', 0)} "
            f"| {shard.get('cache_misses', 0)} |"
        )
    aggregates = report["aggregates"]
    lines += [
        "",
        f"- fuzz: {aggregates['fuzz'].get('conflicts', 0)} conflicts, "
        f"{aggregates['fuzz'].get('counterexamples_validated', 0)} counterexamples "
        f"validated, ambiguity {aggregates['fuzz'].get('ambiguity', {})}",
        f"- corpus: {aggregates['corpus']['grammars']} grammars, "
        f"{aggregates['corpus']['conflicts']} conflicts, "
        f"provenance {aggregates['corpus']['provenance']}",
        f"- bench: {aggregates['bench']['grammars']} grammars, "
        f"{aggregates['bench']['conflicts']} conflicts",
        "",
    ]
    return "\n".join(lines)


__all__ = [
    "MergeError",
    "check_report",
    "merge_shard_documents",
    "render_report",
    "render_summary_markdown",
]
