"""Per-shard unit checkpoints on the generic snapshot ledger.

Each shard invocation owns one append-only JSONL ledger
(``shard-K-of-M.ledger.jsonl``). The discipline mirrors the analysis
service's job journal (both ride :class:`repro.robust.ledger.SnapshotLedger`):

* before a unit runs, a ``running`` snapshot is appended;
* when it finishes, a ``done`` snapshot carrying the full
  :class:`~repro.campaign.runner.UnitResult` replaces it (last snapshot
  per unit id wins on replay);
* a shard killed ``-9`` mid-unit resumes by replaying the ledger:
  ``done`` units are terminal and never re-run (their checkpointed
  results feed the shard report directly); ``running`` units were in
  flight and re-run with their attempt counter bumped.

The ledger also remembers every *digest* a unit's completed attempts
produced: a unit whose re-runs disagree on the deterministic payload is
a **flake**, surfaced in the shard document and the merged campaign
report's flake ledger.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.campaign.runner import UnitResult
from repro.campaign.units import WorkUnit
from repro.robust.ledger import ReplayStats, SnapshotLedger

RUNNING = "running"
DONE = "done"


@dataclass
class LedgerState:
    """What replaying a shard ledger reveals about prior invocations."""

    #: Completed unit results, by unit id (terminal: never re-run).
    completed: dict[str, UnitResult] = field(default_factory=dict)
    #: Attempt counter for units last seen ``running`` (they re-run).
    interrupted: dict[str, int] = field(default_factory=dict)
    #: Every completed-attempt digest observed per unit, in order.
    digests: dict[str, list[str]] = field(default_factory=dict)
    stats: ReplayStats = field(default_factory=ReplayStats)

    def flaky_units(self) -> dict[str, list[str]]:
        """Units whose completed attempts produced differing digests."""
        return {
            unit_id: digests
            for unit_id, digests in sorted(self.digests.items())
            if len(set(digests)) > 1
        }


class ShardLedger:
    """Crash-safe checkpoint ledger for one shard's units."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        shard_name: str = "shard",
        fsync: bool = False,
    ) -> None:
        self._ledger = SnapshotLedger(
            path,
            key="unit",
            fsync=fsync,
            # Rotation would discard the per-attempt digest history the
            # flake ledger feeds on; campaign ledgers are bounded by the
            # unit count, so compaction buys nothing.
            rotate_after=1 << 62,
            fault_point="journal",
            fault_context=shard_name,
        )

    @property
    def path(self):
        return self._ledger.path

    @property
    def torn_writes(self) -> int:
        return self._ledger.torn_writes

    @property
    def stale_temps_removed(self) -> int:
        return self._ledger.stale_temps_removed

    # ------------------------------------------------------------------ #

    def mark_running(self, unit: WorkUnit, attempt: int) -> None:
        self._ledger.append(
            {"unit": unit.id, "state": RUNNING, "attempt": attempt}
        )

    def mark_done(self, result: UnitResult) -> None:
        self._ledger.append(
            {"unit": result.unit_id, "state": DONE, "result": result.to_json()}
        )

    # ------------------------------------------------------------------ #

    def replay(self) -> LedgerState:
        """Fold the ledger into terminal results + interrupted units.

        The digest history walks *every* intact ``done`` line, not just
        the winning last snapshot — that is where re-run disagreements
        (flakes) come from.
        """
        state = LedgerState()
        records, stats = self._ledger.replay()
        state.stats = stats
        for unit_id, snapshot in records.items():
            if snapshot.get("state") == DONE and isinstance(
                snapshot.get("result"), dict
            ):
                try:
                    state.completed[unit_id] = UnitResult.from_json(
                        snapshot["result"]
                    )
                except (KeyError, TypeError, ValueError):
                    state.interrupted[unit_id] = int(snapshot.get("attempt", 1))
            else:
                state.interrupted[unit_id] = int(snapshot.get("attempt", 1))
        state.digests = self._digest_history()
        return state

    def _digest_history(self) -> dict[str, list[str]]:
        """Every completed attempt's digest per unit, in append order."""
        history: dict[str, list[str]] = {}
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return history
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                data = json.loads(raw)
            except ValueError:
                continue
            if not isinstance(data, dict) or data.get("state") != DONE:
                continue
            result = data.get("result")
            if not isinstance(result, dict):
                continue
            digest = result.get("digest")
            unit_id = data.get("unit")
            if isinstance(unit_id, str) and isinstance(digest, str):
                history.setdefault(unit_id, []).append(digest)
        return history

    def info(self) -> dict[str, Any]:
        return self._ledger.info()


__all__ = ["DONE", "RUNNING", "LedgerState", "ShardLedger"]
