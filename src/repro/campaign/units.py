"""Deterministic campaign work units over grammars × seeds.

A *campaign* is a declarative spec — how many fuzz iterations from which
base seed, which corpus grammars to sweep, which grammars to benchmark —
compiled by :func:`plan_units` into a flat, deterministically ordered
list of :class:`WorkUnit`\\ s. Every orchestration layer above (shard
partitioning, checkpoint ledgers, merged reports) addresses work only
through unit ids, so two invocations of the same spec — on one machine
or across a CI matrix — always agree on what the work *is*.

Unit addressing::

    fuzz:00000042        one fuzz-harness iteration at absolute seed 42
    corpus:C.2           lint + ambiguity + provenance sweep of C.2
    bench:Java.3         one benchmark pass over Java.3

Sharding is round-robin over the planned order (``units[k-1::m]`` for
shard ``k/M``): deterministic, and it interleaves the three unit kinds
so no shard is stuck with all the heavy rows.

The campaign *digest* fingerprints the spec (not the sharding): shard
result files record it, and :func:`repro.campaign.report.merge_shard_documents`
refuses to merge shards of different campaigns.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

SCHEMA = "repro.campaign/1"

#: Width of the zero-padded absolute seed in fuzz unit ids; keeps the
#: lexicographic unit order equal to the numeric seed order.
_SEED_WIDTH = 8

KINDS = ("fuzz", "corpus", "bench")


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable, checkpointable piece of a campaign.

    Attributes:
        kind: ``fuzz`` / ``corpus`` / ``bench``.
        key: The seed (zero-padded) or grammar name the unit addresses.
    """

    kind: str
    key: str

    @property
    def id(self) -> str:
        return f"{self.kind}:{self.key}"

    def to_json(self) -> dict[str, str]:
        return {"kind": self.kind, "key": self.key}

    @classmethod
    def from_json(cls, data: Mapping[str, str]) -> "WorkUnit":
        unit = cls(kind=str(data["kind"]), key=str(data["key"]))
        if unit.kind not in KINDS:
            raise ValueError(f"unknown unit kind {unit.kind!r}")
        return unit

    @classmethod
    def from_id(cls, unit_id: str) -> "WorkUnit":
        kind, _, key = unit_id.partition(":")
        if not key:
            raise ValueError(f"malformed unit id {unit_id!r}")
        return cls.from_json({"kind": kind, "key": key})


def fuzz_unit(seed: int) -> WorkUnit:
    return WorkUnit("fuzz", f"{seed:0{_SEED_WIDTH}d}")


@dataclass(frozen=True)
class CampaignSpec:
    """What a campaign runs; everything the unit results may depend on.

    The spec is the unit of agreement between shards: it is hashed into
    :meth:`digest`, echoed into every shard result file, and checked at
    merge time. Timing knobs are part of the spec (they shape telemetry
    and which degradation rungs fire) even though the *deterministic*
    payload of every unit is wall-clock independent.
    """

    fuzz_iterations: int = 0
    fuzz_seed: int = 0
    corpus: tuple[str, ...] = ()
    bench: tuple[str, ...] = ()
    time_limit: float = 0.3
    cumulative_limit: float = 2.0
    oracle_samples: int = 4
    max_lr1_states: int = 2_000
    verify_step_budget: int = 50_000
    bench_repeats: int = 1

    def to_json(self) -> dict[str, Any]:
        return {
            "fuzz_iterations": self.fuzz_iterations,
            "fuzz_seed": self.fuzz_seed,
            "corpus": list(self.corpus),
            "bench": list(self.bench),
            "time_limit": self.time_limit,
            "cumulative_limit": self.cumulative_limit,
            "oracle_samples": self.oracle_samples,
            "max_lr1_states": self.max_lr1_states,
            "verify_step_budget": self.verify_step_budget,
            "bench_repeats": self.bench_repeats,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        defaults = cls()
        unknown = set(data) - set(defaults.to_json())
        if unknown:
            raise ValueError(f"unknown spec fields: {', '.join(sorted(unknown))}")
        return cls(
            fuzz_iterations=int(data.get("fuzz_iterations", 0)),
            fuzz_seed=int(data.get("fuzz_seed", 0)),
            corpus=tuple(data.get("corpus", ())),
            bench=tuple(data.get("bench", ())),
            time_limit=float(data.get("time_limit", defaults.time_limit)),
            cumulative_limit=float(
                data.get("cumulative_limit", defaults.cumulative_limit)
            ),
            oracle_samples=int(
                data.get("oracle_samples", defaults.oracle_samples)
            ),
            max_lr1_states=int(
                data.get("max_lr1_states", defaults.max_lr1_states)
            ),
            verify_step_budget=int(
                data.get("verify_step_budget", defaults.verify_step_budget)
            ),
            bench_repeats=int(data.get("bench_repeats", defaults.bench_repeats)),
        )

    def digest(self) -> str:
        """Content hash identifying the campaign (sharding excluded)."""
        canonical = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(f"{SCHEMA}\n{canonical}".encode()).hexdigest()[:16]


def plan_units(spec: CampaignSpec) -> list[WorkUnit]:
    """Compile *spec* into its deterministic flat unit list.

    Order: fuzz seeds ascending, then corpus grammars in spec order,
    then bench grammars in spec order. The order is part of the campaign
    contract — round-robin sharding slices it — so it must never depend
    on anything but the spec.
    """
    units = [
        fuzz_unit(spec.fuzz_seed + index) for index in range(spec.fuzz_iterations)
    ]
    units += [WorkUnit("corpus", name) for name in spec.corpus]
    units += [WorkUnit("bench", name) for name in spec.bench]
    seen: set[str] = set()
    for unit in units:
        if unit.id in seen:
            raise ValueError(f"duplicate unit {unit.id!r} in campaign plan")
        seen.add(unit.id)
    return units


def parse_shard(text: str) -> tuple[int, int]:
    """Parse ``"k/M"`` into ``(k, M)`` with ``1 <= k <= M``."""
    try:
        left, right = text.split("/", 1)
        k, m = int(left), int(right)
    except ValueError:
        raise ValueError(
            f"malformed shard {text!r} (expected k/M, e.g. 2/4)"
        ) from None
    if m < 1 or not 1 <= k <= m:
        raise ValueError(f"shard {text!r} out of range (need 1 <= k <= M)")
    return k, m


def partition_units(units: list[WorkUnit], shards: int) -> list[list[WorkUnit]]:
    """Round-robin partition of *units* into *shards* ordered queues.

    Shard ``k`` (1-based) owns ``units[k-1::shards]``. Every unit lands
    in exactly one shard, and concatenating the shards in round-robin
    order reproduces the plan — the property the merge gate leans on.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return [units[k::shards] for k in range(shards)]


@dataclass
class ShardSelection:
    """One shard's slice of a campaign plan."""

    shard: tuple[int, int]
    units: list[WorkUnit] = field(default_factory=list)

    @property
    def name(self) -> str:
        k, m = self.shard
        return f"shard-{k}-of-{m}"


def select_shard(spec: CampaignSpec, shard: tuple[int, int]) -> ShardSelection:
    """The units shard ``k/M`` of *spec* is responsible for."""
    k, m = shard
    if not 1 <= k <= m:
        raise ValueError(f"shard {k}/{m} out of range")
    return ShardSelection(shard=shard, units=partition_units(plan_units(spec), m)[k - 1])


__all__ = [
    "KINDS",
    "SCHEMA",
    "CampaignSpec",
    "ShardSelection",
    "WorkUnit",
    "fuzz_unit",
    "parse_shard",
    "partition_units",
    "plan_units",
    "select_shard",
]
