"""Execute one campaign work unit → deterministic payload + telemetry.

Every unit produces a :class:`UnitResult` with two strictly separated
halves:

* ``payload`` — wall-clock-independent content. Re-running the unit on
  any machine, in any shard, must reproduce it byte-for-byte (its
  canonical digest is what the flake ledger compares across attempts);
* ``telemetry`` — timings, cache hit/miss deltas, and the
  timing-dependent tallies (unifying vs timed-out splits). Telemetry is
  merged into per-shard health tables and the CI step summary but never
  into the deterministic campaign report.

A unit that raises is captured as ``outcome="error"`` with the exception
in the payload — the scheduler checkpoints it like any other result, so
a poisoned unit cannot wedge a shard.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.campaign.units import CampaignSpec, WorkUnit


@dataclass
class UnitResult:
    """What one work unit produced."""

    unit_id: str
    outcome: str  # "ok" | "error"
    payload: dict[str, Any] = field(default_factory=dict)
    telemetry: dict[str, Any] = field(default_factory=dict)
    attempt: int = 1

    def digest(self) -> str:
        """Canonical hash of the deterministic half (flake detection)."""
        canonical = json.dumps(
            {"outcome": self.outcome, "payload": self.payload},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def to_json(self) -> dict[str, Any]:
        return {
            "unit": self.unit_id,
            "outcome": self.outcome,
            "payload": self.payload,
            "telemetry": self.telemetry,
            "attempt": self.attempt,
            "digest": self.digest(),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "UnitResult":
        return cls(
            unit_id=str(data["unit"]),
            outcome=str(data["outcome"]),
            payload=dict(data.get("payload", {})),
            telemetry=dict(data.get("telemetry", {})),
            attempt=int(data.get("attempt", 1)),
        )


# ---------------------------------------------------------------------- #
# Per-kind execution


def _cache_counters(cache) -> tuple[int, int]:
    return (cache.hits, cache.misses) if cache is not None else (0, 0)


def _run_fuzz_unit(
    unit: WorkUnit, spec: CampaignSpec, cache
) -> tuple[dict[str, Any], dict[str, Any]]:
    from repro.verify import FuzzHarness

    harness = FuzzHarness(
        time_limit=spec.time_limit,
        cumulative_limit=spec.cumulative_limit,
        oracle_samples=spec.oracle_samples,
        max_lr1_states=spec.max_lr1_states,
        verify_step_budget=spec.verify_step_budget,
        automaton_cache=cache,
    )
    report = harness.run_unit(int(unit.key))
    payload = report.deterministic_json()
    telemetry = {
        "unifying": report.unifying,
        "nonunifying": report.nonunifying,
        "timeouts": report.timeouts,
        "stubs": report.stubs,
        "degraded": report.degraded,
    }
    return payload, telemetry


def _run_corpus_unit(
    unit: WorkUnit, spec: CampaignSpec, cache
) -> tuple[dict[str, Any], dict[str, Any]]:
    from repro.automaton.ielr import ProvenanceVerdict, classify_conflicts
    from repro.corpus import registry
    from repro.lint import LintConfig, run_lint
    from repro.perf.cache import analyze_conflicts_cached, build_automaton_cached

    grammar = registry.load(unit.key)
    automaton = build_automaton_cached(grammar, cache)
    lint_report = run_lint(
        grammar,
        config=LintConfig(max_lr1_states=spec.max_lr1_states),
        automaton=automaton if automaton.algorithm == "lalr" else None,
    )
    lint_counts = {"info": 0, "warning": 0, "error": 0}
    for diagnostic in lint_report.diagnostics:
        lint_counts[diagnostic.severity.value] += 1

    verdicts = analyze_conflicts_cached(automaton, cache)
    ambiguity = {"unambiguous": 0, "ambiguous": 0, "inconclusive": 0}
    for verdict in verdicts.values():
        ambiguity[verdict.verdict.value] += 1

    slugs = {
        ProvenanceVerdict.GENUINE: "genuine",
        ProvenanceVerdict.MERGE_ARTIFACT: "merge_artifact",
        ProvenanceVerdict.UNKNOWN: "unknown",
    }
    provenance = {"genuine": 0, "merge_artifact": 0, "unknown": 0}
    if automaton.tables.conflicts:
        for entry in classify_conflicts(
            automaton, max_lr1_states=spec.max_lr1_states
        ).values():
            provenance[slugs[entry.verdict]] += 1

    payload = {
        "grammar": unit.key,
        "algorithm": automaton.algorithm,
        "states": len(automaton.states),
        "conflicts": len(automaton.tables.conflicts),
        "lint": lint_counts,
        "ambiguity": ambiguity,
        "provenance": provenance,
    }
    return payload, {}


def _run_bench_unit(
    unit: WorkUnit, spec: CampaignSpec, cache
) -> tuple[dict[str, Any], dict[str, Any]]:
    from repro.perf.bench import _bench_grammar

    entry = _bench_grammar(
        unit.key,
        repeats=spec.bench_repeats,
        time_limit=spec.time_limit,
        cumulative_limit=max(spec.cumulative_limit, 10 * spec.time_limit),
    )
    # The timings (and the budget-sensitive search counters) are
    # telemetry; only the structural facts enter the campaign report.
    payload = {
        "grammar": unit.key,
        "conflicts": entry["conflicts"],
        "ambiguity": entry["ambiguity_verdicts"],
        "cache_entry_bytes": entry["cache_entry_bytes"],
    }
    telemetry = {
        "total_s": entry["total_s"],
        "phases": entry["phases"],
        "counters": entry["counters"],
    }
    return payload, telemetry


_EXECUTORS = {
    "fuzz": _run_fuzz_unit,
    "corpus": _run_corpus_unit,
    "bench": _run_bench_unit,
}


def execute_unit(
    unit: WorkUnit, spec: CampaignSpec, cache=None, attempt: int = 1
) -> UnitResult:
    """Run *unit* under *spec*; never raises.

    *cache* is an optional :class:`repro.perf.cache.AutomatonCache`
    shared by every unit of the shard (and, through the multi-process-
    safe cache directory, by every shard of the fleet).
    """
    hits_before, misses_before = _cache_counters(cache)
    started = time.perf_counter()
    try:
        payload, telemetry = _EXECUTORS[unit.kind](unit, spec, cache)
        outcome = "ok"
    except Exception as error:  # noqa: BLE001 — checkpointed, not raised
        payload = {
            "error_type": type(error).__name__,
            "error": str(error),
        }
        telemetry = {"traceback": traceback.format_exc(limit=20)}
        outcome = "error"
    hits_after, misses_after = _cache_counters(cache)
    telemetry["elapsed_s"] = round(time.perf_counter() - started, 6)
    telemetry["cache_hits"] = hits_after - hits_before
    telemetry["cache_misses"] = misses_after - misses_before
    return UnitResult(
        unit_id=unit.id,
        outcome=outcome,
        payload=payload,
        telemetry=telemetry,
        attempt=attempt,
    )


def execute_unit_json(
    spec_json: dict[str, Any],
    unit_json: dict[str, str],
    cache_dir: str | None,
    attempt: int = 1,
) -> dict[str, Any]:
    """Process-pool entry point: everything crosses as plain JSON."""
    from repro.perf.cache import AutomatonCache

    spec = CampaignSpec.from_json(spec_json)
    unit = WorkUnit.from_json(unit_json)
    cache = AutomatonCache(cache_dir) if cache_dir else None
    return execute_unit(unit, spec, cache, attempt=attempt).to_json()


__all__ = ["UnitResult", "execute_unit", "execute_unit_json"]
