"""Work-stealing shard scheduler with resumable checkpoints.

Two execution shapes, one substrate:

* **CI matrix mode** — ``campaign run --shard k/M`` runs exactly one
  shard's units in this invocation (optionally over ``--jobs`` worker
  processes) and writes ``shard-k-of-M.json``; M independent invocations
  on M runners cover the campaign, and ``campaign merge`` folds their
  result files.
* **Local fleet mode** — ``campaign run --shards M --jobs W`` runs all
  M shards in one invocation. Each worker process has a *home* shard
  (round-robin by slot); a worker whose home queue drains **steals from
  the straggler** — the shard with the most remaining units — from the
  tail of its queue, so stragglers shed load instead of serializing the
  campaign. Stolen units still checkpoint to (and report under) their
  owning shard, so the merged report is indistinguishable from an
  unstolen run.

Every unit is checkpointed to its shard's crash-safe ledger
(:mod:`repro.campaign.ledger`): ``running`` before execution, ``done``
with the full result after. ``kill -9`` at any point loses at most the
in-flight units; re-invoking the same command replays the ledger, skips
terminal units, and re-runs only the interrupted ones — the merged
report comes out byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.campaign.ledger import ShardLedger
from repro.campaign.runner import UnitResult, execute_unit, execute_unit_json
from repro.campaign.units import (
    SCHEMA,
    CampaignSpec,
    ShardSelection,
    WorkUnit,
    select_shard,
)


@dataclass
class _ShardRun:
    """Mutable state of one shard during an invocation."""

    selection: ShardSelection
    ledger: ShardLedger
    pending: deque[WorkUnit] = field(default_factory=deque)
    results: dict[str, UnitResult] = field(default_factory=dict)
    #: Completed attempts so far per unit (seeded from interrupted runs).
    attempts: dict[str, int] = field(default_factory=dict)
    resumed: int = 0
    executed: int = 0
    stolen: int = 0
    retried: int = 0
    elapsed_s: float = 0.0

    @property
    def name(self) -> str:
        return self.selection.name

    def next_attempt(self, unit: WorkUnit) -> int:
        return self.attempts.get(unit.id, 0) + 1


class CampaignScheduler:
    """Runs campaign shards with checkpoints, retries, and stealing.

    Args:
        spec: The campaign (see :class:`~repro.campaign.units.CampaignSpec`).
        out_dir: Directory for ledgers and shard result files.
        jobs: Worker processes (1 = in-process sequential).
        cache_dir: Shared automaton-cache directory; all shards and all
            worker processes may point at the same one (the cache's
            atomic writes are multi-process-safe).
        retries: Re-runs granted to a unit whose attempt errored. Every
            attempt's digest is checkpointed, so attempts that disagree
            surface in the flake ledger.
        fsync: Force ledger appends to stable storage.
        progress: Optional callback ``(shard_name, unit_id, result)``.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        out_dir: str | os.PathLike[str],
        *,
        jobs: int = 1,
        cache_dir: str | os.PathLike[str] | None = None,
        retries: int = 0,
        fsync: bool = False,
        progress: Callable[[str, str, UnitResult], None] | None = None,
    ) -> None:
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.jobs = max(1, jobs)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.retries = retries
        self.fsync = fsync
        self.progress = progress
        self.out_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Entry points

    def run_shard(self, shard: tuple[int, int]) -> Path:
        """Run (or resume) one shard; returns its result-file path."""
        return self._run([self._prepare(select_shard(self.spec, shard))])[0]

    def run_local(self, shards: int) -> list[Path]:
        """Run (or resume) all *shards* locally, with work stealing."""
        runs = [
            self._prepare(select_shard(self.spec, (k, shards)))
            for k in range(1, shards + 1)
        ]
        return self._run(runs)

    # ------------------------------------------------------------------ #
    # Resume

    def _prepare(self, selection: ShardSelection) -> _ShardRun:
        ledger = ShardLedger(
            self.out_dir / f"{selection.name}.ledger.jsonl",
            shard_name=selection.name,
            fsync=self.fsync,
        )
        state = ledger.replay()
        known = {unit.id for unit in selection.units}
        foreign = sorted((set(state.completed) | set(state.interrupted)) - known)
        if foreign:
            raise ValueError(
                f"{ledger.path.name} checkpoints unknown units "
                f"({', '.join(foreign[:3])}…): it belongs to a different "
                "campaign or sharding — use a fresh --out directory"
            )
        run = _ShardRun(selection=selection, ledger=ledger)
        for unit in selection.units:
            done = state.completed.get(unit.id)
            if done is not None:
                run.results[unit.id] = done
                run.attempts[unit.id] = done.attempt
                run.resumed += 1
            else:
                run.attempts[unit.id] = state.interrupted.get(unit.id, 0)
                run.pending.append(unit)
        return run

    # ------------------------------------------------------------------ #
    # Execution

    def _run(self, runs: list[_ShardRun]) -> list[Path]:
        started = time.monotonic()
        if self.jobs == 1:
            self._run_sequential(runs)
        else:
            self._run_pool(runs)
        elapsed = time.monotonic() - started
        paths = []
        for run in runs:
            run.elapsed_s = elapsed
            paths.append(self._write_shard_document(run))
        return paths

    def _run_sequential(self, runs: list[_ShardRun]) -> None:
        from repro.perf.cache import AutomatonCache

        cache = AutomatonCache(self.cache_dir) if self.cache_dir else None
        slot = 0
        while True:
            picked = self._pick(runs, slot)
            if picked is None:
                break
            run, unit, stolen = picked
            attempt = run.next_attempt(unit)
            run.ledger.mark_running(unit, attempt)
            result = execute_unit(unit, self.spec, cache, attempt=attempt)
            self._record(run, unit, result, stolen)
            slot += 1

    def _run_pool(self, runs: list[_ShardRun]) -> None:
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            free: deque[int] = deque(range(self.jobs))
            in_flight: dict[Any, tuple[_ShardRun, WorkUnit, int, bool]] = {}
            while True:
                while free:
                    slot = free[0]
                    picked = self._pick(runs, slot)
                    if picked is None:
                        break
                    free.popleft()
                    run, unit, stolen = picked
                    attempt = run.next_attempt(unit)
                    run.ledger.mark_running(unit, attempt)
                    future = pool.submit(
                        execute_unit_json,
                        self.spec.to_json(),
                        unit.to_json(),
                        self.cache_dir,
                        attempt,
                    )
                    in_flight[future] = (run, unit, slot, stolen)
                if not in_flight:
                    break
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    run, unit, slot, stolen = in_flight.pop(future)
                    result = UnitResult.from_json(future.result())
                    self._record(run, unit, result, stolen)
                    free.append(slot)

    def _pick(
        self, runs: list[_ShardRun], slot: int
    ) -> tuple[_ShardRun, WorkUnit, bool] | None:
        """Next unit for worker *slot*: home shard first, else steal.

        Home units come off the queue's head; stolen units come off the
        **tail** of the longest remaining queue, so the thief works the
        straggler's far end while its owner keeps draining the front.
        """
        home = runs[slot % len(runs)]
        if home.pending:
            return home, home.pending.popleft(), False
        victim = max(runs, key=lambda run: len(run.pending))
        if not victim.pending:
            return None
        return victim, victim.pending.pop(), True

    def _record(
        self, run: _ShardRun, unit: WorkUnit, result: UnitResult, stolen: bool
    ) -> None:
        run.ledger.mark_done(result)
        run.attempts[unit.id] = result.attempt
        if self.progress is not None:
            self.progress(run.name, unit.id, result)
        if result.outcome == "error" and result.attempt <= self.retries:
            run.retried += 1
            run.pending.appendleft(unit)
            return
        run.results[unit.id] = result
        run.executed += 1
        if stolen:
            run.stolen += 1

    # ------------------------------------------------------------------ #
    # Shard result document

    def _write_shard_document(self, run: _ShardRun) -> Path:
        flakes = run.ledger.replay().flaky_units()
        telemetry_units = {
            unit_id: result.telemetry
            for unit_id, result in sorted(run.results.items())
        }
        document = {
            "schema": SCHEMA,
            "campaign": self.spec.digest(),
            "spec": self.spec.to_json(),
            "shard": list(run.selection.shard),
            "units": {
                unit_id: {
                    "outcome": result.outcome,
                    "payload": result.payload,
                    "digest": result.digest(),
                }
                for unit_id, result in sorted(run.results.items())
            },
            "flakes": flakes,
            "telemetry": {
                "executed": run.executed,
                "resumed": run.resumed,
                "stolen": run.stolen,
                "retried": run.retried,
                "elapsed_s": round(run.elapsed_s, 3),
                "cache_hits": sum(
                    t.get("cache_hits", 0) for t in telemetry_units.values()
                ),
                "cache_misses": sum(
                    t.get("cache_misses", 0) for t in telemetry_units.values()
                ),
                "torn_writes": run.ledger.torn_writes,
                "stale_temps_removed": run.ledger.stale_temps_removed,
                "units": telemetry_units,
            },
        }
        path = self.out_dir / f"{run.name}.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path


__all__ = ["CampaignScheduler"]
