"""Cross-construction and cross-runtime consistency oracle.

The library builds the same grammar through several independent pipelines
— SLR(1), LALR(1) via the channel algorithm, minimal LR(1) (IELR-style
state splitting), canonical LR(1), and three parser runtimes
(table-driven LR, Earley over sentential forms, GLR).
:class:`DifferentialOracle` asserts the invariants that tie them
together; any violation is a bug in one of the constructions, reported as
a :class:`Disagreement` rather than an exception.

Construction invariants (per LR(0) core and item):

* LALR(1) lookaheads equal the union of canonical LR(1) lookaheads over
  the states sharing the core (the defining property of LALR);
* LALR(1) lookaheads are contained in SLR(1) lookaheads for reduce items
  (the classic containment chain);
* a grammar whose LALR automaton is conflict-free before precedence
  resolution has a conflict-free canonical LR(1) automaton (merging can
  only add conflicts, never remove them);
* the minimal-LR(1) automaton has **exactly** the canonical LR(1) raw
  conflict signatures (the defining property of the split criterion) and
  its state count sits in the sandwich LALR ≤ IELR ≤ canonical LR(1).

Runtime invariants over sampled sentences (positive samples drawn by
random derivation, negative samples by random token strings):

* every positive sample is recognised by the Earley oracle;
* the LR and GLR runtimes are *sound*: any accepted string is recognised
  by Earley;
* without precedence declarations the GLR runtime is *complete*: it
  accepts every string Earley recognises (precedence deliberately drops
  table entries, so completeness is only asserted on precedence-free
  grammars);
* a grammar with zero unresolved conflicts never yields two distinct GLR
  parses (conflict-free LALR implies unambiguous).

Static-analysis invariants tying the SR pair walk
(:mod:`repro.analysis`) to the runtimes:

* every conflict the walk proves ``ambiguous`` carries a witness
  sentence for which the Earley oracle finds two distinct derivations;
* a grammar whose conflicts are **all** proved ``unambiguous`` (with no
  precedence-resolved table entries hiding further conflicts) never
  yields an ambiguous sampled sentence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.automaton.lalr import LALRAutomaton, build_lalr
from repro.automaton.lr1 import LR1Automaton
from repro.automaton.slr import compute_slr_lookaheads
from repro.grammar import END_OF_INPUT, Grammar, Nonterminal, Symbol, Terminal
from repro.parsing.earley import EarleyParser
from repro.parsing.glr import GLRParser, TooManyParses
from repro.parsing.runtime import LRParser, ParseError


@dataclass(frozen=True)
class Disagreement:
    """One violated consistency invariant."""

    check: str
    detail: str

    def __str__(self) -> str:
        return f"{self.check}: {self.detail}"


@dataclass
class DifferentialReport:
    """Everything one oracle run observed."""

    grammar_name: str
    disagreements: list[Disagreement] = field(default_factory=list)
    samples_checked: int = 0
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def describe(self) -> str:
        status = "consistent" if self.ok else "INCONSISTENT"
        lines = [
            f"differential oracle for {self.grammar_name!r}: {status} "
            f"({self.samples_checked} samples)"
        ]
        lines.extend(f"  DISAGREE {d}" for d in self.disagreements)
        lines.extend(f"  skip {reason}" for reason in self.skipped)
        return "\n".join(lines)


class DifferentialOracle:
    """Checks one grammar's constructions and runtimes against each other.

    Args:
        grammar: The grammar under test.
        automaton: Optional prebuilt LALR automaton (shared with callers).
        max_lr1_states: Skip the canonical LR(1) comparison beyond this
            (state explosion on large grammars).
        num_samples: Positive and negative sample sentences each.
        max_sample_length: Token budget for sampled sentences.
        glr_max_configurations: GLR cap; blow-ups are skipped, not failed.
        seed: PRNG seed for sampling (deterministic per grammar+seed).
    """

    def __init__(
        self,
        grammar: Grammar,
        automaton: LALRAutomaton | None = None,
        max_lr1_states: int = 5_000,
        num_samples: int = 8,
        max_sample_length: int = 24,
        glr_max_configurations: int = 500,
        seed: int = 0,
    ) -> None:
        self.grammar = grammar
        self.automaton = automaton if automaton is not None else build_lalr(grammar)
        self.analysis = self.automaton.analysis
        self.max_lr1_states = max_lr1_states
        self.num_samples = num_samples
        self.max_sample_length = max_sample_length
        self.glr_max_configurations = glr_max_configurations
        self.seed = seed

    # ------------------------------------------------------------------ #

    def check(self) -> DifferentialReport:
        """Run every invariant; collect disagreements instead of raising."""
        report = DifferentialReport(grammar_name=self.grammar.name)
        self._check_slr_containment(report)
        lr1 = self._build_lr1(report)
        if lr1 is not None:
            self._check_lr1_agreement(report, lr1)
            self._check_ielr_agreement(report, lr1)
        self._check_runtime_agreement(report)
        self._check_ambiguity_agreement(report)
        return report

    # ------------------------------------------------------------------ #
    # Construction invariants

    def _check_slr_containment(self, report: DifferentialReport) -> None:
        slr = compute_slr_lookaheads(self.automaton.lr0, self.analysis)
        for (state_id, item), follow in slr.items():
            lalr = self.automaton.lookahead(state_id, item)
            if not lalr <= follow:
                report.disagreements.append(
                    Disagreement(
                        "slr-containment",
                        f"state {state_id}, item [{item}]: LALR lookaheads "
                        f"{sorted(map(str, lalr - follow))} missing from "
                        f"SLR FOLLOW set",
                    )
                )

    def _build_lr1(self, report: DifferentialReport) -> LR1Automaton | None:
        """The canonical LR(1) automaton, shared by the LR(1)/IELR checks."""
        try:
            return LR1Automaton(self.grammar, max_states=self.max_lr1_states)
        except RuntimeError as error:
            report.skipped.append(f"lr1-agreement: {error}")
            return None

    def _check_lr1_agreement(
        self, report: DifferentialReport, lr1: LR1Automaton
    ) -> None:
        merged = lr1.merged_lookaheads()
        for state in self.automaton.states:
            core = frozenset(state.items)
            for item in state.items:
                lalr = self.automaton.lookahead(state, item)
                union = merged.get((core, item))
                if union is None:
                    report.disagreements.append(
                        Disagreement(
                            "lr1-core-missing",
                            f"state {state.id}, item [{item}]: no canonical "
                            "LR(1) state shares this core",
                        )
                    )
                elif union != lalr:
                    report.disagreements.append(
                        Disagreement(
                            "lr1-lookahead-union",
                            f"state {state.id}, item [{item}]: LALR "
                            f"{sorted(map(str, lalr))} != union of LR(1) "
                            f"{sorted(map(str, union))}",
                        )
                    )
        if not self._raw_lalr_conflicts() and lr1.has_conflicts():
            report.disagreements.append(
                Disagreement(
                    "lr1-vs-lalr-conflicts",
                    "canonical LR(1) has conflicts but the merged LALR "
                    "automaton has none",
                )
            )

    def _raw_lalr_conflicts(self) -> bool:
        """Conflicts before precedence resolution (mirrors LR1.has_conflicts)."""
        for state in self.automaton.states:
            reducers: dict[Terminal, int] = {}
            for item in state.items:
                if not item.at_end or item.production.index == 0:
                    continue
                for terminal in self.automaton.lookahead(state, item):
                    reducers[terminal] = reducers.get(terminal, 0) + 1
            for terminal, count in reducers.items():
                if count > 1:
                    return True
                if terminal in state.transitions and terminal != END_OF_INPUT:
                    return True
        return False

    def _check_ielr_agreement(
        self, report: DifferentialReport, lr1: LR1Automaton
    ) -> None:
        from repro.automaton.ielr import (
            build_ielr,
            canonical_conflict_signatures,
            conflict_signatures,
        )

        try:
            ielr = build_ielr(self.grammar, lr1=lr1)
        except RuntimeError as error:
            report.skipped.append(f"ielr-agreement: {error}")
            return
        ielr_signatures = conflict_signatures(ielr)
        lr1_signatures = canonical_conflict_signatures(lr1)
        if ielr_signatures != lr1_signatures:
            extra = ielr_signatures - lr1_signatures
            missing = lr1_signatures - ielr_signatures
            report.disagreements.append(
                Disagreement(
                    "ielr-conflict-signatures",
                    f"minimal LR(1) conflicts differ from canonical: "
                    f"{len(extra)} manufactured, {len(missing)} lost",
                )
            )
        if len(ielr.states) > len(lr1.states):
            report.disagreements.append(
                Disagreement(
                    "ielr-state-sandwich",
                    f"the minimal quotient has more states than canonical "
                    f"LR(1): {len(ielr.states)} > {len(lr1.states)}",
                )
            )
        # The LALR-relative invariants assume the LR(0) and LR(1)
        # collections share their cores, which only holds when every
        # nonterminal is productive (LR(1) closure drops items whose
        # lookahead context is empty, pruning dead regions the LR(0)
        # collection keeps).
        if self.grammar.nonproductive_nonterminals:
            report.skipped.append(
                "ielr-agreement: nonproductive nonterminals; "
                "LALR-relative invariants not applicable"
            )
            return
        if len(self.automaton.states) > len(ielr.states):
            report.disagreements.append(
                Disagreement(
                    "ielr-state-sandwich",
                    f"state counts violate LALR <= IELR: "
                    f"{len(self.automaton.states)} > {len(ielr.states)}",
                )
            )
        # Per LR(0) core and item, the union of IELR lookaheads over the
        # split states must reproduce the LALR lookahead sets — splitting
        # repartitions lookaheads, it never invents or drops them.
        union_by_core: dict[tuple[frozenset, object], set] = {}
        for state in ielr.states:
            core = frozenset(state.items)
            for item in state.items:
                key = (core, item)
                union_by_core.setdefault(key, set()).update(
                    ielr.lookahead(state, item)
                )
        for state in self.automaton.states:
            core = frozenset(state.items)
            for item in state.items:
                lalr = self.automaton.lookahead(state, item)
                union = union_by_core.get((core, item))
                if union is None:
                    report.disagreements.append(
                        Disagreement(
                            "ielr-core-missing",
                            f"state {state.id}, item [{item}]: no minimal "
                            "LR(1) state shares this core",
                        )
                    )
                elif union != lalr:
                    report.disagreements.append(
                        Disagreement(
                            "ielr-lookahead-union",
                            f"state {state.id}, item [{item}]: LALR "
                            f"{sorted(map(str, lalr))} != union of IELR "
                            f"{sorted(map(str, union))}",
                        )
                    )

    # ------------------------------------------------------------------ #
    # Runtime invariants

    def _check_runtime_agreement(self, report: DifferentialReport) -> None:
        if self.grammar.start in self.grammar.nonproductive_nonterminals:
            report.skipped.append("runtime-agreement: start symbol nonproductive")
            return
        rng = random.Random(self.seed)
        earley = EarleyParser(self.grammar)
        glr = GLRParser(
            self.automaton, max_configurations=self.glr_max_configurations
        )
        lr = LRParser(self.automaton, allow_conflicts=True)
        has_precedence = len(self.grammar.precedence) > 0
        conflict_free = not self.automaton.conflicts
        terminal_pool = [t for t in self.grammar.terminals if t != END_OF_INPUT]

        samples: list[tuple[list[Terminal], bool]] = []
        for _ in range(self.num_samples):
            sentence = self._sample_sentence(rng)
            if sentence is not None:
                samples.append((sentence, True))
        for _ in range(self.num_samples):
            if terminal_pool:
                length = rng.randint(0, min(6, self.max_sample_length))
                samples.append(
                    ([rng.choice(terminal_pool) for _ in range(length)], False)
                )

        for sentence, is_positive in samples:
            report.samples_checked += 1
            rendered = " ".join(t.name for t in sentence) or "<empty>"
            in_language = earley.recognizes(self.grammar.start, sentence)
            if is_positive and not in_language:
                report.disagreements.append(
                    Disagreement(
                        "earley-rejects-derived",
                        f"Earley rejects the sampled derivation yield "
                        f"{rendered!r}",
                    )
                )
                continue
            try:
                trees = glr.parse_all(sentence)
            except TooManyParses:
                report.skipped.append(
                    f"runtime-agreement: GLR blow-up on {rendered!r}"
                )
                trees = None
            if trees is not None:
                if trees and not in_language:
                    report.disagreements.append(
                        Disagreement(
                            "glr-unsound",
                            f"GLR accepts {rendered!r} but Earley rejects it",
                        )
                    )
                if not trees and in_language and not has_precedence:
                    report.disagreements.append(
                        Disagreement(
                            "glr-incomplete",
                            f"Earley recognises {rendered!r} but GLR "
                            "rejects it (no precedence to excuse it)",
                        )
                    )
                if len(trees) >= 2 and conflict_free:
                    report.disagreements.append(
                        Disagreement(
                            "ambiguity-without-conflicts",
                            f"{rendered!r} has {len(trees)} GLR parses but "
                            "the LALR automaton reports no conflicts",
                        )
                    )
            lr_accepts = self._lr_accepts(lr, sentence)
            if lr_accepts and not in_language:
                report.disagreements.append(
                    Disagreement(
                        "lr-unsound",
                        f"the LR driver accepts {rendered!r} but Earley "
                        "rejects it",
                    )
                )
            if (
                not lr_accepts
                and in_language
                and conflict_free
                and not has_precedence
            ):
                report.disagreements.append(
                    Disagreement(
                        "lr-incomplete",
                        f"conflict-free tables reject {rendered!r} which "
                        "Earley recognises",
                    )
                )

    def _check_ambiguity_agreement(self, report: DifferentialReport) -> None:
        """The SR pair walk must never contradict the Earley oracle.

        Every ``ambiguous`` verdict's witness is re-counted by Earley
        (< 2 derivations is a disagreement), and when *every* conflict
        is proved ``unambiguous`` — and no precedence-resolved entries
        hide further nondeterminism — no sampled sentence may be
        ambiguous. Walker exceptions propagate: the fuzz harness
        classifies them as crashes (broken-walker canary).
        """
        conflicts = self.automaton.tables.conflicts
        if not conflicts:
            return
        from repro.analysis import AmbiguityVerdict, analyze_conflicts
        from repro.parsing.earley import DerivationBudgetExceeded

        verdicts = analyze_conflicts(self.automaton)
        earley = EarleyParser(self.grammar)
        step_budget = 200_000
        start = self.grammar.start
        for conflict, verdict in verdicts.items():
            if verdict.verdict is not AmbiguityVerdict.AMBIGUOUS:
                continue
            witness = list(verdict.witness or ())
            rendered = " ".join(t.name for t in witness) or "<empty>"
            try:
                count = earley.count_derivations(
                    start, witness, limit=2, step_budget=step_budget
                )
            except DerivationBudgetExceeded:
                report.skipped.append(
                    "ambiguity-agreement: derivation count ran out of "
                    f"budget on {rendered!r}"
                )
                continue
            if count < 2:
                report.disagreements.append(
                    Disagreement(
                        "ambiguity-witness-invalid",
                        f"the SR walk claims {rendered!r} has two "
                        f"derivations for [{conflict}] but Earley finds "
                        f"{count}",
                    )
                )
        if any(
            verdict.verdict is not AmbiguityVerdict.UNAMBIGUOUS
            for verdict in verdicts.values()
        ):
            return
        if self.automaton.tables.resolved_count:
            report.skipped.append(
                "ambiguity-agreement: precedence-resolved entries hide "
                "conflicts the walk never saw"
            )
            return
        if start in self.grammar.nonproductive_nonterminals:
            report.skipped.append(
                "ambiguity-agreement: start symbol nonproductive"
            )
            return
        rng = random.Random(self.seed + 1)
        for _ in range(self.num_samples):
            sentence = self._sample_sentence(rng)
            if sentence is None:
                continue
            report.samples_checked += 1
            rendered = " ".join(t.name for t in sentence) or "<empty>"
            try:
                count = earley.count_derivations(
                    start, sentence, limit=2, step_budget=step_budget
                )
            except DerivationBudgetExceeded:
                report.skipped.append(
                    "ambiguity-agreement: derivation count ran out of "
                    f"budget on {rendered!r}"
                )
                continue
            if count >= 2:
                report.disagreements.append(
                    Disagreement(
                        "ambiguous-despite-unambiguous-verdicts",
                        f"every conflict proved unambiguous but "
                        f"{rendered!r} has two distinct derivations",
                    )
                )

    @staticmethod
    def _lr_accepts(lr: LRParser, sentence: list[Terminal]) -> bool:
        try:
            lr.parse(sentence)
        except ParseError:
            return False
        return True

    def _sample_sentence(self, rng: random.Random) -> list[Terminal] | None:
        """A random terminal string derived from the start symbol.

        Random leftmost derivation with a step budget; once the budget is
        spent, every remaining nonterminal is spliced with its shortest
        terminal expansion, which guarantees termination.
        """
        start = self.grammar.start
        pending: list[Symbol] = [start]
        result: list[Terminal] = []
        steps = 0
        while pending:
            symbol = pending.pop(0)
            if symbol.is_terminal:
                assert isinstance(symbol, Terminal)
                result.append(symbol)
                continue
            assert isinstance(symbol, Nonterminal)
            steps += 1
            over_budget = (
                steps > 4 * self.max_sample_length
                or len(result) >= self.max_sample_length
            )
            if over_budget or symbol in self.grammar.nonproductive_nonterminals:
                try:
                    result.extend(self.analysis.shortest_expansion(symbol))
                except ValueError:
                    return None  # nonproductive: no sample possible
                continue
            production = rng.choice(self.grammar.productions_of(symbol))
            pending[:0] = production.rhs
        return result
