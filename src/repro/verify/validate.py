"""Independent validation of counterexamples (the paper's central claim).

The finder promises that every reported counterexample is *true*: a
unifying counterexample exhibits two genuinely distinct derivations of
one sentential form, and a nonunifying counterexample exhibits two
derivable sentential forms sharing a prefix up to the conflict point,
with the conflict terminal immediately after the dot. Nothing in the
finder itself is trusted here — the validator replays each derivation
against the grammar production by production and re-establishes the
semantic claims with the independent parser runtimes:

* the **Earley oracle** (:class:`~repro.parsing.earley.EarleyParser`)
  re-derives each sentential form and, for unifying counterexamples,
  re-counts distinct derivation trees;
* optionally the **GLR runtime** (:class:`~repro.parsing.glr.GLRParser`)
  parses a fully concretised terminal string (nonterminal leaves expanded
  minimally) over a precedence-free automaton rooted at the unifying
  nonterminal, and must also see at least two parses.

The GLR cross-check runs over freshly built tables, so it exercises a
construction path entirely disjoint from the one that produced the
counterexample. Checks that cannot run (GLR configuration blow-up,
nonproductive symbols in the form) are recorded as *skipped*, never as
failures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counterexample import Counterexample
from repro.core.derivation import DOT, Derivation, format_symbols
from repro.grammar import (
    END_OF_INPUT,
    Grammar,
    GrammarAnalysis,
    Nonterminal,
    Symbol,
    Terminal,
)
from repro.parsing.earley import DerivationBudgetExceeded, EarleyParser
from repro.parsing.glr import GLRParser, TooManyParses


@dataclass(frozen=True)
class ValidationResult:
    """The verdict of one counterexample validation.

    Attributes:
        kind: ``"unifying"`` or ``"nonunifying"``.
        passed: Names of the checks that succeeded.
        failures: One ``"check: detail"`` entry per failed check.
        skipped: Checks that could not run (with the reason).
    """

    kind: str
    passed: tuple[str, ...]
    failures: tuple[str, ...]
    skipped: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        """One line per check, grouped by outcome."""
        lines = [f"{self.kind} counterexample: {'OK' if self.ok else 'REJECTED'}"]
        for failure in self.failures:
            lines.append(f"  FAIL {failure}")
        for name in self.passed:
            lines.append(f"  pass {name}")
        for reason in self.skipped:
            lines.append(f"  skip {reason}")
        return "\n".join(lines)


class _Checks:
    """Accumulates per-check outcomes while a validation runs."""

    def __init__(self) -> None:
        self.passed: list[str] = []
        self.failures: list[str] = []
        self.skipped: list[str] = []

    def record(self, name: str, ok: bool, detail: str = "") -> bool:
        if ok:
            self.passed.append(name)
        else:
            self.failures.append(f"{name}: {detail}" if detail else name)
        return ok

    def skip(self, name: str, reason: str) -> None:
        self.skipped.append(f"{name}: {reason}")

    def result(self, kind: str) -> ValidationResult:
        return ValidationResult(
            kind=kind,
            passed=tuple(self.passed),
            failures=tuple(self.failures),
            skipped=tuple(self.skipped),
        )


class CounterexampleValidator:
    """Replays and re-proves counterexamples against their grammar.

    Args:
        grammar: The grammar the counterexamples were found for.
        glr_check: Also cross-check with the GLR runtime over freshly
            built, precedence-free tables (slower; rebuilt tables are
            cached per root nonterminal).
        glr_max_configurations: Live-configuration cap for the GLR
            cross-check; blow-ups are recorded as skipped checks.
        max_concrete_length: Skip the GLR cross-check for concretised
            strings longer than this.
        earley_step_budget: Step cap for the Earley derivation count;
            running out (possible only on heavily cyclic grammars) records
            the ambiguity check as skipped, never as failed.
    """

    def __init__(
        self,
        grammar: Grammar,
        glr_check: bool = False,
        glr_max_configurations: int = 2_000,
        max_concrete_length: int = 80,
        earley_step_budget: int | None = 500_000,
    ) -> None:
        self.grammar = grammar
        self.glr_check = glr_check
        self.glr_max_configurations = glr_max_configurations
        self.max_concrete_length = max_concrete_length
        self.earley_step_budget = earley_step_budget
        self._earley = EarleyParser(grammar)
        self._analysis = GrammarAnalysis(grammar)
        self._glr_parsers: dict[Nonterminal, GLRParser] = {}

    # ------------------------------------------------------------------ #
    # Public API

    def validate(self, counterexample: Counterexample) -> ValidationResult:
        """Validate one counterexample; never raises on malformed input."""
        if counterexample.unifying:
            return self._validate_unifying(counterexample)
        return self._validate_nonunifying(counterexample)

    def validate_witness(
        self, witness: tuple[Terminal, ...]
    ) -> ValidationResult:
        """Re-prove a static-analysis ambiguity witness.

        The SR pair walk (:mod:`repro.analysis`) claims *witness* is a
        sentence of the grammar with two distinct derivations; nothing
        of the walk is trusted here — the Earley oracle (and optionally
        the GLR runtime) re-counts derivations from the start symbol.
        """
        checks = _Checks()
        root = self.grammar.start
        form = tuple(witness)
        if not checks.record(
            "witness-is-sentence",
            all(
                symbol.is_terminal and symbol != END_OF_INPUT
                for symbol in form
            ),
            f"{format_symbols(form)!r} contains nonterminals or $",
        ):
            return checks.result("witness")
        try:
            ambiguous = (
                self._earley.count_derivations(
                    root, form, limit=2, step_budget=self.earley_step_budget
                )
                >= 2
            )
        except DerivationBudgetExceeded:
            checks.skip("earley-ambiguous", "derivation count ran out of budget")
        else:
            checks.record(
                "earley-ambiguous",
                ambiguous,
                f"Earley finds < 2 derivations of {format_symbols(form)!r} "
                f"from {root}",
            )
        if self.glr_check:
            self._glr_ambiguity_check(checks, root, form)
        return checks.result("witness")

    # ------------------------------------------------------------------ #
    # Unifying counterexamples: two distinct derivations, one form,
    # independently re-proven ambiguous.

    def _validate_unifying(self, cex: Counterexample) -> ValidationResult:
        checks = _Checks()
        ok1 = self._check_derivation(checks, "derivation1", cex.derivation1)
        ok2 = self._check_derivation(checks, "derivation2", cex.derivation2)
        if not (ok1 and ok2):
            return checks.result("unifying")

        root = cex.derivation1.symbol
        checks.record(
            "roots-unify",
            isinstance(root, Nonterminal)
            and cex.derivation2.symbol == root
            and cex.nonterminal == root,
            f"roots {cex.derivation1.symbol}/{cex.derivation2.symbol} vs "
            f"stated nonterminal {cex.nonterminal}",
        )
        checks.record(
            "derivations-distinct",
            cex.derivation1 != cex.derivation2,
            "both sides are the same derivation tree",
        )

        form1 = cex.example1_symbols()
        form2 = cex.example2_symbols()
        if not checks.record(
            "same-sentential-form",
            form1 == form2,
            f"{format_symbols(form1)!r} != {format_symbols(form2)!r}",
        ):
            return checks.result("unifying")
        checks.record(
            "conflict-prefixes-agree",
            cex.prefix() == self._prefix(cex.example2()),
            "the dots mark different positions in the two derivations",
        )

        if not isinstance(root, Nonterminal):
            return checks.result("unifying")
        try:
            ambiguous = (
                self._earley.count_derivations(
                    root, form1, limit=2, step_budget=self.earley_step_budget
                )
                >= 2
            )
        except DerivationBudgetExceeded:
            checks.skip("earley-ambiguous", "derivation count ran out of budget")
        else:
            checks.record(
                "earley-ambiguous",
                ambiguous,
                f"Earley finds < 2 derivations of {format_symbols(form1)!r} "
                f"from {root}",
            )
        if self.glr_check:
            self._glr_ambiguity_check(checks, root, form1)
        return checks.result("unifying")

    # ------------------------------------------------------------------ #
    # Nonunifying counterexamples: two derivable forms, shared prefix,
    # conflict terminal after the dot.

    def _validate_nonunifying(self, cex: Counterexample) -> ValidationResult:
        checks = _Checks()
        ok1 = self._check_derivation(checks, "derivation1", cex.derivation1)
        ok2 = self._check_derivation(checks, "derivation2", cex.derivation2)
        if not (ok1 and ok2):
            return checks.result("nonunifying")

        root = cex.derivation1.symbol
        checks.record(
            "roots-agree",
            isinstance(root, Nonterminal) and cex.derivation2.symbol == root,
            f"derivations rooted at {cex.derivation1.symbol} and "
            f"{cex.derivation2.symbol}",
        )

        yield1 = cex.example1()
        yield2 = cex.example2()
        prefix1 = self._prefix(yield1)
        prefix2 = self._prefix(yield2)
        checks.record(
            "shared-prefix",
            prefix1 == prefix2,
            f"{format_symbols(prefix1)!r} != {format_symbols(prefix2)!r}",
        )
        checks.record(
            "conflict-terminal-after-dot",
            self._after_dot(yield1) == cex.conflict.terminal,
            f"expected {cex.conflict.terminal} after the dot, "
            f"found {self._after_dot(yield1)}",
        )
        if cex.conflict.is_shift_reduce:
            # For shift/reduce conflicts the shift item itself pins the
            # terminal after the dot on the second side too; the sides of
            # a reduce/reduce counterexample may legitimately diverge.
            checks.record(
                "conflict-terminal-after-dot-2",
                self._after_dot(yield2) == cex.conflict.terminal,
                f"expected {cex.conflict.terminal} after the dot, "
                f"found {self._after_dot(yield2)}",
            )

        if not isinstance(root, Nonterminal):
            return checks.result("nonunifying")
        for name, form in (
            ("earley-derives-1", cex.example1_symbols()),
            ("earley-derives-2", cex.example2_symbols()),
        ):
            checks.record(
                name,
                self._earley.recognizes(root, form),
                f"Earley cannot derive {format_symbols(form)!r} from {root}",
            )
        if self.glr_check:
            self._glr_derivability_check(checks, root, cex)
        return checks.result("nonunifying")

    # ------------------------------------------------------------------ #
    # Structural replay

    def _check_derivation(
        self, checks: _Checks, name: str, derivation: Derivation
    ) -> bool:
        """Replay *derivation* bottom-up against the grammar's productions."""
        dots = 0
        error: str | None = None
        productions = self.grammar.productions
        stack = [derivation]
        while stack and error is None:
            node = stack.pop()
            if node.is_dot:
                dots += 1
                continue
            if node.children is None:
                continue
            production = node.production
            if production is None:
                error = f"expansion of {node.symbol} carries no production"
                break
            if (
                not 0 <= production.index < len(productions)
                or productions[production.index] != production
            ):
                error = f"'{production}' is not a production of this grammar"
                break
            if node.symbol != production.lhs:
                error = f"node {node.symbol} expanded by '{production}'"
                break
            real = tuple(c.symbol for c in node.children if not c.is_dot)
            if real != production.rhs:
                error = (
                    f"children {format_symbols(real)!r} do not spell the "
                    f"right-hand side of '{production}'"
                )
                break
            stack.extend(node.children)
        if error is None and dots > 1:
            error = f"{dots} dot markers (at most one conflict point allowed)"
        return checks.record(f"{name}-structure", error is None, error or "")

    @staticmethod
    def _prefix(elements: tuple[object, ...]) -> tuple[object, ...]:
        """Symbols before the dot (the whole yield when there is no dot)."""
        result: list[object] = []
        for element in elements:
            if element is DOT:
                break
            result.append(element)
        return tuple(result)

    @staticmethod
    def _after_dot(elements: tuple[object, ...]) -> object | None:
        """The first symbol after the dot, or ``None``."""
        seen_dot = False
        for element in elements:
            if element is DOT:
                seen_dot = True
            elif seen_dot:
                return element
        return None

    # ------------------------------------------------------------------ #
    # GLR cross-checks over independently rebuilt, precedence-free tables

    def _glr_parser(self, root: Nonterminal) -> GLRParser:
        parser = self._glr_parsers.get(root)
        if parser is None:
            # Precedence is dropped deliberately: ambiguity and membership
            # are properties of the raw grammar, and resolved table entries
            # would hide parses from the GLR runtime.
            regrammar = Grammar(
                [(p.lhs, p.rhs, None) for p in self.grammar.user_productions()],
                start=root,
                precedence=None,
                name=f"{self.grammar.name}@{root}",
            )
            parser = GLRParser(
                regrammar, max_configurations=self.glr_max_configurations
            )
            self._glr_parsers[root] = parser
        return parser

    def _concretize(self, form: tuple[Symbol, ...]) -> list[Terminal] | None:
        """Expand nonterminal leaves minimally into a pure terminal string."""
        concrete: list[Terminal] = []
        nonproductive = self.grammar.nonproductive_nonterminals
        for symbol in form:
            if symbol == END_OF_INPUT:
                continue
            if symbol.is_terminal:
                assert isinstance(symbol, Terminal)
                concrete.append(symbol)
                continue
            if symbol in nonproductive:
                return None
            concrete.extend(self._analysis.shortest_expansion(symbol))
        return concrete

    def _glr_ambiguity_check(
        self, checks: _Checks, root: Nonterminal, form: tuple[Symbol, ...]
    ) -> None:
        name = "glr-ambiguous"
        if root == self.grammar.augmented_start:
            checks.skip(name, "cannot reroot at the augmented start symbol")
            return
        concrete = self._concretize(form)
        if concrete is None:
            checks.skip(name, "form contains a nonproductive nonterminal")
            return
        if len(concrete) > self.max_concrete_length:
            checks.skip(name, f"concretised string has {len(concrete)} tokens")
            return
        try:
            trees = self._glr_parser(root).parse_all(concrete)
        except TooManyParses:
            checks.skip(name, "GLR configuration cap exceeded")
            return
        checks.record(
            name,
            len(trees) >= 2,
            f"GLR finds {len(trees)} parse(s) of the concretised "
            f"{format_symbols(tuple(concrete))!r} from {root}",
        )

    def _glr_derivability_check(
        self, checks: _Checks, root: Nonterminal, cex: Counterexample
    ) -> None:
        target = (
            self.grammar.start if root == self.grammar.augmented_start else root
        )
        for name, form in (
            ("glr-derives-1", cex.example1_symbols()),
            ("glr-derives-2", cex.example2_symbols()),
        ):
            concrete = self._concretize(form)
            if concrete is None:
                checks.skip(name, "form contains a nonproductive nonterminal")
                continue
            if len(concrete) > self.max_concrete_length:
                checks.skip(name, f"concretised string has {len(concrete)} tokens")
                continue
            try:
                trees = self._glr_parser(target).parse_all(concrete)
            except TooManyParses:
                checks.skip(name, "GLR configuration cap exceeded")
                continue
            checks.record(
                name,
                len(trees) >= 1,
                f"GLR rejects the concretised {format_symbols(tuple(concrete))!r}",
            )


def validate_counterexample(
    grammar: Grammar, counterexample: Counterexample, glr_check: bool = False
) -> ValidationResult:
    """One-shot convenience wrapper around :class:`CounterexampleValidator`."""
    return CounterexampleValidator(grammar, glr_check=glr_check).validate(
        counterexample
    )


def validate_ambiguity_witness(
    grammar: Grammar, witness: tuple[Terminal, ...], glr_check: bool = False
) -> ValidationResult:
    """One-shot validation of an SR-walk ambiguity witness sentence."""
    return CounterexampleValidator(grammar, glr_check=glr_check).validate_witness(
        witness
    )
