"""Seeded random-grammar generation for differential fuzzing.

:class:`GrammarFuzzer` draws small context-free grammars from a seeded
PRNG. The same ``(config, seed)`` pair always produces the same grammar,
so every fuzz failure is reproducible from its seed alone
(``repro-conflicts --fuzz 1 --seed S``).

Beyond uniform random productions, the generator grafts in *ambiguity
injectors* — miniature versions of the conflict patterns the paper's
corpus is built from (dangling else, overlapping binary operators,
epsilon/unit derivation cycles) — so that a useful fraction of generated
grammars actually has conflicts for the finder to explain. Random
precedence declarations exercise the table-resolution path.

:func:`grammar_strategy` wraps the generator as a hypothesis strategy
(seed-driven, so shrinking works on the seed), mirroring the hand-rolled
strategies in ``tests/property/``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.grammar import Grammar, GrammarBuilder

#: Terminal name pool for the base rules.
_TERMINAL_POOL = ("a", "b", "c", "d", "e", "f")

#: The three associativity spellings GrammarBuilder exposes.
_ASSOCIATIVITIES = ("left", "right", "nonassoc")


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for the random-grammar distribution.

    Attributes:
        min_nonterminals / max_nonterminals: Size of the nonterminal pool.
        min_terminals / max_terminals: Size of the terminal pool.
        max_productions_per_nonterminal: Alternatives per nonterminal.
        max_rhs_length: Longest generated right-hand side.
        epsilon_weight: Probability that a right-hand side is empty.
        nonterminal_weight: Per-symbol probability of drawing a
            nonterminal rather than a terminal.
        injector_probability: Probability of grafting one ambiguity
            injector into the grammar.
        precedence_probability: Probability of declaring random
            precedence levels (and occasionally a ``%prec`` override).
        ensure_productive: Repair nonproductive nonterminals with a
            fresh terminal production, so every generated grammar is
            fully reduced (the finder, like the paper's tool, assumes
            productive grammars).
    """

    min_nonterminals: int = 2
    max_nonterminals: int = 5
    min_terminals: int = 2
    max_terminals: int = 4
    max_productions_per_nonterminal: int = 3
    max_rhs_length: int = 4
    epsilon_weight: float = 0.15
    nonterminal_weight: float = 0.4
    injector_probability: float = 0.5
    precedence_probability: float = 0.2
    ensure_productive: bool = True


class GrammarFuzzer:
    """Deterministic random CFG generator."""

    def __init__(self, config: FuzzConfig | None = None) -> None:
        self.config = config or FuzzConfig()

    # ------------------------------------------------------------------ #

    def generate(self, seed: int) -> Grammar:
        """The grammar for *seed* (pure function of ``(config, seed)``)."""
        cfg = self.config
        rng = random.Random(seed)
        nonterminals = [
            f"n{i}"
            for i in range(rng.randint(cfg.min_nonterminals, cfg.max_nonterminals))
        ]
        terminals = list(
            _TERMINAL_POOL[: rng.randint(cfg.min_terminals, cfg.max_terminals)]
        )

        rules: list[tuple[str, list[str], str | None]] = []
        for lhs in nonterminals:
            for _ in range(rng.randint(1, cfg.max_productions_per_nonterminal)):
                rules.append((lhs, self._random_rhs(rng, nonterminals, terminals), None))

        if rng.random() < cfg.injector_probability:
            injector = rng.choice(
                (
                    self._inject_dangling_else,
                    self._inject_overlapping_operators,
                    self._inject_epsilon_cycle,
                    self._inject_unit_cycle,
                )
            )
            injector(rng, rules, nonterminals, terminals)

        declarations = self._random_precedence(rng, rules, terminals)

        grammar = self._build(seed, rules, declarations)
        if cfg.ensure_productive:
            repaired = False
            for nonterminal in sorted(
                grammar.nonproductive_nonterminals, key=str
            ):
                rules.append((nonterminal.name, [rng.choice(terminals)], None))
                repaired = True
            if repaired:
                grammar = self._build(seed, rules, declarations)
        return grammar

    # ------------------------------------------------------------------ #
    # Base distribution

    def _random_rhs(
        self, rng: random.Random, nonterminals: list[str], terminals: list[str]
    ) -> list[str]:
        cfg = self.config
        if rng.random() < cfg.epsilon_weight:
            return []
        length = rng.randint(1, cfg.max_rhs_length)
        return [
            rng.choice(nonterminals)
            if rng.random() < cfg.nonterminal_weight
            else rng.choice(terminals)
            for _ in range(length)
        ]

    # ------------------------------------------------------------------ #
    # Ambiguity injectors (each may add fresh terminal names; a name is a
    # terminal exactly when it never appears as a left-hand side)

    @staticmethod
    def _inject_dangling_else(
        rng: random.Random,
        rules: list[tuple[str, list[str], str | None]],
        nonterminals: list[str],
        terminals: list[str],
    ) -> None:
        stmt = rng.choice(nonterminals)
        cond = rng.choice(terminals)
        rules.append((stmt, ["if", cond, "then", stmt], None))
        rules.append((stmt, ["if", cond, "then", stmt, "else", stmt], None))

    @staticmethod
    def _inject_overlapping_operators(
        rng: random.Random,
        rules: list[tuple[str, list[str], str | None]],
        nonterminals: list[str],
        terminals: list[str],
    ) -> None:
        expr = rng.choice(nonterminals)
        rules.append((expr, [expr, "+", expr], None))
        rules.append((expr, [expr, "*", expr], None))
        rules.append((expr, [rng.choice(terminals)], None))

    @staticmethod
    def _inject_epsilon_cycle(
        rng: random.Random,
        rules: list[tuple[str, list[str], str | None]],
        nonterminals: list[str],
        terminals: list[str],
    ) -> None:
        lhs = rng.choice(nonterminals)
        rules.append((lhs, [], None))
        rules.append((lhs, [lhs, lhs], None))

    @staticmethod
    def _inject_unit_cycle(
        rng: random.Random,
        rules: list[tuple[str, list[str], str | None]],
        nonterminals: list[str],
        terminals: list[str],
    ) -> None:
        first = rng.choice(nonterminals)
        second = rng.choice(nonterminals)
        rules.append((first, [second], None))
        rules.append((second, [first], None))
        rules.append((second, [rng.choice(terminals)], None))

    # ------------------------------------------------------------------ #
    # Precedence

    def _random_precedence(
        self,
        rng: random.Random,
        rules: list[tuple[str, list[str], str | None]],
        terminals: list[str],
    ) -> list[tuple[str, list[str]]]:
        if rng.random() >= self.config.precedence_probability:
            return []
        lhs_names = {lhs for lhs, _, _ in rules}
        pool = sorted(
            {
                name
                for _, rhs, _ in rules
                for name in rhs
                if name not in lhs_names
            }
        )
        if not pool:
            return []
        declarations: list[tuple[str, list[str]]] = []
        remaining = list(pool)
        rng.shuffle(remaining)
        for _ in range(rng.randint(1, 2)):
            if not remaining:
                break
            count = rng.randint(1, min(2, len(remaining)))
            level, remaining = remaining[:count], remaining[count:]
            declarations.append((rng.choice(_ASSOCIATIVITIES), level))
        # Occasionally add a %prec override referencing a declared level.
        if declarations and rng.random() < 0.5:
            index = rng.randrange(len(rules))
            lhs, rhs, _ = rules[index]
            rules[index] = (lhs, rhs, rng.choice(declarations[-1][1]))
        return declarations

    # ------------------------------------------------------------------ #

    @staticmethod
    def _build(
        seed: int,
        rules: list[tuple[str, list[str], str | None]],
        declarations: list[tuple[str, list[str]]],
    ) -> Grammar:
        builder = GrammarBuilder(f"fuzz-{seed}")
        for associativity, level in declarations:
            getattr(builder, associativity)(*level)
        for lhs, rhs, prec in rules:
            builder.rule(lhs, rhs, prec=prec)
        return builder.build(start=rules[0][0])


def grammar_strategy(config: FuzzConfig | None = None):
    """A hypothesis strategy over fuzzer grammars (requires hypothesis).

    The strategy draws a seed and maps it through
    :meth:`GrammarFuzzer.generate`, so hypothesis shrinks over seeds and
    every falsifying example reduces to one reproducible integer.
    """
    from hypothesis import strategies as st

    fuzzer = GrammarFuzzer(config)
    return st.integers(min_value=0, max_value=2**32 - 1).map(fuzzer.generate)
