"""The differential fuzzing harness: generate, explain, validate, shrink.

One fuzz iteration closes the whole loop the library exists for:

1. :class:`~repro.verify.fuzz.GrammarFuzzer` draws a random grammar from
   the iteration seed;
2. the LALR automaton is built and the
   :class:`~repro.verify.differential.DifferentialOracle` checks it
   against the SLR/LR(1) constructions and the three parser runtimes;
3. the :class:`~repro.core.finder.CounterexampleFinder` explains every
   conflict;
4. the :class:`~repro.verify.validate.CounterexampleValidator`
   independently re-proves each counterexample.

Anything that goes wrong is *classified* — validator rejection, oracle
disagreement, finder timeout, or crash — and recorded together with the
failing grammar, shrunk to a (locally) minimal production set and
re-emitted through the textual DSL so the report alone reproduces the
bug. Timeouts are informational; the other three kinds are fatal.

Per-iteration seeds are ``base_seed + index``, so any single failure
replays with ``repro-conflicts --fuzz 1 --seed <seed>``.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.automaton.lalr import build_lalr
from repro.core.finder import CounterexampleFinder
from repro.grammar import Grammar, dump_grammar
from repro.grammar.errors import GrammarError
from repro.robust.faults import registry as fault_registry
from repro.verify.differential import DifferentialOracle
from repro.verify.fuzz import FuzzConfig, GrammarFuzzer
from repro.verify.validate import CounterexampleValidator


class FailureKind(enum.Enum):
    """Classification of one fuzz finding."""

    VALIDATOR_REJECTION = "validator-rejection"
    ORACLE_DISAGREEMENT = "oracle-disagreement"
    FINDER_TIMEOUT = "finder-timeout"
    CRASH = "crash"

    @property
    def fatal(self) -> bool:
        return self is not FailureKind.FINDER_TIMEOUT


@dataclass(frozen=True)
class FuzzFailure:
    """One classified finding, with a reproducible shrunk grammar."""

    seed: int
    kind: FailureKind
    detail: str
    grammar_text: str
    original_productions: int
    shrunk_productions: int

    def describe(self) -> str:
        shrink_note = (
            f" (shrunk {self.original_productions} -> "
            f"{self.shrunk_productions} productions)"
            if self.shrunk_productions < self.original_productions
            else ""
        )
        return (
            f"[{self.kind.value}] seed {self.seed}{shrink_note}\n"
            f"  {self.detail}\n"
            f"  reproduce: repro-conflicts --fuzz 1 --seed {self.seed}\n"
            + "\n".join(f"  | {line}" for line in self.grammar_text.splitlines())
        )


@dataclass
class FuzzReport:
    """Aggregate results of one fuzz campaign."""

    iterations: int
    base_seed: int
    grammars: int = 0
    grammars_with_conflicts: int = 0
    conflicts: int = 0
    unifying: int = 0
    nonunifying: int = 0
    timeouts: int = 0
    #: Conflicts that fell to the stub rung of the degradation ladder
    #: (no counterexample at all) — should be zero without fault injection.
    stubs: int = 0
    #: Conflicts with at least one recorded stage degradation.
    degraded: int = 0
    counterexamples_validated: int = 0
    oracle_samples: int = 0
    lint_diagnostics: int = 0
    #: Conflicts classified as LALR merge artifacts (they vanish under
    #: minimal LR(1) state splitting) vs genuine LR(1) conflicts.
    merge_artifacts: int = 0
    genuine_conflicts: int = 0
    #: SR pair-walk verdict tallies; together they cover every conflict
    #: the walker examined (unambiguous + ambiguous + inconclusive ==
    #: conflicts, barring a walker crash — which is itself fatal).
    ambiguity_unambiguous: int = 0
    ambiguity_ambiguous: int = 0
    ambiguity_inconclusive: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def fatal_failures(self) -> list[FuzzFailure]:
        return [f for f in self.failures if f.kind.fatal]

    @property
    def ok(self) -> bool:
        return not self.fatal_failures

    def counts_by_kind(self) -> dict[str, int]:
        counts = {kind.value: 0 for kind in FailureKind}
        for failure in self.failures:
            counts[failure.kind.value] += 1
        return counts

    def deterministic_json(self) -> dict:
        """The wall-clock-independent slice of the report, JSON-ready.

        This is the campaign orchestrator's per-unit payload: every
        field here replays exactly from the seeds alone, so shard
        reports merge byte-identically no matter which process — or
        machine — ran each iteration. Timing-dependent tallies (the
        unifying/nonunifying/timeout split, stub/degradation counts,
        elapsed) are deliberately excluded; they travel as telemetry,
        never as report content. Finder timeouts are likewise dropped
        from the failure list — they are informational, not findings.
        """
        return {
            "iterations": self.iterations,
            "base_seed": self.base_seed,
            "grammars": self.grammars,
            "grammars_with_conflicts": self.grammars_with_conflicts,
            "conflicts": self.conflicts,
            "counterexamples_validated": self.counterexamples_validated,
            "oracle_samples": self.oracle_samples,
            "lint_diagnostics": self.lint_diagnostics,
            "merge_artifacts": self.merge_artifacts,
            "genuine_conflicts": self.genuine_conflicts,
            "ambiguity": {
                "unambiguous": self.ambiguity_unambiguous,
                "ambiguous": self.ambiguity_ambiguous,
                "inconclusive": self.ambiguity_inconclusive,
            },
            "failures": [
                {
                    "seed": failure.seed,
                    "kind": failure.kind.value,
                    "detail": failure.detail,
                    "grammar": failure.grammar_text,
                }
                for failure in self.failures
                if failure.kind is not FailureKind.FINDER_TIMEOUT
            ],
        }

    def describe(self) -> str:
        counts = self.counts_by_kind()
        lines = [
            f"fuzz campaign: {self.grammars}/{self.iterations} grammars "
            f"(base seed {self.base_seed}) in {self.elapsed:.1f}s",
            f"  conflicts explained: {self.conflicts} "
            f"({self.unifying} unifying, {self.nonunifying} nonunifying, "
            f"{self.timeouts} timed out, {self.stubs} stubs) over "
            f"{self.grammars_with_conflicts} conflicted grammars",
            f"  degraded explanations: {self.degraded}",
            f"  counterexamples validated: {self.counterexamples_validated}; "
            f"oracle samples: {self.oracle_samples}; "
            f"lint diagnostics: {self.lint_diagnostics}",
            f"  conflict provenance: {self.genuine_conflicts} genuine LR(1), "
            f"{self.merge_artifacts} LALR merge artifacts",
            f"  ambiguity verdicts: {self.ambiguity_unambiguous} unambiguous, "
            f"{self.ambiguity_ambiguous} ambiguous, "
            f"{self.ambiguity_inconclusive} inconclusive",
            "  failures: "
            + ", ".join(f"{name}={count}" for name, count in counts.items()),
        ]
        for failure in self.failures:
            lines.append(failure.describe())
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


@dataclass
class _Examination:
    """What one grammar's full loop produced."""

    conflicts: int = 0
    unifying: int = 0
    nonunifying: int = 0
    timeouts: int = 0
    stubs: int = 0
    degraded: int = 0
    validated: int = 0
    samples: int = 0
    lint_diagnostics: int = 0
    merge_artifacts: int = 0
    genuine: int = 0
    ambiguity_unambiguous: int = 0
    ambiguity_ambiguous: int = 0
    ambiguity_inconclusive: int = 0
    problems: list[tuple[FailureKind, str]] = field(default_factory=list)

    def problem_kinds(self) -> set[FailureKind]:
        return {kind for kind, _ in self.problems}


class FuzzHarness:
    """Runs the generate→explain→validate loop and shrinks failures.

    Args:
        config: Grammar distribution knobs (see :class:`FuzzConfig`).
        time_limit: Per-conflict unifying-search budget (kept small —
            fuzz grammars are tiny and timeouts are only informational).
        cumulative_limit: Per-grammar unifying-search budget.
        differential: Run the cross-construction oracle each iteration.
        provenance_check: Classify every conflict as genuine-LR(1) vs
            LALR merge artifact (exercising the minimal-LR(1) splitter on
            each conflicted fuzz grammar); classification crashes are
            fatal campaign failures.
        ambiguity_check: Run the bounded SR pair walk
            (:mod:`repro.analysis`) on every conflict, tallying the
            unambiguous/ambiguous/inconclusive verdicts; every
            ``ambiguous`` witness is re-proven by the independent
            validator (a rejection is a fatal campaign failure), and a
            walker crash is fatal too (broken-walker canary).
        glr_check: Ask the validator for the GLR cross-check as well.
        lint_check: Run every static lint pass on each fuzzed grammar;
            any pass crash is classified as a fatal campaign failure
            (crash-freedom canary for :mod:`repro.lint`). Lint findings
            themselves are expected — random grammars are messy — so only
            crashes count.
        shrink: Minimise failing grammars before reporting.
        max_shrink_attempts: Cap on re-examinations during shrinking.
        oracle_samples: Sample count per polarity for the oracle.
        max_lr1_states: Canonical LR(1) cap for the oracle.
        glr_max_configurations: GLR cap for the validator's cross-check.
            Kept small: on heavily cyclic fuzz grammars a large cap burns
            seconds per counterexample only to blow up anyway, and
            blow-ups are recorded as skips either way.
        verify_step_budget: Earley step cap shared by the finder's
            verification pass and the validator's ambiguity recount.
        automaton_cache: Optional
            :class:`~repro.perf.cache.AutomatonCache`; when given,
            automaton construction goes through the content-addressed
            cache (repeat grammars decode instead of rebuilding).
    """

    def __init__(
        self,
        config: FuzzConfig | None = None,
        time_limit: float = 0.3,
        cumulative_limit: float = 2.0,
        differential: bool = True,
        provenance_check: bool = True,
        ambiguity_check: bool = True,
        glr_check: bool = True,
        lint_check: bool = True,
        shrink: bool = True,
        max_shrink_attempts: int = 200,
        oracle_samples: int = 6,
        max_lr1_states: int = 2_000,
        glr_max_configurations: int = 300,
        verify_step_budget: int = 50_000,
        automaton_cache=None,
    ) -> None:
        self.fuzzer = GrammarFuzzer(config)
        self.time_limit = time_limit
        self.cumulative_limit = cumulative_limit
        self.differential = differential
        self.provenance_check = provenance_check
        self.ambiguity_check = ambiguity_check
        self.glr_check = glr_check
        self.lint_check = lint_check
        self.shrink = shrink
        self.max_shrink_attempts = max_shrink_attempts
        self.oracle_samples = oracle_samples
        self.max_lr1_states = max_lr1_states
        self.glr_max_configurations = glr_max_configurations
        self.verify_step_budget = verify_step_budget
        #: Optional :class:`repro.perf.cache.AutomatonCache`. Fuzz
        #: campaigns re-examine structurally identical grammars often
        #: (shrinking, duplicate seeds); the content-addressed cache
        #: makes those re-examinations skip LALR construction.
        self.automaton_cache = automaton_cache

    # ------------------------------------------------------------------ #

    def run(
        self,
        iterations: int,
        seed: int = 0,
        progress=None,
    ) -> FuzzReport:
        """Run *iterations* seeded iterations; never raises.

        Args:
            iterations: Number of grammars to generate.
            seed: Base seed; iteration ``i`` uses ``seed + i``.
            progress: Optional callback ``(done, total, report)`` invoked
                after every iteration.
        """
        report = FuzzReport(iterations=iterations, base_seed=seed)
        started = time.monotonic()
        for index in range(iterations):
            self._run_one(seed + index, report)
            if progress is not None:
                progress(index + 1, iterations, report)
        report.elapsed = time.monotonic() - started
        return report

    def run_unit(self, iteration_seed: int) -> FuzzReport:
        """Run exactly one iteration at the *absolute* seed given.

        The unit-addressable spelling of :meth:`run`: a campaign shard
        calls this once per work unit, so ``run(n, seed=s)`` and ``n``
        separate ``run_unit(s + i)`` calls cover the same seeds and sum
        to the same deterministic counters (see
        :meth:`FuzzReport.deterministic_json`).
        """
        return self.run(1, seed=iteration_seed)

    def _run_one(self, iteration_seed: int, report: FuzzReport) -> None:
        try:
            grammar = self.fuzzer.generate(iteration_seed)
        except Exception as error:  # noqa: BLE001 — classified, not raised
            report.failures.append(
                FuzzFailure(
                    seed=iteration_seed,
                    kind=FailureKind.CRASH,
                    detail=f"grammar generation raised {error!r}",
                    grammar_text="",
                    original_productions=0,
                    shrunk_productions=0,
                )
            )
            return
        report.grammars += 1
        examination = self._examine(grammar, iteration_seed)
        report.conflicts += examination.conflicts
        report.unifying += examination.unifying
        report.nonunifying += examination.nonunifying
        report.timeouts += examination.timeouts
        report.stubs += examination.stubs
        report.degraded += examination.degraded
        report.counterexamples_validated += examination.validated
        report.oracle_samples += examination.samples
        report.lint_diagnostics += examination.lint_diagnostics
        report.merge_artifacts += examination.merge_artifacts
        report.genuine_conflicts += examination.genuine
        report.ambiguity_unambiguous += examination.ambiguity_unambiguous
        report.ambiguity_ambiguous += examination.ambiguity_ambiguous
        report.ambiguity_inconclusive += examination.ambiguity_inconclusive
        if examination.conflicts:
            report.grammars_with_conflicts += 1

        shrunk_cache: dict[FailureKind, Grammar] = {}
        for kind, detail in examination.problems:
            shrunk = grammar
            if self.shrink and kind.fatal:
                if kind not in shrunk_cache:
                    shrunk_cache[kind] = self._shrink(grammar, iteration_seed, kind)
                shrunk = shrunk_cache[kind]
            report.failures.append(
                FuzzFailure(
                    seed=iteration_seed,
                    kind=kind,
                    detail=detail,
                    grammar_text=dump_grammar(shrunk),
                    original_productions=grammar.num_user_productions,
                    shrunk_productions=shrunk.num_user_productions,
                )
            )

    # ------------------------------------------------------------------ #
    # One grammar through the whole loop

    def _check_witness(
        self, grammar: Grammar, conflict, verdict, result: _Examination
    ) -> None:
        """Re-prove one ``ambiguous`` verdict's witness independently."""
        from repro.verify.validate import CounterexampleValidator

        try:
            outcome = CounterexampleValidator(
                grammar,
                glr_check=False,
                earley_step_budget=self.verify_step_budget,
            ).validate_witness(verdict.witness or ())
        except Exception as error:  # noqa: BLE001
            result.problems.append(
                (
                    FailureKind.CRASH,
                    f"ambiguity witness validation raised {error!r} on "
                    f"[{conflict}]",
                )
            )
            return
        if not outcome.ok:
            result.problems.append(
                (
                    FailureKind.VALIDATOR_REJECTION,
                    f"ambiguity witness for [{conflict}] rejected: "
                    + "; ".join(outcome.failures),
                )
            )

    def _examine(self, grammar: Grammar, seed: int) -> _Examination:
        result = _Examination()
        try:
            if self.automaton_cache is not None:
                from repro.perf.cache import build_lalr_cached

                automaton = build_lalr_cached(grammar, self.automaton_cache)
            else:
                automaton = build_lalr(grammar)
        except Exception as error:  # noqa: BLE001
            result.problems.append(
                (FailureKind.CRASH, f"automaton construction raised {error!r}")
            )
            return result

        if self.lint_check:
            from repro.lint import LintConfig, run_lint

            try:
                lint_report = run_lint(
                    grammar,
                    config=LintConfig(max_lr1_states=self.max_lr1_states),
                    automaton=automaton,
                )
            except Exception as error:  # noqa: BLE001
                result.problems.append(
                    (FailureKind.CRASH, f"lint pass raised {error!r}")
                )
            else:
                result.lint_diagnostics = len(lint_report.diagnostics)

        if self.differential:
            try:
                oracle_report = DifferentialOracle(
                    grammar,
                    automaton=automaton,
                    max_lr1_states=self.max_lr1_states,
                    num_samples=self.oracle_samples,
                    seed=seed,
                ).check()
            except Exception as error:  # noqa: BLE001
                result.problems.append(
                    (FailureKind.CRASH, f"differential oracle raised {error!r}")
                )
            else:
                result.samples = oracle_report.samples_checked
                for disagreement in oracle_report.disagreements:
                    result.problems.append(
                        (FailureKind.ORACLE_DISAGREEMENT, str(disagreement))
                    )

        try:
            finder = CounterexampleFinder(
                automaton,
                time_limit=self.time_limit,
                cumulative_limit=self.cumulative_limit,
                verify=True,
                verify_step_budget=self.verify_step_budget,
            )
            summary = finder.explain_all()
        except Exception as error:  # noqa: BLE001
            result.problems.append(
                (FailureKind.CRASH, f"counterexample finder raised {error!r}")
            )
            return result

        if self.provenance_check and automaton.conflicts:
            from repro.automaton.ielr import ProvenanceVerdict, classify_conflicts

            try:
                provenance = classify_conflicts(
                    automaton, max_lr1_states=self.max_lr1_states
                )
            except Exception as error:  # noqa: BLE001
                result.problems.append(
                    (
                        FailureKind.CRASH,
                        f"provenance classification raised {error!r}",
                    )
                )
            else:
                for entry in provenance.values():
                    if entry.verdict is ProvenanceVerdict.MERGE_ARTIFACT:
                        result.merge_artifacts += 1
                    elif entry.verdict is ProvenanceVerdict.GENUINE:
                        result.genuine += 1

        if self.ambiguity_check and automaton.conflicts:
            from repro.analysis import AmbiguityVerdict, analyze_conflicts

            try:
                verdicts = analyze_conflicts(automaton)
            except Exception as error:  # noqa: BLE001
                result.problems.append(
                    (FailureKind.CRASH, f"ambiguity walk raised {error!r}")
                )
            else:
                for conflict, verdict in verdicts.items():
                    if verdict.verdict is AmbiguityVerdict.UNAMBIGUOUS:
                        result.ambiguity_unambiguous += 1
                    elif verdict.verdict is AmbiguityVerdict.AMBIGUOUS:
                        result.ambiguity_ambiguous += 1
                        self._check_witness(grammar, conflict, verdict, result)
                    else:
                        result.ambiguity_inconclusive += 1

        result.conflicts = summary.num_conflicts
        result.unifying = summary.num_unifying
        result.nonunifying = summary.num_nonunifying
        result.timeouts = summary.num_timeout
        result.stubs = summary.num_stub
        result.degraded = summary.num_degraded
        # A stub without deliberate fault injection means a pipeline stage
        # genuinely failed on this grammar — that is a finding, not noise.
        if summary.num_stub and not fault_registry().active:
            for finder_report in summary.reports:
                if finder_report.stub is None:
                    continue
                reasons = "; ".join(
                    d.describe() for d in finder_report.degradations
                ) or "no degradation recorded"
                result.problems.append(
                    (
                        FailureKind.CRASH,
                        f"conflict [{finder_report.conflict}] degraded to a "
                        f"stub: {reasons}",
                    )
                )
        if summary.num_timeout:
            result.problems.append(
                (
                    FailureKind.FINDER_TIMEOUT,
                    f"{summary.num_timeout} of {summary.num_conflicts} "
                    f"unifying searches timed out "
                    f"(time limit {self.time_limit}s)",
                )
            )

        try:
            validator = CounterexampleValidator(
                grammar,
                glr_check=self.glr_check,
                glr_max_configurations=self.glr_max_configurations,
                earley_step_budget=self.verify_step_budget,
            )
        except Exception as error:  # noqa: BLE001
            result.problems.append(
                (FailureKind.CRASH, f"validator construction raised {error!r}")
            )
            return result
        for finder_report in summary.reports:
            if finder_report.counterexample is None:
                continue  # stub rung: nothing to validate
            try:
                verdict = validator.validate(finder_report.counterexample)
            except Exception as error:  # noqa: BLE001
                result.problems.append(
                    (
                        FailureKind.CRASH,
                        f"validator raised {error!r} on "
                        f"{finder_report.counterexample}",
                    )
                )
                continue
            result.validated += 1
            if not verdict.ok:
                result.problems.append(
                    (
                        FailureKind.VALIDATOR_REJECTION,
                        f"conflict [{finder_report.conflict}]: "
                        + "; ".join(verdict.failures),
                    )
                )
        return result

    # ------------------------------------------------------------------ #
    # Shrinking: greedy production removal preserving the failure kind

    def _shrink(
        self, grammar: Grammar, seed: int, kind: FailureKind
    ) -> Grammar:
        attempts = 0
        current = grammar
        improved = True
        while improved and attempts < self.max_shrink_attempts:
            improved = False
            productions = list(current.user_productions())
            for index in range(len(productions)):
                candidate = self._without_production(current, index)
                if candidate is None:
                    continue
                attempts += 1
                if attempts >= self.max_shrink_attempts:
                    break
                if kind in self._examine(candidate, seed).problem_kinds():
                    current = candidate
                    improved = True
                    break
        return current

    @staticmethod
    def _without_production(grammar: Grammar, index: int) -> Grammar | None:
        """*grammar* minus its *index*-th user production, if still valid."""
        productions = [
            (p.lhs, p.rhs, p.prec_override)
            for i, p in enumerate(grammar.user_productions())
            if i != index
        ]
        if not productions:
            return None
        try:
            return Grammar(
                productions,
                start=grammar.start,
                precedence=grammar.precedence,
                name=grammar.name,
            )
        except GrammarError:
            return None


def run_fuzz_campaign(
    iterations: int,
    seed: int = 0,
    config: FuzzConfig | None = None,
    progress=None,
    **harness_options,
) -> FuzzReport:
    """Module-level convenience wrapper around :class:`FuzzHarness`."""
    harness = FuzzHarness(config, **harness_options)
    return harness.run(iterations, seed=seed, progress=progress)
