"""Differential verification: independent oracles for the whole pipeline.

This package closes the loop between the counterexample finder and the
parser runtimes. It has no knowledge of how counterexamples are *found*
— it only re-proves what they *claim*, using independently constructed
automata and parsers, over both the evaluation corpus and a stream of
seeded random grammars.
"""

from repro.verify.differential import (
    DifferentialOracle,
    DifferentialReport,
    Disagreement,
)
from repro.verify.fuzz import FuzzConfig, GrammarFuzzer, grammar_strategy
from repro.verify.harness import (
    FailureKind,
    FuzzFailure,
    FuzzHarness,
    FuzzReport,
    run_fuzz_campaign,
)
from repro.verify.validate import (
    CounterexampleValidator,
    ValidationResult,
    validate_ambiguity_witness,
    validate_counterexample,
)

__all__ = [
    "CounterexampleValidator",
    "DifferentialOracle",
    "DifferentialReport",
    "Disagreement",
    "FailureKind",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzHarness",
    "FuzzReport",
    "GrammarFuzzer",
    "ValidationResult",
    "grammar_strategy",
    "run_fuzz_campaign",
    "validate_ambiguity_witness",
    "validate_counterexample",
]
