"""Command-line interface: explain a grammar's conflicts, CUP-style.

Usage::

    repro-conflicts GRAMMAR.y [options]
    repro-conflicts serve [options]
    repro-conflicts campaign {plan,run,warm,merge} [options]
    python -m repro GRAMMAR.y [options]
    python -m repro --corpus figure1

Prints one report per conflict, in the format of the paper's Figure 11.
``serve`` boots the supervised analysis service (see docs/SERVICE.md);
``campaign`` drives sharded, resumable verification campaigns (see
docs/CAMPAIGN.md).

A campaign interrupted by SIGINT/SIGTERM cancels *structurally*: the
in-flight conflict finishes degrading to a stub, the remaining conflicts
are stubbed with a recorded cancellation, any ``--robust-report`` is
still flushed (partial but well-formed), and the exit code is 130.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time

from repro.automaton import build_automaton
from repro.core import CounterexampleFinder, safe_format_report, summary_to_json
from repro.grammar import GrammarError, load_grammar_file, normalize_algorithm

#: Human-readable construction names for the no-conflict summary line.
_ALGORITHM_LABELS = {
    "lalr": "LALR(1)",
    "ielr": "LR(1) (minimal construction)",
    "lr1": "LR(1) (canonical construction)",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-conflicts",
        description=(
            "Explain every LALR parsing conflict in a grammar with a "
            "unifying or nonunifying counterexample "
            "(Isradisaikul & Myers, PLDI 2015)."
        ),
    )
    parser.add_argument("grammar", nargs="?", help="grammar file (yacc-like syntax)")
    parser.add_argument(
        "--corpus",
        metavar="NAME",
        help="analyse a built-in corpus grammar (e.g. figure1, SQL.2) instead",
    )
    parser.add_argument(
        "--list-corpus", action="store_true", help="list corpus grammar names"
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-conflict unifying-search budget (default: 5, as in the paper)",
    )
    parser.add_argument(
        "--cumulative-limit",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="total unifying-search budget (default: 120, as in the paper)",
    )
    parser.add_argument(
        "--extendedsearch",
        action="store_true",
        help="do not restrict the search to the shortest lookahead-sensitive path",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the independent Earley validation of unifying counterexamples",
    )
    parser.add_argument(
        "--table-algorithm",
        metavar="ALG",
        help=(
            "table construction: lalr (default), ielr (minimal LR(1): split "
            "only the states whose merging manufactures conflicts), or lr1 "
            "(canonical); overrides the grammar's %%algorithm directive"
        ),
    )
    parser.add_argument(
        "--provenance",
        action="store_true",
        help=(
            "annotate each conflict with its provenance: genuine LR(1) "
            "conflict vs LALR merge artifact (naming the minimal-LR(1) "
            "states the offending state splits into)"
        ),
    )
    parser.add_argument(
        "--ambiguity",
        action="store_true",
        help=(
            "annotate each conflict with a static ambiguity verdict from "
            "a bounded SR-automaton pair walk: proved unambiguous, proved "
            "ambiguous (with a witness sentence), or inconclusive"
        ),
    )
    parser.add_argument(
        "--states",
        action="store_true",
        help="also print the LALR automaton (states, items, lookaheads)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print structural grammar metrics before the conflict reports",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    perf = parser.add_argument_group("performance & profiling")
    perf.add_argument(
        "--profile",
        action="store_true",
        help=(
            "collect phase timings and counters (automaton build, search, "
            "verification, ...) and print the profile after the summary"
        ),
    )
    perf.add_argument(
        "--profile-json",
        metavar="FILE",
        help="write the collected profile as JSON to FILE ('-' for stdout)",
    )
    perf.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help=(
            "explain conflicts in parallel over N worker processes "
            "(0 = CPU count); reports are merged in conflict order, so "
            "the output is identical to a serial run's"
        ),
    )
    perf.add_argument(
        "--cache-dir",
        nargs="?",
        const="",
        metavar="DIR",
        help=(
            "enable the content-addressed automaton cache; DIR defaults "
            "to $REPRO_CACHE_DIR or ~/.cache/repro/automatons. Repeat "
            "runs on an unchanged grammar skip LALR construction"
        ),
    )
    robust = parser.add_argument_group("resource governance")
    robust.add_argument(
        "--max-configurations",
        type=int,
        default=2_000_000,
        metavar="N",
        help=(
            "hard cap on configurations per unifying search, also bounding "
            "the LASG and backward-walk stages (default: 2000000)"
        ),
    )
    robust.add_argument(
        "--retry-timed-out",
        action="store_true",
        help=(
            "after the main pass, re-search timed-out conflicts with the "
            "leftover cumulative budget split among them"
        ),
    )
    robust.add_argument(
        "--robust-report",
        metavar="FILE",
        help=(
            "write the per-conflict degradation report (ladder rung, stage "
            "failures, stub details) as JSON to FILE ('-' for stdout); in "
            "this mode the exit code is 0 when every conflict was explained "
            "at some ladder rung, 1 only when the report is incomplete"
        ),
    )
    fuzz = parser.add_argument_group("differential fuzzing")
    fuzz.add_argument(
        "--fuzz",
        type=int,
        metavar="N",
        help=(
            "run N differential fuzzing iterations (random grammars through "
            "the oracle, finder, and validator) instead of analysing a grammar"
        ),
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed for --fuzz; iteration i uses seed S+i (default: 0)",
    )
    fuzz.add_argument(
        "--fuzz-report",
        metavar="FILE",
        help="also write the full fuzz report to FILE",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing grammars as generated, without minimisation",
    )
    lint = parser.add_argument_group("static lint")
    lint.add_argument(
        "--lint",
        action="store_true",
        help=(
            "run the static grammar lint passes instead of the conflict "
            "explainer (see docs/LINTING.md for the rule catalog)"
        ),
    )
    lint.add_argument(
        "--lint-format",
        choices=("text", "json", "sarif"),
        default="text",
        metavar="FMT",
        help="lint output format: text, json, or sarif (default: text)",
    )
    lint.add_argument(
        "--fail-on",
        choices=("info", "warning", "error"),
        default="error",
        metavar="SEV",
        help=(
            "exit nonzero when any diagnostic is at or above this severity "
            "(default: error)"
        ),
    )
    lint.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this lint rule (repeatable)",
    )
    lint.add_argument(
        "--no-rule",
        action="append",
        metavar="ID",
        help="skip this lint rule (repeatable)",
    )
    return parser


def _run_fuzz(args: argparse.Namespace) -> int:
    from repro.verify import run_fuzz_campaign

    if args.fuzz <= 0:
        print("error: --fuzz requires a positive iteration count", file=sys.stderr)
        return 2

    def progress(done: int, total: int, report) -> None:
        if args.quiet:
            return
        stride = max(1, total // 10)
        if done % stride == 0 or done == total:
            print(
                f"  fuzz {done}/{total}: {report.conflicts} conflicts, "
                f"{report.counterexamples_validated} validated, "
                f"{len(report.fatal_failures)} fatal failures",
                flush=True,
            )

    report = run_fuzz_campaign(
        args.fuzz,
        seed=args.seed,
        progress=progress,
        shrink=not args.no_shrink,
    )
    text = report.describe()
    print(text)
    if args.fuzz_report:
        try:
            with open(args.fuzz_report, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        except OSError as error:
            print(f"error: cannot write fuzz report: {error}", file=sys.stderr)
            return 2
    return 0 if report.ok else 1


def _run_lint(args: argparse.Namespace, grammar, source_path: str | None) -> int:
    from repro.lint import LintConfig, Severity, render, run_lint

    config = LintConfig(
        enabled=frozenset(args.rule) if args.rule else None,
        disabled=frozenset(args.no_rule or ()),
    )
    try:
        report = run_lint(grammar, config=config, source_path=source_path)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    print(render(report, args.lint_format))
    threshold = Severity.parse(args.fail_on)
    return 1 if report.should_fail(threshold) else 0


def _emit_profile(args: argparse.Namespace, collector) -> None:
    """Print / write the collected profile, if profiling was requested."""
    if collector is None:
        return
    from repro.perf import metrics

    metrics.disable()
    if args.profile:
        print(collector.render())
        hotspots = collector.hotspots(5)
        if hotspots:
            print("top hotspots (exclusive time):")
            for path, exclusive, total in hotspots:
                print(f"  {path:<28} {exclusive:>9.4f}s  (inclusive {total:.4f}s)")
    if args.profile_json:
        document = json.dumps(collector.to_json(), indent=2, sort_keys=True)
        if args.profile_json == "-":
            print(document)
        else:
            try:
                with open(args.profile_json, "w", encoding="utf-8") as handle:
                    handle.write(document + "\n")
            except OSError as error:
                print(f"error: cannot write profile: {error}", file=sys.stderr)


def _install_cancel_handlers(token) -> dict | None:
    """Route SIGINT/SIGTERM into *token*; returns the displaced handlers.

    Signal handlers may only be installed from the main thread; embedded
    callers (tests driving :func:`main` from a worker thread) simply skip
    the installation and keep their own handling.
    """
    if threading.current_thread() is not threading.main_thread():
        return None
    previous: dict = {}

    def handler(signum: int, frame) -> None:
        token.cancel(f"received {signal.Signals(signum).name}")

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover — exotic platforms
            pass
    return previous


def _restore_cancel_handlers(previous: dict | None) -> None:
    for signum, handler in (previous or {}).items():
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover
            pass


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        from repro.service.app import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import campaign_main

        return campaign_main(argv[1:])
    args = build_parser().parse_args(argv)

    collector = None
    if args.profile or args.profile_json:
        from repro.perf import metrics

        collector = metrics.enable()

    if args.fuzz is not None:
        return _run_fuzz(args)

    if args.list_corpus:
        from repro.corpus import all_specs

        for spec in all_specs():
            marker = "ambiguous" if spec.ambiguous else "unambiguous"
            print(f"{spec.name:16} [{spec.category}] {marker}  {spec.notes}")
        return 0

    if args.corpus:
        from repro.corpus import load as load_corpus

        try:
            grammar = load_corpus(args.corpus)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif args.grammar:
        try:
            grammar = load_grammar_file(args.grammar)
        except (OSError, GrammarError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        print("error: provide a grammar file or --corpus NAME", file=sys.stderr)
        return 2

    if args.lint:
        return _run_lint(args, grammar, args.grammar if not args.corpus else None)

    if args.metrics:
        from repro.grammar import GrammarMetrics

        print(f"metrics: {GrammarMetrics.of(grammar).describe()}")

    try:
        algorithm = normalize_algorithm(
            args.table_algorithm
            if args.table_algorithm is not None
            else grammar.table_algorithm
        )
    except GrammarError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = None
    if args.cache_dir is not None:
        from repro.perf.cache import AutomatonCache, build_automaton_cached

        cache = AutomatonCache(args.cache_dir or None)
        automaton = build_automaton_cached(grammar, cache, algorithm)
    else:
        automaton = build_automaton(grammar, algorithm)
    if args.states:
        print(automaton)

    conflicts = automaton.conflicts
    if not conflicts:
        label = _ALGORITHM_LABELS.get(algorithm, algorithm)
        print(f"grammar {grammar.name!r}: no conflicts — {label}")
        if args.robust_report:
            from repro.core import FinderSummary

            # A conflict-free grammar still gets a (vacuously complete)
            # robust report, so report consumers never miss a file.
            status = _write_robust_report(
                args.robust_report, FinderSummary(grammar_name=grammar.name)
            )
            if status is not None:
                return status
        _emit_profile(args, collector)
        return 0

    finder_kwargs = dict(
        time_limit=args.time_limit,
        cumulative_limit=args.cumulative_limit,
        extended_search=args.extendedsearch,
        verify=not args.no_verify,
        max_configurations=args.max_configurations,
        retry_timed_out=args.retry_timed_out,
    )
    from repro.robust.budget import CancellationToken

    token = CancellationToken()
    handlers = _install_cancel_handlers(token)
    started = time.monotonic()
    try:
        if args.jobs is not None and args.jobs != 1:
            from repro.perf.parallel import explain_all_parallel

            summary = explain_all_parallel(
                automaton, jobs=args.jobs, **finder_kwargs
            )
        else:
            summary = CounterexampleFinder(
                automaton, token=token, **finder_kwargs
            ).explain_all()
    finally:
        _restore_cancel_handlers(handlers)
    elapsed = time.monotonic() - started

    if args.provenance:
        from repro.automaton import annotate_provenance

        annotate_provenance(summary.reports, automaton)

    if args.ambiguity:
        from repro.perf.cache import analyze_conflicts_cached

        mapping = analyze_conflicts_cached(automaton, cache)
        for report in summary.reports:
            ambiguity = mapping.get(report.conflict)
            if ambiguity is not None:
                report.ambiguity = ambiguity

    if not args.quiet:
        for report in summary.reports:
            print(safe_format_report(report))
            print()
    extras = ""
    if summary.num_stub:
        extras += f", {summary.num_stub} stubs"
    if summary.num_degraded:
        extras += f", {summary.num_degraded} degraded"
    if summary.num_retried:
        extras += (
            f", {summary.num_retry_upgraded}/{summary.num_retried} "
            "retries upgraded"
        )
    print(
        f"grammar {grammar.name!r}: {summary.num_conflicts} conflicts — "
        f"{summary.num_unifying} unifying, {summary.num_nonunifying} nonunifying, "
        f"{summary.num_timeout} timed out{extras} ({elapsed:.2f}s)"
    )

    _emit_profile(args, collector)
    if args.robust_report:
        # The robust contract: degradation is reported in-band, so the
        # exit code tracks report *completeness*, not conflict presence.
        # An interrupted campaign still flushes its (partial) report
        # before reporting the conventional 130.
        status = _write_robust_report(args.robust_report, summary)
        if status is not None:
            return status
        if token.cancelled:
            print(f"interrupted: {token.reason}", file=sys.stderr)
            return 130
        return 0 if summary.complete else 1
    if token.cancelled:
        print(f"interrupted: {token.reason}", file=sys.stderr)
        return 130
    return 1


def _write_robust_report(destination: str, summary) -> int | None:
    """Write the robust report; returns an exit code only on I/O failure."""
    document = json.dumps(summary_to_json(summary), indent=2)
    if destination == "-":
        print(document)
        return None
    try:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    except OSError as error:
        print(f"error: cannot write robust report: {error}", file=sys.stderr)
        return 2
    return None


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
