"""Lint engine: rule selection, execution, and the aggregate report.

:func:`run_lint` is the single entry point used by the CLI, the fuzz
harness, and the tests. Pass crashes are *not* swallowed here — the fuzz
harness relies on them propagating so a broken rule is classified as a
campaign failure rather than a silently empty report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automaton.lalr import LALRAutomaton
from repro.grammar import Grammar
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintPass, all_rules, get_rule


@dataclass(frozen=True)
class LintConfig:
    """Which rules run and how the derived artifacts are bounded.

    Attributes:
        enabled: Explicit allow-list of rule ids (``None`` means all
            registered rules).
        disabled: Rule ids to skip (applied after *enabled*).
        max_lr1_states: Cap on the canonical LR(1) construction used by
            the ``lr-class`` rule.
    """

    enabled: frozenset[str] | None = None
    disabled: frozenset[str] = frozenset()
    max_lr1_states: int = 20_000

    def selected_rules(self) -> list[LintPass]:
        """Resolve the configuration to concrete passes, in catalog order.

        Raises :class:`KeyError` for unknown rule ids so typos surface
        instead of silently linting nothing.
        """
        for rule_id in list(self.enabled or ()) + list(self.disabled):
            get_rule(rule_id)  # raises KeyError with the known-id list
        selected = []
        for rule in all_rules():
            if self.enabled is not None and rule.rule_id not in self.enabled:
                continue
            if rule.rule_id in self.disabled:
                continue
            selected.append(rule)
        return selected


@dataclass
class LintReport:
    """All diagnostics of one lint run over one grammar."""

    grammar_name: str
    source_path: str | None
    rules_run: list[str]
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """Diagnostic counts keyed by severity value."""
        counts = {severity.value: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.value] += 1
        return counts

    def worst(self) -> Severity | None:
        """The highest severity present, or ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=lambda s: s.rank)

    def should_fail(self, threshold: Severity) -> bool:
        """Whether any diagnostic is at or above *threshold*."""
        return any(d.severity.at_least(threshold) for d in self.diagnostics)

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]


def run_lint(
    grammar: Grammar,
    config: LintConfig | None = None,
    source_path: str | None = None,
    automaton: LALRAutomaton | None = None,
) -> LintReport:
    """Run the selected lint passes over *grammar*.

    *automaton* lets callers that already built the LALR automaton (the
    CLI's conflict path, the fuzz harness) share it instead of paying for
    a second construction. Pass crashes propagate to the caller.
    """
    config = config if config is not None else LintConfig()
    rules = config.selected_rules()
    ctx = LintContext(
        grammar,
        source_path=source_path,
        automaton=automaton,
        max_lr1_states=config.max_lr1_states,
    )
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        diagnostics.extend(rule.run(ctx))
    diagnostics.sort(
        key=lambda d: (
            d.span.line if d.span.line is not None else 1_000_000_000,
            d.rule_id,
            d.message,
        )
    )
    return LintReport(
        grammar_name=grammar.name,
        source_path=source_path,
        rules_run=[rule.rule_id for rule in rules],
        diagnostics=diagnostics,
    )
