"""Shared, lazily computed artifacts for lint passes.

Every pass receives one :class:`LintContext`. Expensive artifacts — the
grammar analysis, the LALR automaton, parse tables, the SLR conflict
count, the canonical LR(1) automaton — are computed at most once per lint
run and shared across passes. The canonical LR(1) construction is capped
(it can be exponential); passes must treat :attr:`LintContext.lr1` being
``None`` with :attr:`lr1_capped` set as "unknown", not "clean".
"""

from __future__ import annotations

from functools import cached_property

from repro.automaton.lalr import LALRAutomaton, build_lalr
from repro.automaton.lr1 import LR1Automaton
from repro.automaton.slr import count_slr_conflicts
from repro.grammar import Grammar, GrammarAnalysis
from repro.lint.diagnostics import SourceSpan


class LintContext:
    """Everything a lint pass may consult, computed lazily and shared."""

    def __init__(
        self,
        grammar: Grammar,
        source_path: str | None = None,
        automaton: LALRAutomaton | None = None,
        max_lr1_states: int = 20_000,
    ) -> None:
        self.grammar = grammar
        self.source_path = source_path
        self.max_lr1_states = max_lr1_states
        self._automaton = automaton
        self.lr1_capped = False

    # ------------------------------------------------------------------ #

    @cached_property
    def analysis(self) -> GrammarAnalysis:
        return GrammarAnalysis(self.grammar)

    @property
    def automaton(self) -> LALRAutomaton:
        if self._automaton is None:
            self._automaton = build_lalr(self.grammar)
        return self._automaton

    @property
    def tables(self):
        return self.automaton.tables

    @property
    def conflicts(self):
        return self.automaton.conflicts

    @cached_property
    def slr_conflict_count(self) -> int:
        return count_slr_conflicts(self.automaton.lr0, self.automaton.analysis)

    @cached_property
    def lr1(self) -> LR1Automaton | None:
        """The canonical LR(1) automaton, or ``None`` when capped."""
        try:
            return LR1Automaton(self.grammar, max_states=self.max_lr1_states)
        except RuntimeError:
            self.lr1_capped = True
            return None

    @cached_property
    def ambiguity_verdicts(self):
        """Per-conflict SR-walk ambiguity verdicts (empty if conflict-free)."""
        from repro.analysis import analyze_conflicts

        return analyze_conflicts(self.automaton)

    @cached_property
    def provenance(self):
        """Per-conflict genuine/merge-artifact classification."""
        from repro.automaton.ielr import classify_conflicts

        return classify_conflicts(
            self.automaton, max_lr1_states=self.max_lr1_states
        )

    # ------------------------------------------------------------------ #
    # Span helpers

    def production_span(self, production) -> SourceSpan:
        """Span of one production (unknown for programmatic grammars)."""
        return SourceSpan(line=production.line)

    def nonterminal_span(self, nonterminal) -> SourceSpan:
        """Span of the first production defining *nonterminal*."""
        for production in self.grammar.productions_of(nonterminal):
            if production.line is not None:
                return SourceSpan(line=production.line)
        return SourceSpan()

    def precedence_span(self, terminal) -> SourceSpan:
        """Span of *terminal*'s precedence declaration."""
        return SourceSpan(line=self.grammar.precedence.declaration_line(terminal))
