"""Render a :class:`~repro.lint.engine.LintReport` as text, JSON, or SARIF.

The SARIF renderer targets SARIF 2.1.0 and emits the minimal valid
document CI annotators need: ``$schema``, ``version``, one run with tool
driver metadata, the executed rule catalog, and one result per
diagnostic with a physical location when the source line is known.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import Severity
from repro.lint.engine import LintReport
from repro.lint.registry import get_rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://github.com/paper-repro/conflicts"


def render_text(report: LintReport) -> str:
    """One ``source:line: severity[rule]: message`` line per diagnostic."""
    label = report.source_path or f"<{report.grammar_name}>"
    lines: list[str] = []
    for diagnostic in report.diagnostics:
        location = label
        if diagnostic.span.known:
            location += f":{diagnostic.span.describe()}"
        lines.append(
            f"{location}: {diagnostic.severity.value}"
            f"[{diagnostic.rule_id}]: {diagnostic.message}"
        )
        if diagnostic.fix_hint:
            lines.append(f"    hint: {diagnostic.fix_hint}")
    counts = report.counts()
    lines.append(
        f"lint: {counts[Severity.ERROR.value]} errors, "
        f"{counts[Severity.WARNING.value]} warnings, "
        f"{counts[Severity.INFO.value]} notes "
        f"({len(report.rules_run)} rules on grammar {report.grammar_name!r})"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine-readable JSON (not SARIF; see :func:`render_sarif`)."""
    payload = {
        "grammar": report.grammar_name,
        "source": report.source_path,
        "rules": report.rules_run,
        "summary": report.counts(),
        "diagnostics": [d.as_dict() for d in report.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_sarif(report: LintReport) -> str:
    """A SARIF 2.1.0 document with one result per diagnostic."""
    rule_ids = list(report.rules_run)
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    rules = []
    for rule_id in rule_ids:
        rule = get_rule(rule_id)
        rules.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.title or rule.rule_id},
                "fullDescription": {"text": rule.rationale or rule.title},
                "defaultConfiguration": {"level": rule.severity.sarif_level},
            }
        )

    artifact_uri = report.source_path or f"{report.grammar_name}.y"
    results = []
    for diagnostic in report.diagnostics:
        result: dict = {
            "ruleId": diagnostic.rule_id,
            "ruleIndex": rule_index.get(diagnostic.rule_id, -1),
            "level": diagnostic.severity.sarif_level,
            "message": {"text": diagnostic.message},
        }
        location: dict = {
            "physicalLocation": {
                "artifactLocation": {"uri": artifact_uri},
            }
        }
        if diagnostic.span.known:
            region = {"startLine": diagnostic.span.line}
            if diagnostic.span.end_line != diagnostic.span.line:
                region["endLine"] = diagnostic.span.end_line
            location["physicalLocation"]["region"] = region
        result["locations"] = [location]
        if diagnostic.fix_hint:
            result["properties"] = {"hint": diagnostic.fix_hint}
        results.append(result)

    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def render(report: LintReport, fmt: str) -> str:
    """Dispatch to one of :data:`RENDERERS`; raises ``KeyError`` on typos."""
    try:
        renderer = RENDERERS[fmt]
    except KeyError:
        known = ", ".join(sorted(RENDERERS))
        raise KeyError(f"unknown lint format {fmt!r}; known: {known}") from None
    return renderer(report)
