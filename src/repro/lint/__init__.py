"""Static grammar diagnostics: the pass-based lint framework.

Quick start::

    from repro.grammar import load_grammar
    from repro.lint import run_lint, render_text

    report = run_lint(load_grammar(text))
    print(render_text(report))

See ``docs/LINTING.md`` for the rule catalog and
``repro-conflicts --lint`` for the CLI surface.
"""

from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity, SourceSpan
from repro.lint.engine import LintConfig, LintReport, run_lint
from repro.lint.registry import LintPass, all_rules, get_rule, register, rule_ids
from repro.lint.render import (
    RENDERERS,
    render,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintContext",
    "LintPass",
    "LintReport",
    "RENDERERS",
    "Severity",
    "SourceSpan",
    "all_rules",
    "get_rule",
    "register",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "run_lint",
]
