"""The built-in lint rule catalog.

Each rule is a registered :class:`~repro.lint.registry.LintPass` built on
the existing analyses (:mod:`repro.grammar.transforms`,
:mod:`repro.grammar.analysis`, the automaton layers). Rule ids are stable
API; see ``docs/LINTING.md`` for the user-facing catalog.

The two deeper pattern rules follow the related work cited in the
roadmap: dangling-else shapes are the canonical ambiguity walked by
SR-automaton methods (Quaglia), and the operator-grammar patterns follow
the deep-priority-conflict taxonomy of de Souza Amorim et al.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis import AmbiguityVerdict
from repro.automaton.conflicts import ConflictKind
from repro.automaton.ielr import ProvenanceVerdict
from repro.grammar import (
    Nonterminal,
    Production,
    Terminal,
    left_recursive_nonterminals,
    unit_productions,
)
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity, SourceSpan
from repro.lint.registry import LintPass, register


def _sorted_nonterminals(symbols: Iterable[Nonterminal]) -> list[Nonterminal]:
    return sorted(symbols, key=str)


@register
class UnreachableNonterminal(LintPass):
    rule_id = "unreachable-nonterminal"
    severity = Severity.WARNING
    title = "Nonterminal unreachable from the start symbol"
    rationale = (
        "Unreachable rules are dead weight: they bloat the automaton and "
        "usually indicate a missing reference or a stale start symbol."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for nonterminal in _sorted_nonterminals(
            ctx.grammar.unreachable_nonterminals
        ):
            yield self.diagnostic(
                f"nonterminal {nonterminal} is unreachable from start symbol "
                f"{ctx.grammar.start}",
                span=ctx.nonterminal_span(nonterminal),
                fix_hint=(
                    f"reference {nonterminal} from a reachable rule or delete "
                    "its productions"
                ),
            )


@register
class NonproductiveNonterminal(LintPass):
    rule_id = "nonproductive-nonterminal"
    severity = Severity.ERROR
    title = "Nonterminal derives no terminal string"
    rationale = (
        "A nonproductive nonterminal can never complete a parse; any rule "
        "that uses it is unsatisfiable, silently shrinking the language."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for nonterminal in _sorted_nonterminals(
            ctx.grammar.nonproductive_nonterminals
        ):
            yield self.diagnostic(
                f"nonterminal {nonterminal} cannot derive any terminal string",
                span=ctx.nonterminal_span(nonterminal),
                fix_hint=f"add a base-case production for {nonterminal}",
            )


@register
class DerivationCycle(LintPass):
    rule_id = "derivation-cycle"
    severity = Severity.ERROR
    title = "Derivation cycle A =>+ A"
    rationale = (
        "A nonterminal that derives itself makes the grammar infinitely "
        "ambiguous as soon as it participates in a sentence."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        grammar = ctx.grammar
        analysis = ctx.analysis
        # A =>1 B when A -> alpha B beta with alpha and beta nullable
        # (the same edge relation as transforms.has_derivation_cycles,
        # but we need the cycle members, not just existence).
        edges: dict[Nonterminal, set[Nonterminal]] = {
            nonterminal: set() for nonterminal in grammar.nonterminals
        }
        for production in grammar.productions:
            for index, symbol in enumerate(production.rhs):
                if not symbol.is_nonterminal:
                    continue
                rest_nullable = all(
                    other.is_nonterminal and other in analysis.nullable
                    for position, other in enumerate(production.rhs)
                    if position != index
                )
                if rest_nullable:
                    edges[production.lhs].add(symbol)  # type: ignore[arg-type]

        closure: dict[Nonterminal, set[Nonterminal]] = {}
        for origin in edges:
            seen: set[Nonterminal] = set()
            frontier = list(edges[origin])
            while frontier:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(edges[node])
            closure[origin] = seen

        cyclic = {n for n in edges if n in closure[n]}
        reported: set[Nonterminal] = set()
        for nonterminal in _sorted_nonterminals(cyclic):
            if nonterminal in reported:
                continue
            component = {
                other
                for other in cyclic
                if other == nonterminal
                or (other in closure[nonterminal] and nonterminal in closure[other])
            }
            reported |= component
            members = ", ".join(str(n) for n in _sorted_nonterminals(component))
            yield self.diagnostic(
                f"derivation cycle through {members}: the grammar is "
                "infinitely ambiguous wherever the cycle is reachable",
                span=ctx.nonterminal_span(nonterminal),
                fix_hint="remove or guard the unit/epsilon productions forming the cycle",
            )


@register
class UnitProduction(LintPass):
    rule_id = "unit-production"
    severity = Severity.INFO
    title = "Unit production A -> B"
    rationale = (
        "Unit productions are legal but add automaton states and reduce "
        "steps; chains of them often hide derivation cycles."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for production in unit_productions(ctx.grammar):
            yield self.diagnostic(
                f"unit production {production}",
                span=ctx.production_span(production),
            )


@register
class LeftRecursion(LintPass):
    rule_id = "left-recursion"
    severity = Severity.INFO
    title = "Left-recursive nonterminal"
    rationale = (
        "Left recursion is idiomatic for LR grammars but fatal for LL or "
        "recursive-descent consumers of the same grammar; the report makes "
        "the dependency explicit."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for nonterminal in _sorted_nonterminals(
            left_recursive_nonterminals(ctx.grammar)
        ):
            if nonterminal == ctx.grammar.augmented_start:
                continue
            yield self.diagnostic(
                f"nonterminal {nonterminal} is left-recursive "
                "(fine for LR parsing; fatal for LL consumers)",
                span=ctx.nonterminal_span(nonterminal),
            )


@register
class UnusedPrecedence(LintPass):
    rule_id = "unused-precedence"
    severity = Severity.WARNING
    title = "Precedence declaration never used"
    rationale = (
        "%left/%right/%nonassoc lines that never influence the tables are "
        "misleading: readers assume they resolve a conflict somewhere."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        grammar = ctx.grammar
        used_in_rules = set(grammar.terminals)
        overrides = {
            production.prec_override
            for production in grammar.user_productions()
            if production.prec_override is not None
        }
        conflict_terminals = {conflict.terminal for conflict in ctx.conflicts}
        consulted = ctx.tables.used_precedence
        for terminal in grammar.precedence.declared_terminals():
            if terminal not in used_in_rules and terminal not in overrides:
                yield self.diagnostic(
                    f"precedence declared for {terminal}, which appears in no "
                    "production",
                    span=ctx.precedence_span(terminal),
                    fix_hint=f"delete the declaration or use {terminal} in a rule",
                )
            elif terminal not in consulted and terminal not in conflict_terminals:
                yield self.diagnostic(
                    f"precedence declaration for {terminal} never participates "
                    "in conflict resolution (conflict-irrelevant)",
                    span=ctx.precedence_span(terminal),
                    severity=Severity.INFO,
                    fix_hint="the declaration can be removed without changing the tables",
                )


@register
class UnusedToken(LintPass):
    rule_id = "unused-token"
    severity = Severity.WARNING
    title = "%token declared but never used"
    rationale = (
        "A declared token that no production consumes is either dead "
        "lexer surface or a typo for the name actually used."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        grammar = ctx.grammar
        nonterminal_names = {str(n) for n in grammar.nonterminals}
        terminal_names = {str(t) for t in grammar.terminals}
        for name, line in grammar.token_declarations.items():
            span = SourceSpan(line=line)
            if name in nonterminal_names:
                yield self.diagnostic(
                    f"{name} is declared with %token but defined as a nonterminal",
                    span=span,
                    fix_hint=f"drop the %token declaration or rename the rule {name}",
                )
            elif name not in terminal_names:
                yield self.diagnostic(
                    f"token {name} is declared but never used in any production",
                    span=span,
                    fix_hint=f"delete the declaration or reference {name} in a rule",
                )


@register
class NullableOverlap(LintPass):
    rule_id = "nullable-overlap"
    severity = Severity.WARNING
    title = "Ambiguity-prone nullable overlap"
    rationale = (
        "Two epsilon-deriving alternatives make every empty derivation "
        "ambiguous; adjacent nullable symbols with overlapping FIRST sets "
        "let the same token string split in multiple ways."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        grammar = ctx.grammar
        analysis = ctx.analysis
        for nonterminal in grammar.nonterminals:
            if nonterminal == grammar.augmented_start:
                continue
            nullable_alternatives = [
                production
                for production in grammar.productions_of(nonterminal)
                if analysis.is_nullable_sequence(production.rhs)
            ]
            if len(nullable_alternatives) >= 2:
                yield self.diagnostic(
                    f"nonterminal {nonterminal} has "
                    f"{len(nullable_alternatives)} alternatives that derive "
                    "the empty string; the empty derivation is ambiguous",
                    span=ctx.production_span(nullable_alternatives[1]),
                    fix_hint="keep a single epsilon alternative",
                )
        for production in grammar.user_productions():
            for left, right in zip(production.rhs, production.rhs[1:]):
                if not (left.is_nonterminal and right.is_nonterminal):
                    continue
                if left not in analysis.nullable or right not in analysis.nullable:
                    continue
                overlap = analysis.first[left] & analysis.first[right]
                if overlap:
                    shared = ", ".join(sorted(str(t) for t in overlap))
                    yield self.diagnostic(
                        f"adjacent nullable nonterminals {left} {right} in "
                        f"'{production}' have overlapping FIRST sets "
                        f"({shared}); token runs can split ambiguously",
                        span=ctx.production_span(production),
                        fix_hint="separate the symbols with a delimiter or make one non-nullable",
                    )


@register
class DanglingElse(LintPass):
    rule_id = "dangling-else"
    severity = Severity.WARNING
    title = "Dangling-else ambiguity pattern"
    rationale = (
        "One alternative is a proper prefix of another and the "
        "continuation terminal can also follow the prefix — the classic "
        "shift/reduce ambiguity (if/then vs if/then/else)."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        grammar = ctx.grammar
        analysis = ctx.analysis
        for nonterminal in grammar.nonterminals:
            if nonterminal == grammar.augmented_start:
                continue
            productions = grammar.productions_of(nonterminal)
            for shorter in productions:
                if not shorter.rhs:
                    continue
                tail = shorter.rhs[-1]
                if not tail.is_nonterminal:
                    continue
                for longer in productions:
                    if len(longer.rhs) <= len(shorter.rhs):
                        continue
                    if longer.rhs[: len(shorter.rhs)] != shorter.rhs:
                        continue
                    continuation = longer.rhs[len(shorter.rhs)]
                    if not continuation.is_terminal:
                        continue
                    assert isinstance(continuation, Terminal)
                    assert isinstance(tail, Nonterminal)
                    if continuation in analysis.follow[tail]:
                        yield self.diagnostic(
                            f"dangling-{continuation} pattern: '{shorter}' is a "
                            f"proper prefix of '{longer}' and {continuation} "
                            f"can follow {tail}",
                            span=ctx.production_span(longer),
                            fix_hint=(
                                f"bind {continuation} with precedence "
                                f"(%prec/%right) or split {nonterminal} into "
                                "matched/unmatched forms"
                            ),
                        )


def _operator_shapes(
    grammar, nonterminal: Nonterminal
) -> tuple[list[tuple[Production, Terminal]], list[tuple[Production, Terminal]], list[tuple[Production, Terminal]]]:
    """Classify *nonterminal*'s productions into (infix, prefix, postfix) ops."""
    infix: list[tuple[Production, Terminal]] = []
    prefix: list[tuple[Production, Terminal]] = []
    postfix: list[tuple[Production, Terminal]] = []
    for production in grammar.productions_of(nonterminal):
        rhs = production.rhs
        if (
            len(rhs) == 3
            and rhs[0] == nonterminal
            and rhs[2] == nonterminal
            and rhs[1].is_terminal
        ):
            infix.append((production, rhs[1]))  # type: ignore[arg-type]
        elif len(rhs) == 2 and rhs[0].is_terminal and rhs[1] == nonterminal:
            prefix.append((production, rhs[0]))  # type: ignore[arg-type]
        elif len(rhs) == 2 and rhs[0] == nonterminal and rhs[1].is_terminal:
            postfix.append((production, rhs[1]))  # type: ignore[arg-type]
    return infix, prefix, postfix


@register
class MissingOperatorPrecedence(LintPass):
    rule_id = "missing-operator-precedence"
    severity = Severity.WARNING
    title = "Infix operator without a precedence declaration"
    rationale = (
        "E -> E op E is ambiguous on its own; without %left/%right/%nonassoc "
        "the conflict falls back to the yacc shift default silently."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        grammar = ctx.grammar
        for nonterminal in grammar.nonterminals:
            if nonterminal == grammar.augmented_start:
                continue
            infix, _, _ = _operator_shapes(grammar, nonterminal)
            for production, operator in infix:
                effective = grammar.precedence.production_level(
                    production.rhs, production.prec_override
                )
                if effective is None:
                    yield self.diagnostic(
                        f"binary operator {operator} in '{production}' has no "
                        "precedence declaration; associativity is ambiguous",
                        span=ctx.production_span(production),
                        fix_hint=f"declare %left {operator} (or %right/%nonassoc)",
                    )


@register
class DeepPriorityConflict(LintPass):
    rule_id = "deep-priority-conflict"
    severity = Severity.WARNING
    title = "Deep priority conflict pattern in an operator grammar"
    rationale = (
        "A low-priority prefix (or postfix) operator nested under a "
        "higher-priority infix operator conflicts at arbitrary depth — the "
        "'dangling prefix/postfix' shapes of de Souza Amorim et al., which "
        "shallow per-state precedence resolution does not fully decide."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        grammar = ctx.grammar
        precedence = grammar.precedence
        for nonterminal in grammar.nonterminals:
            if nonterminal == grammar.augmented_start:
                continue
            infix, prefix, postfix = _operator_shapes(grammar, nonterminal)
            infix_levels = [
                (production, operator, precedence.production_level(production.rhs, production.prec_override))
                for production, operator in infix
            ]
            for unary, kind_name in ((prefix, "prefix"), (postfix, "postfix")):
                for production, operator in unary:
                    unary_level = precedence.production_level(
                        production.rhs, production.prec_override
                    )
                    if unary_level is None:
                        continue
                    for _, infix_operator, infix_level in infix_levels:
                        if infix_level is None:
                            continue
                        if infix_level.rank > unary_level.rank:
                            yield self.diagnostic(
                                f"deep priority conflict pattern: "
                                f"low-priority {kind_name} operator {operator} "
                                f"can nest under higher-priority infix "
                                f"{infix_operator} (dangling-{kind_name} shape)",
                                span=ctx.production_span(production),
                                fix_hint=(
                                    f"raise the precedence of {operator} or add "
                                    "explicit grouping productions"
                                ),
                            )


@register
class ProvedAmbiguous(LintPass):
    rule_id = "proved-ambiguous"
    severity = Severity.ERROR
    title = "Conflict proved to be genuine ambiguity"
    rationale = (
        "A bounded SR-automaton pair walk found one sentence with two "
        "distinct derivations through this conflict: the grammar is "
        "ambiguous, not merely hard for the table construction, and no "
        "stronger construction or precedence shuffle can fix it without "
        "changing the productions."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for conflict, verdict in ctx.ambiguity_verdicts.items():
            if verdict.verdict is not AmbiguityVerdict.AMBIGUOUS:
                continue
            witness = " ".join(t.name for t in verdict.witness or ())
            yield self.diagnostic(
                f"{conflict.kind.value} conflict in state "
                f"{conflict.state_id} on {conflict.terminal} is a proved "
                f"ambiguity: sentence {witness!r} has two distinct "
                "derivations",
                span=ctx.production_span(conflict.reduce_item.production),
                fix_hint=(
                    "restructure the conflicting productions (or add "
                    "precedence to pick one reading) so only a single "
                    "derivation survives"
                ),
            )


@register
class PotentiallyAmbiguous(LintPass):
    rule_id = "potentially-ambiguous"
    severity = Severity.INFO
    title = "Conflict not proved harmless within the walk budget"
    rationale = (
        "The SR pair walk neither proved this conflict unambiguous nor "
        "found a two-derivation witness before its budget ran out; the "
        "conflict deserves a human look (or a larger walk budget)."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for conflict, verdict in ctx.ambiguity_verdicts.items():
            if verdict.verdict is not AmbiguityVerdict.INCONCLUSIVE:
                continue
            yield self.diagnostic(
                f"{conflict.kind.value} conflict in state "
                f"{conflict.state_id} on {conflict.terminal} is "
                f"potentially ambiguous ({verdict.detail})",
                span=ctx.production_span(conflict.reduce_item.production),
                fix_hint=(
                    "run the counterexample finder for an explanation, or "
                    "rerun the walk with a larger node budget"
                ),
            )


@register
class LrClassSummary(LintPass):
    rule_id = "lr-class"
    severity = Severity.INFO
    title = "LR-class and conflict-density summary"
    rationale = (
        "States where the grammar sits in the SLR(1) ⊂ LALR(1) ⊂ LR(1) "
        "hierarchy and how densely conflicted the automaton is."
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        grammar = ctx.grammar
        states = len(ctx.automaton.states)
        conflicts = ctx.conflicts
        span = ctx.nonterminal_span(grammar.start)
        if not conflicts:
            if ctx.slr_conflict_count == 0:
                message = (
                    f"grammar is SLR(1) (hence LALR(1) and LR(1)); "
                    f"{states} states, no conflicts"
                )
            else:
                message = (
                    f"grammar is LALR(1) but not SLR(1) (SLR would leave "
                    f"{ctx.slr_conflict_count} conflicted entries); "
                    f"{states} states"
                )
            yield self.diagnostic(message, span=span)
            return

        shift_reduce = sum(
            1 for c in conflicts if c.kind is ConflictKind.SHIFT_REDUCE
        )
        reduce_reduce = len(conflicts) - shift_reduce
        density = len(conflicts) / states
        detail = (
            f"{len(conflicts)} LALR conflicts ({shift_reduce} shift/reduce, "
            f"{reduce_reduce} reduce/reduce) over {states} states "
            f"(density {density:.2f} conflicts/state)"
        )
        lr1 = ctx.lr1
        if lr1 is not None and not lr1.has_conflicts():
            message = f"grammar is LR(1) but not LALR(1): {detail}"
            provenance = ctx.provenance
            artifacts = sum(
                1
                for entry in provenance.values()
                if entry.verdict is ProvenanceVerdict.MERGE_ARTIFACT
            )
            if provenance and artifacts == len(provenance):
                message += (
                    f"; all {artifacts} conflicts are LALR merge artifacts "
                    "— declare %algorithm ielr (or lr1) to build "
                    "conflict-free tables for this grammar"
                )
        elif lr1 is None:
            message = (
                f"grammar is not LALR(1): {detail}; canonical LR(1) "
                f"construction capped at {ctx.max_lr1_states} states, "
                "LR(1) membership unknown"
            )
        else:
            message = f"grammar is not LR(1): {detail}"
        yield self.diagnostic(
            message,
            span=span,
            severity=Severity.WARNING,
            fix_hint="run the counterexample finder for per-conflict explanations",
        )

