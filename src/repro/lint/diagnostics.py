"""The diagnostic model: severities, source spans, and diagnostics.

A :class:`Diagnostic` is one finding of one lint pass: a stable rule id,
a :class:`Severity`, a human message, an optional :class:`SourceSpan`
pointing at the offending grammar line, and an optional fix-it hint.
Diagnostics are plain immutable values; rendering to text, JSON, or
SARIF lives in :mod:`repro.lint.render`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How serious a finding is. Ordered: info < warning < error."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _RANKS[self]

    def at_least(self, threshold: "Severity") -> bool:
        """Whether this severity meets or exceeds *threshold*."""
        return self.rank >= threshold.rank

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` value for this severity."""
        return "note" if self is Severity.INFO else self.value

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.lower())
        except ValueError:
            known = ", ".join(s.value for s in cls)
            raise ValueError(f"unknown severity {text!r}; known: {known}") from None


_RANKS = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class SourceSpan:
    """A region of the grammar source, currently line-granular.

    ``line`` is 1-based; ``None`` means the finding has no single source
    location (e.g. a whole-grammar summary). ``end_line`` defaults to
    ``line`` for single-line spans.
    """

    line: int | None = None
    end_line: int | None = None

    def __post_init__(self) -> None:
        if self.end_line is None and self.line is not None:
            object.__setattr__(self, "end_line", self.line)

    @property
    def known(self) -> bool:
        return self.line is not None

    def describe(self) -> str:
        if self.line is None:
            return ""
        if self.end_line is not None and self.end_line != self.line:
            return f"{self.line}-{self.end_line}"
        return str(self.line)


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        rule_id: Stable kebab-case id of the pass that produced it.
        severity: info, warning, or error.
        message: One-line human-readable description.
        span: Where in the grammar source the finding points.
        fix_hint: Optional actionable suggestion.
    """

    rule_id: str
    severity: Severity
    message: str
    span: SourceSpan = SourceSpan()
    fix_hint: str | None = None

    def as_dict(self) -> dict:
        """JSON-ready dictionary form (used by the JSON renderer)."""
        payload: dict = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.span.known:
            payload["line"] = self.span.line
            if self.span.end_line != self.span.line:
                payload["endLine"] = self.span.end_line
        if self.fix_hint is not None:
            payload["hint"] = self.fix_hint
        return payload

    def __str__(self) -> str:
        location = f":{self.span.describe()}" if self.span.known else ""
        return f"{location} {self.severity.value}[{self.rule_id}]: {self.message}".strip()
