"""The lint-pass base class and rule registry.

A pass subclasses :class:`LintPass`, declares its stable ``rule_id``,
default severity, and catalog text, and implements :meth:`LintPass.run`.
Decorating the class with :func:`register` adds a singleton instance to
the global registry that the engine and CLI consult. Rule ids are stable
API: renaming one breaks ``--rule``/``--no-rule`` invocations and SARIF
baselines.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Severity, SourceSpan


class LintPass(abc.ABC):
    """One static-diagnostic rule.

    Class attributes:
        rule_id: Stable kebab-case identifier (e.g. ``unreachable-nonterminal``).
        severity: Default severity of this pass's diagnostics.
        title: Short human title for catalogs and SARIF rule metadata.
        rationale: Why the finding matters (one or two sentences).
    """

    rule_id: str = ""
    severity: Severity = Severity.WARNING
    title: str = ""
    rationale: str = ""

    @abc.abstractmethod
    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        """Yield diagnostics for *ctx*'s grammar."""

    # ------------------------------------------------------------------ #

    def diagnostic(
        self,
        message: str,
        span: SourceSpan | None = None,
        severity: Severity | None = None,
        fix_hint: str | None = None,
    ) -> Diagnostic:
        """Build a diagnostic carrying this pass's id and default severity."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=severity if severity is not None else self.severity,
            message=message,
            span=span if span is not None else SourceSpan(),
            fix_hint=fix_hint,
        )


_REGISTRY: dict[str, LintPass] = {}


def register(cls: type[LintPass]) -> type[LintPass]:
    """Class decorator: instantiate *cls* and add it to the registry."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"lint pass {cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {instance.rule_id!r}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def _ensure_loaded() -> None:
    """Import the rule modules so their registrations run."""
    from repro.lint import rules  # noqa: F401


def all_rules() -> list[LintPass]:
    """Every registered pass, in registration (catalog) order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def get_rule(rule_id: str) -> LintPass:
    """Look up one pass by id; raises :class:`KeyError` with known ids."""
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"no lint rule {rule_id!r}; known: {known}") from None


def rule_ids() -> list[str]:
    """All registered rule ids, in catalog order."""
    return [rule.rule_id for rule in all_rules()]
