"""Conflict-injection helpers for the BV10-style grammars.

Basten & Vinju (2010) built their benchmark by injecting defects into
correct grammars for mainstream languages. The same defect classes are
reproduced here as small text-level transformations over our base
grammars:

* :func:`add_rules` — append extra productions (e.g. a collapsed
  ambiguous expression rule, or a duplicate derivation path);
* :func:`drop_directive` — remove a precedence declaration, reviving the
  conflicts it silenced (the classic dangling-else and operator cases);
* :func:`replace_rule` — swap one rule body for another (e.g. make a
  separator optional, the nullable-production defect that produces
  Java.2's conflict explosion).
"""

from __future__ import annotations

from repro.grammar import Grammar, load_grammar


def add_rules(base_text: str, extra_rules: str) -> str:
    """Append *extra_rules* (DSL text) to *base_text*."""
    return base_text + "\n" + extra_rules + "\n"


def drop_directive(base_text: str, directive_line: str) -> str:
    """Remove the first line equal to *directive_line* (stripped compare).

    Raises :class:`ValueError` when the directive is not present, so a
    corpus typo cannot silently produce the wrong variant.
    """
    lines = base_text.splitlines()
    target = directive_line.strip()
    for index, line in enumerate(lines):
        if line.strip() == target:
            del lines[index]
            return "\n".join(lines)
    raise ValueError(f"directive {directive_line!r} not found in grammar text")


def replace_rule(base_text: str, old_fragment: str, new_fragment: str) -> str:
    """Replace one occurrence of *old_fragment*; error if absent."""
    if old_fragment not in base_text:
        raise ValueError(f"fragment {old_fragment!r} not found in grammar text")
    return base_text.replace(old_fragment, new_fragment, 1)


def load_variant(base_text: str, name: str, transform=None) -> Grammar:
    """Apply *transform* (text -> text) and load the grammar as *name*."""
    text = transform(base_text) if transform is not None else base_text
    return load_grammar(text, name=name)
