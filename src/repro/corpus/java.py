"""A Java grammar with five injected-conflict variants (BV10 Java.1–5).

The base grammar transcribes the JLS (first edition) LALR(1) grammar as
shipped with CUP's ``java.cup``: compilation units, package and import
declarations, class and interface declarations with full member forms,
array types and initializers, the complete statement set — including the
``StatementNoShortIf`` device that resolves the dangling else without
precedence hacks — and the full expression hierarchy with JLS-style cast
productions. The base is conflict-free.

Variants:

=======  ====================================================================
Java.1   reintroduce the dangling else (a Statement-based if-else rule)
Java.2   a nullable modifier production — the conflict explosion the paper
         reports (1133 conflicts for BV10's Java.2); the 2-minute budget
         runs out and remaining conflicts get nonunifying counterexamples
Java.3   collapsed conditional-and layer — ambiguous
Java.4   a mixture: dangling else, an optional argument separator (deep
         searches that time out), and two-token-lookahead statement forms
         (unambiguous — nonunifying counterexamples)
Java.5   duplicate derivation paths for break/continue targets — ambiguous
=======  ====================================================================
"""

from __future__ import annotations

from repro.corpus.inject import add_rules, replace_rule
from repro.corpus.registry import GrammarSpec, PaperRow, register
from repro.grammar import Grammar, load_grammar

JAVA_BASE = """
%grammar java
%start CompilationUnit

CompilationUnit : PackageDeclarationOpt ImportDeclarationsOpt TypeDeclarationsOpt ;
PackageDeclarationOpt : PackageDeclaration | %empty ;
PackageDeclaration : PACKAGE Name ';' ;
ImportDeclarationsOpt : ImportDeclarations | %empty ;
ImportDeclarations : ImportDeclaration | ImportDeclarations ImportDeclaration ;
ImportDeclaration : IMPORT Name ';' | IMPORT Name '.' '*' ';' ;
TypeDeclarationsOpt : TypeDeclarations | %empty ;
TypeDeclarations : TypeDeclaration | TypeDeclarations TypeDeclaration ;
TypeDeclaration : ClassDeclaration | InterfaceDeclaration | ';' ;

Name : SimpleName | QualifiedName ;
SimpleName : ID ;
QualifiedName : Name '.' ID ;

Type : PrimitiveType | ReferenceType ;
PrimitiveType : NumericType | BOOLEAN ;
NumericType : IntegralType | FloatingPointType ;
IntegralType : BYTE | SHORT | INT | LONG | CHAR ;
FloatingPointType : FLOAT | DOUBLE ;
ReferenceType : ClassOrInterfaceType | ArrayType ;
ClassOrInterfaceType : Name ;
ClassType : ClassOrInterfaceType ;
InterfaceType : ClassOrInterfaceType ;
ArrayType : PrimitiveType '[' ']' | Name '[' ']' | ArrayType '[' ']' ;

ModifiersOpt : Modifiers | %empty ;
Modifiers : Modifier | Modifiers Modifier ;
Modifier : PUBLIC | PROTECTED | PRIVATE | STATIC | ABSTRACT | FINAL
         | NATIVE | SYNCHRONIZED | TRANSIENT | VOLATILE ;

ClassDeclaration : ModifiersOpt CLASS ID SuperOpt InterfacesOpt ClassBody ;
SuperOpt : Super | %empty ;
Super : EXTENDS ClassType ;
InterfacesOpt : Interfaces | %empty ;
Interfaces : IMPLEMENTS InterfaceTypeList ;
InterfaceTypeList : InterfaceType | InterfaceTypeList ',' InterfaceType ;
ClassBody : '{' ClassBodyDeclarationsOpt '}' ;
ClassBodyDeclarationsOpt : ClassBodyDeclarations | %empty ;
ClassBodyDeclarations : ClassBodyDeclaration
                      | ClassBodyDeclarations ClassBodyDeclaration ;
ClassBodyDeclaration : ClassMemberDeclaration
                     | StaticInitializer
                     | ConstructorDeclaration
                     ;
ClassMemberDeclaration : FieldDeclaration | MethodDeclaration ;

FieldDeclaration : ModifiersOpt Type VariableDeclarators ';' ;
VariableDeclarators : VariableDeclarator
                    | VariableDeclarators ',' VariableDeclarator ;
VariableDeclarator : VariableDeclaratorId
                   | VariableDeclaratorId '=' VariableInitializer ;
VariableDeclaratorId : ID | VariableDeclaratorId '[' ']' ;
VariableInitializer : Expression | ArrayInitializer ;

MethodDeclaration : MethodHeader MethodBody ;
MethodHeader : ModifiersOpt Type MethodDeclarator ThrowsOpt
             | ModifiersOpt VOID MethodDeclarator ThrowsOpt ;
MethodDeclarator : ID '(' FormalParameterListOpt ')'
                 | MethodDeclarator '[' ']' ;
FormalParameterListOpt : FormalParameterList | %empty ;
FormalParameterList : FormalParameter
                    | FormalParameterList ',' FormalParameter ;
FormalParameter : Type VariableDeclaratorId ;
ThrowsOpt : Throws | %empty ;
Throws : THROWS ClassTypeList ;
ClassTypeList : ClassType | ClassTypeList ',' ClassType ;
MethodBody : Block | ';' ;

StaticInitializer : STATIC Block ;

ConstructorDeclaration : ModifiersOpt ConstructorDeclarator ThrowsOpt
                         ConstructorBody ;
ConstructorDeclarator : SimpleName '(' FormalParameterListOpt ')' ;
ConstructorBody : '{' ExplicitConstructorInvocation BlockStatements '}'
                | '{' ExplicitConstructorInvocation '}'
                | '{' BlockStatements '}'
                | '{' '}'
                ;
ExplicitConstructorInvocation : THIS '(' ArgumentListOpt ')' ';'
                              | SUPER '(' ArgumentListOpt ')' ';' ;

InterfaceDeclaration : ModifiersOpt INTERFACE ID ExtendsInterfacesOpt
                       InterfaceBody ;
ExtendsInterfacesOpt : ExtendsInterfaces | %empty ;
ExtendsInterfaces : EXTENDS InterfaceType
                  | ExtendsInterfaces ',' InterfaceType ;
InterfaceBody : '{' InterfaceMemberDeclarationsOpt '}' ;
InterfaceMemberDeclarationsOpt : InterfaceMemberDeclarations | %empty ;
InterfaceMemberDeclarations : InterfaceMemberDeclaration
                            | InterfaceMemberDeclarations
                              InterfaceMemberDeclaration ;
InterfaceMemberDeclaration : ConstantDeclaration | AbstractMethodDeclaration ;
ConstantDeclaration : FieldDeclaration ;
AbstractMethodDeclaration : MethodHeader ';' ;

ArrayInitializer : '{' VariableInitializers ',' '}'
                 | '{' VariableInitializers '}'
                 | '{' ',' '}'
                 | '{' '}'
                 ;
VariableInitializers : VariableInitializer
                     | VariableInitializers ',' VariableInitializer ;

Block : '{' BlockStatementsOpt '}' ;
BlockStatementsOpt : BlockStatements | %empty ;
BlockStatements : BlockStatement | BlockStatements BlockStatement ;
BlockStatement : LocalVariableDeclarationStatement | Statement ;
LocalVariableDeclarationStatement : LocalVariableDeclaration ';' ;
LocalVariableDeclaration : Type VariableDeclarators ;

Statement : StatementWithoutTrailingSubstatement
          | LabeledStatement
          | IfThenStatement
          | IfThenElseStatement
          | WhileStatement
          | ForStatement
          ;
StatementNoShortIf : StatementWithoutTrailingSubstatement
                   | LabeledStatementNoShortIf
                   | IfThenElseStatementNoShortIf
                   | WhileStatementNoShortIf
                   | ForStatementNoShortIf
                   ;
StatementWithoutTrailingSubstatement : Block
                                     | EmptyStatement
                                     | ExpressionStatement
                                     | SwitchStatement
                                     | DoStatement
                                     | BreakStatement
                                     | ContinueStatement
                                     | ReturnStatement
                                     | SynchronizedStatement
                                     | ThrowStatement
                                     | TryStatement
                                     ;
EmptyStatement : ';' ;
LabeledStatement : ID ':' Statement ;
LabeledStatementNoShortIf : ID ':' StatementNoShortIf ;
ExpressionStatement : StatementExpression ';' ;
StatementExpression : Assignment
                    | PreIncrementExpression
                    | PreDecrementExpression
                    | PostIncrementExpression
                    | PostDecrementExpression
                    | MethodInvocation
                    | ClassInstanceCreationExpression
                    ;
IfThenStatement : IF '(' Expression ')' Statement ;
IfThenElseStatement : IF '(' Expression ')' StatementNoShortIf
                      ELSE Statement ;
IfThenElseStatementNoShortIf : IF '(' Expression ')' StatementNoShortIf
                               ELSE StatementNoShortIf ;
SwitchStatement : SWITCH '(' Expression ')' SwitchBlock ;
SwitchBlock : '{' SwitchBlockStatementGroups SwitchLabels '}'
            | '{' SwitchBlockStatementGroups '}'
            | '{' SwitchLabels '}'
            | '{' '}'
            ;
SwitchBlockStatementGroups : SwitchBlockStatementGroup
                           | SwitchBlockStatementGroups
                             SwitchBlockStatementGroup ;
SwitchBlockStatementGroup : SwitchLabels BlockStatements ;
SwitchLabels : SwitchLabel | SwitchLabels SwitchLabel ;
SwitchLabel : CASE ConstantExpression ':' | DEFAULT ':' ;
WhileStatement : WHILE '(' Expression ')' Statement ;
WhileStatementNoShortIf : WHILE '(' Expression ')' StatementNoShortIf ;
DoStatement : DO Statement WHILE '(' Expression ')' ';' ;
ForStatement : FOR '(' ForInitOpt ';' ExpressionOpt ';' ForUpdateOpt ')'
               Statement ;
ForStatementNoShortIf : FOR '(' ForInitOpt ';' ExpressionOpt ';'
                        ForUpdateOpt ')' StatementNoShortIf ;
ForInitOpt : ForInit | %empty ;
ForInit : StatementExpressionList | LocalVariableDeclaration ;
ForUpdateOpt : ForUpdate | %empty ;
ForUpdate : StatementExpressionList ;
StatementExpressionList : StatementExpression
                        | StatementExpressionList ',' StatementExpression ;
ExpressionOpt : Expression | %empty ;
BreakStatement : BREAK ID ';' | BREAK ';' ;
ContinueStatement : CONTINUE ID ';' | CONTINUE ';' ;
ReturnStatement : RETURN ExpressionOpt ';' ;
ThrowStatement : THROW Expression ';' ;
SynchronizedStatement : SYNCHRONIZED '(' Expression ')' Block ;
TryStatement : TRY Block Catches
             | TRY Block CatchesOpt Finally
             ;
CatchesOpt : Catches | %empty ;
Catches : CatchClause | Catches CatchClause ;
CatchClause : CATCH '(' FormalParameter ')' Block ;
Finally : FINALLY Block ;

Primary : PrimaryNoNewArray | ArrayCreationExpression ;
PrimaryNoNewArray : Literal
                  | THIS
                  | '(' Expression ')'
                  | ClassInstanceCreationExpression
                  | FieldAccess
                  | MethodInvocation
                  | ArrayAccess
                  ;
Literal : INT_LIT | FLOAT_LIT | BOOL_LIT | CHAR_LIT | STRING_LIT | NULL_LIT ;
ClassInstanceCreationExpression : NEW ClassType '(' ArgumentListOpt ')' ;
ArgumentListOpt : ArgumentList | %empty ;
ArgumentList : Expression | ArgumentList ',' Expression ;
ArrayCreationExpression : NEW PrimitiveType DimExprs DimsOpt
                        | NEW ClassOrInterfaceType DimExprs DimsOpt
                        ;
DimExprs : DimExpr | DimExprs DimExpr ;
DimExpr : '[' Expression ']' ;
DimsOpt : Dims | %empty ;
Dims : '[' ']' | Dims '[' ']' ;
FieldAccess : Primary '.' ID | SUPER '.' ID ;
MethodInvocation : Name '(' ArgumentListOpt ')'
                 | Primary '.' ID '(' ArgumentListOpt ')'
                 | SUPER '.' ID '(' ArgumentListOpt ')'
                 ;
ArrayAccess : Name '[' Expression ']'
            | PrimaryNoNewArray '[' Expression ']' ;

PostfixExpression : Primary
                  | Name
                  | PostIncrementExpression
                  | PostDecrementExpression
                  ;
PostIncrementExpression : PostfixExpression PLUSPLUS ;
PostDecrementExpression : PostfixExpression MINUSMINUS ;
UnaryExpression : PreIncrementExpression
                | PreDecrementExpression
                | '+' UnaryExpression
                | '-' UnaryExpression
                | UnaryExpressionNotPlusMinus
                ;
PreIncrementExpression : PLUSPLUS UnaryExpression ;
PreDecrementExpression : MINUSMINUS UnaryExpression ;
UnaryExpressionNotPlusMinus : PostfixExpression
                            | '~' UnaryExpression
                            | '!' UnaryExpression
                            | CastExpression
                            ;
CastExpression : '(' PrimitiveType DimsOpt ')' UnaryExpression
               | '(' Expression ')' UnaryExpressionNotPlusMinus
               | '(' Name Dims ')' UnaryExpressionNotPlusMinus
               ;
MultiplicativeExpression : UnaryExpression
                         | MultiplicativeExpression '*' UnaryExpression
                         | MultiplicativeExpression '/' UnaryExpression
                         | MultiplicativeExpression '%' UnaryExpression
                         ;
AdditiveExpression : MultiplicativeExpression
                   | AdditiveExpression '+' MultiplicativeExpression
                   | AdditiveExpression '-' MultiplicativeExpression
                   ;
ShiftExpression : AdditiveExpression
                | ShiftExpression SHL AdditiveExpression
                | ShiftExpression SHR AdditiveExpression
                | ShiftExpression USHR AdditiveExpression
                ;
RelationalExpression : ShiftExpression
                     | RelationalExpression '<' ShiftExpression
                     | RelationalExpression '>' ShiftExpression
                     | RelationalExpression LE ShiftExpression
                     | RelationalExpression GE ShiftExpression
                     | RelationalExpression INSTANCEOF ReferenceType
                     ;
EqualityExpression : RelationalExpression
                   | EqualityExpression EQ RelationalExpression
                   | EqualityExpression NE RelationalExpression
                   ;
AndExpression : EqualityExpression
              | AndExpression '&' EqualityExpression ;
ExclusiveOrExpression : AndExpression
                      | ExclusiveOrExpression '^' AndExpression ;
InclusiveOrExpression : ExclusiveOrExpression
                      | InclusiveOrExpression '|' ExclusiveOrExpression ;
ConditionalAndExpression : InclusiveOrExpression
                         | ConditionalAndExpression ANDAND
                           InclusiveOrExpression ;
ConditionalOrExpression : ConditionalAndExpression
                        | ConditionalOrExpression OROR
                          ConditionalAndExpression ;
ConditionalExpression : ConditionalOrExpression
                      | ConditionalOrExpression '?' Expression ':'
                        ConditionalExpression ;
AssignmentExpression : ConditionalExpression | Assignment ;
Assignment : LeftHandSide AssignmentOperator AssignmentExpression ;
LeftHandSide : Name | FieldAccess | ArrayAccess ;
AssignmentOperator : '=' | MUL_ASSIGN | DIV_ASSIGN | MOD_ASSIGN
                   | ADD_ASSIGN | SUB_ASSIGN | SHL_ASSIGN | SHR_ASSIGN
                   | USHR_ASSIGN | AND_ASSIGN | XOR_ASSIGN | OR_ASSIGN ;
Expression : AssignmentExpression ;
ConstantExpression : Expression ;
"""


def java_base_text() -> str:
    """The conflict-free base Java grammar text."""
    return JAVA_BASE


def java_base() -> Grammar:
    return load_grammar(JAVA_BASE, name="java-base")


def _java1() -> Grammar:
    text = add_rules(
        JAVA_BASE,
        "IfThenElseStatement : IF '(' Expression ')' Statement ELSE Statement ;",
    )
    return load_grammar(text, name="Java.1")


def _java2() -> Grammar:
    text = add_rules(JAVA_BASE, "Modifier : %empty ;")
    return load_grammar(text, name="Java.2")


def _java3() -> Grammar:
    text = add_rules(
        JAVA_BASE,
        "ConditionalExpression : ConditionalOrExpression '?' Expression ':' "
        "Expression ;",
    )
    return load_grammar(text, name="Java.3")


def _java4() -> Grammar:
    # Dangling else: easy unifying counterexamples.
    text = add_rules(
        JAVA_BASE,
        "IfThenElseStatement : IF '(' Expression ')' Statement ELSE Statement ;",
    )
    # Collapsed ternary: reduce/reduce ambiguities, unifying.
    text = add_rules(
        text,
        "ConditionalExpression : ConditionalOrExpression '?' Expression ':' "
        "Expression ;",
    )
    # A two-token-lookahead statement pair: unambiguous, nonunifying.
    text = add_rules(
        text,
        "StatementWithoutTrailingSubstatement : ASSERT_K AKind MARK_K END1_K ';'\n"
        "    | ASSERT_K BKind MARK_K END2_K ';' ;\n"
        "AKind : PROBE_K ;\n"
        "BKind : PROBE_K ;",
    )
    # Optional comma between array-initializer elements: ambiguous, but the
    # unifying searches hit the time limit (the paper's T/L class).
    text = replace_rule(
        text,
        "VariableInitializers : VariableInitializer\n"
        "                     | VariableInitializers ',' VariableInitializer ;",
        "VariableInitializers : VariableInitializer\n"
        "                     | VariableInitializers CommaOpt VariableInitializer ;\n"
        "CommaOpt : ',' | %empty ;",
    )
    return load_grammar(text, name="Java.4")


def _java5() -> Grammar:
    text = add_rules(
        JAVA_BASE,
        "BreakStatement : BREAK LabelName ';' ;\n"
        "ContinueStatement : CONTINUE LabelName ';' ;\n"
        "LabelName : ID ;",
    )
    return load_grammar(text, name="Java.5")


register(
    GrammarSpec(
        name="Java.1",
        category="bv10",
        loader=_java1,
        ambiguous=True,
        paper=PaperRow(152, 351, 607, 1, True, 1, 0, 0, 0.569, 0.569),
    )
)
register(
    GrammarSpec(
        name="Java.2",
        category="bv10",
        loader=_java2,
        ambiguous=True,
        paper=PaperRow(152, 351, 606, 1133, True, 141, 0, 9, 35.384, 0.251),
        notes="nullable-modifier explosion; the cumulative budget runs out",
    )
)
register(
    GrammarSpec(
        name="Java.3",
        category="bv10",
        loader=_java3,
        ambiguous=True,
        paper=PaperRow(152, 351, 608, 2, True, 2, 0, 0, 0.435, 0.218),
    )
)
register(
    GrammarSpec(
        name="Java.4",
        category="bv10",
        loader=_java4,
        ambiguous=True,
        paper=PaperRow(152, 351, 608, 14, True, 6, 2, 6, 2.042, 0.255),
        notes="mixed defects: unifying, nonunifying, and time-limit conflicts",
    )
)
register(
    GrammarSpec(
        name="Java.5",
        category="bv10",
        loader=_java5,
        ambiguous=True,
        paper=PaperRow(152, 351, 607, 3, True, 3, 0, 0, 0.526, 0.175),
    )
)
