"""The evaluation grammar corpus (paper Table 1)."""

from repro.corpus.registry import GrammarSpec, PaperRow, all_specs, get, load, register

__all__ = ["GrammarSpec", "PaperRow", "all_specs", "get", "load", "register"]
