"""Lexers for the corpus language grammars.

These turn source text into the terminal streams the base grammars
expect, enabling end-to-end parsing of real programs in the examples and
integration tests. Each lexer mirrors its grammar's terminal vocabulary
exactly (see the corresponding module in :mod:`repro.corpus`).
"""

from __future__ import annotations

from repro.parsing.lexer import Lexer, keyword_table

def sql_lexer() -> Lexer:
    """Tokens for :mod:`repro.corpus.sql`."""
    keywords = keyword_table(
        "SELECT", "DISTINCT", "ALL", "AS", "FROM", "JOIN", "INNER", "LEFT",
        "RIGHT", "ON", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
        "DESC", "OR", "AND", "NOT", "IS", "NULL", "LIKE", "IN", "EXISTS",
        "COUNT", "SUM", "AVG", "MIN", "MAX", "CASE", "WHEN", "THEN", "ELSE",
        "END", "TRUE", "FALSE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
        "DELETE", "CREATE", "TABLE", "PRIMARY", "KEY", "UNIQUE", "DEFAULT",
        "DROP",
    )
    keywords.update(
        {
            "int": "INT_T", "INT": "INT_T",
            "float": "FLOAT_T", "FLOAT": "FLOAT_T",
            "char": "CHAR_T", "CHAR": "CHAR_T",
            "varchar": "VARCHAR_T", "VARCHAR": "VARCHAR_T",
            "date": "DATE_T", "DATE": "DATE_T",
            "boolean": "BOOLEAN_T", "BOOLEAN": "BOOLEAN_T",
        }
    )
    return Lexer(
        rules=[
            (None, r"\s+"),
            (None, r"--[^\n]*"),
            ("NUM", r"[0-9]+(\.[0-9]+)?"),
            ("STRING", r"'[^']*'"),
            ("ID", r"[A-Za-z_][A-Za-z0-9_]*"),
            ("'<='", r"<="), ("'>='", r">="), ("'<>'", r"<>"),
            ("'<'", r"<"), ("'>'", r">"), ("'='", r"="),
            ("'('", r"\("), ("')'", r"\)"), ("','", r","), ("';'", r";"),
            ("'*'", r"\*"), ("'/'", r"/"), ("'+'", r"\+"), ("'-'", r"-"),
            ("'.'", r"\."), ("PARAM", r"\?"),
        ],
        keywords=keywords,
    )


def pascal_lexer() -> Lexer:
    """Tokens for :mod:`repro.corpus.pascal`."""
    keywords = keyword_table(
        "PROGRAM", "LABEL", "CONST", "TYPE", "ARRAY", "OF", "RECORD", "END",
        "SET", "FILE", "PACKED", "CASE", "VAR", "PROCEDURE", "FUNCTION",
        "FORWARD", "IF", "THEN", "ELSE", "WHILE", "DO", "REPEAT", "UNTIL",
        "FOR", "TO", "DOWNTO", "WITH", "GOTO", "NIL", "NOT", "OR", "AND",
        "DIV", "MOD", "IN",
    )
    keywords["begin"] = "PBEGIN"
    keywords["BEGIN"] = "PBEGIN"
    return Lexer(
        rules=[
            (None, r"\s+"),
            (None, r"\(\*[\s\S]*?\*\)"),
            ("NUM", r"[0-9]+(\.[0-9]+)?"),
            ("STRING", r"'[^']*'"),
            ("CHR", r"#[0-9]+"),
            ("ID", r"[A-Za-z_][A-Za-z0-9_]*"),
            ("ASSIGN", r":="), ("DOTDOT", r"\.\."),
            ("LE", r"<="), ("GE", r">="), ("NE", r"<>"),
            ("'<'", r"<"), ("'>'", r">"), ("'='", r"="),
            ("'('", r"\("), ("')'", r"\)"), ("'['", r"\["), ("']'", r"\]"),
            ("','", r","), ("';'", r";"), ("':'", r":"), ("'.'", r"\."),
            ("'+'", r"\+"), ("'-'", r"-"), ("'*'", r"\*"), ("'/'", r"/"),
            ("'^'", r"\^"),
        ],
        keywords=keywords,
    )


def c_lexer() -> Lexer:
    """Tokens for :mod:`repro.corpus.c` (typedef names must be pre-declared)."""
    keywords = {
        name.lower(): name
        for name in [
            "TYPEDEF", "EXTERN", "STATIC", "AUTO", "REGISTER", "VOID",
            "CHAR", "SHORT", "INT", "LONG", "FLOAT", "DOUBLE", "SIGNED",
            "UNSIGNED", "STRUCT", "UNION", "ENUM", "CONST", "VOLATILE",
            "CASE", "DEFAULT", "IF", "ELSE", "SWITCH", "WHILE", "DO", "FOR",
            "GOTO", "CONTINUE", "BREAK", "RETURN", "SIZEOF",
        ]
    }
    return Lexer(
        rules=[
            (None, r"\s+"),
            (None, r"//[^\n]*"),
            (None, r"/\*[\s\S]*?\*/"),
            ("CONSTANT", r"[0-9]+(\.[0-9]+)?([uUlLfF]*)"),
            ("CONSTANT", r"'(\\.|[^'\\])'"),
            ("STRING_LITERAL", r'"(\\.|[^"\\])*"'),
            ("IDENTIFIER", r"[A-Za-z_][A-Za-z0-9_]*"),
            ("ELLIPSIS", r"\.\.\."),
            ("LEFT_ASSIGN", r"<<="), ("RIGHT_ASSIGN", r">>="),
            ("LEFT_OP", r"<<"), ("RIGHT_OP", r">>"),
            ("LE_OP", r"<="), ("GE_OP", r">="),
            ("EQ_OP", r"=="), ("NE_OP", r"!="),
            ("PTR_OP", r"->"), ("INC_OP", r"\+\+"), ("DEC_OP", r"--"),
            ("MUL_ASSIGN", r"\*="), ("DIV_ASSIGN", r"/="),
            ("MOD_ASSIGN", r"%="), ("ADD_ASSIGN", r"\+="),
            ("SUB_ASSIGN", r"-="), ("AND_ASSIGN", r"&="),
            ("XOR_ASSIGN", r"\^="), ("OR_ASSIGN", r"\|="),
            ("AND_OP", r"&&"), ("OR_OP", r"\|\|"),
            ("'<'", r"<"), ("'>'", r">"), ("'='", r"="),
            ("'('", r"\("), ("')'", r"\)"), ("'['", r"\["), ("']'", r"\]"),
            ("'{'", r"\{"), ("'}'", r"\}"),
            ("','", r","), ("';'", r";"), ("':'", r":"), ("'.'", r"\."),
            ("'+'", r"\+"), ("'-'", r"-"), ("'*'", r"\*"), ("'/'", r"/"),
            ("'%'", r"%"), ("'&'", r"&"), ("'|'", r"\|"), ("'^'", r"\^"),
            ("'~'", r"~"), ("'!'", r"!"), ("'?'", r"\?"),
        ],
        keywords=keywords,
    )


def java_lexer() -> Lexer:
    """Tokens for :mod:`repro.corpus.java`."""
    keywords = {
        name.lower(): name
        for name in [
            "PACKAGE", "IMPORT", "CLASS", "INTERFACE", "EXTENDS",
            "IMPLEMENTS", "PUBLIC", "PROTECTED", "PRIVATE", "STATIC",
            "ABSTRACT", "FINAL", "NATIVE", "SYNCHRONIZED", "TRANSIENT",
            "VOLATILE", "THROWS", "VOID", "BOOLEAN", "BYTE", "SHORT", "INT",
            "LONG", "CHAR", "FLOAT", "DOUBLE", "IF", "ELSE", "SWITCH",
            "CASE", "DEFAULT", "WHILE", "DO", "FOR", "BREAK", "CONTINUE",
            "RETURN", "THROW", "TRY", "CATCH", "FINALLY", "NEW", "THIS",
            "SUPER", "INSTANCEOF",
        ]
    }
    keywords.update({"true": "BOOL_LIT", "false": "BOOL_LIT", "null": "NULL_LIT"})
    return Lexer(
        rules=[
            (None, r"\s+"),
            (None, r"//[^\n]*"),
            (None, r"/\*[\s\S]*?\*/"),
            ("FLOAT_LIT", r"[0-9]+\.[0-9]+([fFdD]?)"),
            ("INT_LIT", r"[0-9]+[lL]?"),
            ("CHAR_LIT", r"'(\\.|[^'\\])'"),
            ("STRING_LIT", r'"(\\.|[^"\\])*"'),
            ("ID", r"[A-Za-z_$][A-Za-z0-9_$]*"),
            ("SHL_ASSIGN", r"<<="), ("USHR_ASSIGN", r">>>="),
            ("SHR_ASSIGN", r">>="),
            ("USHR", r">>>"), ("SHL", r"<<"), ("SHR", r">>"),
            ("LE", r"<="), ("GE", r">="), ("EQ", r"=="), ("NE", r"!="),
            ("PLUSPLUS", r"\+\+"), ("MINUSMINUS", r"--"),
            ("MUL_ASSIGN", r"\*="), ("DIV_ASSIGN", r"/="),
            ("MOD_ASSIGN", r"%="), ("ADD_ASSIGN", r"\+="),
            ("SUB_ASSIGN", r"-="), ("AND_ASSIGN", r"&="),
            ("XOR_ASSIGN", r"\^="), ("OR_ASSIGN", r"\|="),
            ("ANDAND", r"&&"), ("OROR", r"\|\|"),
            ("'<'", r"<"), ("'>'", r">"), ("'='", r"="),
            ("'('", r"\("), ("')'", r"\)"), ("'['", r"\["), ("']'", r"\]"),
            ("'{'", r"\{"), ("'}'", r"\}"),
            ("','", r","), ("';'", r";"), ("':'", r":"), ("'.'", r"\."),
            ("'+'", r"\+"), ("'-'", r"-"), ("'*'", r"\*"), ("'/'", r"/"),
            ("'%'", r"%"), ("'&'", r"&"), ("'|'", r"\|"), ("'^'", r"\^"),
            ("'~'", r"~"), ("'!'", r"!"), ("'?'", r"\?"),
        ],
        keywords=keywords,
    )
