"""The evaluation corpus: every grammar named in the paper's Table 1.

Each grammar is registered as a :class:`GrammarSpec` carrying the loader,
the category, whether the grammar is ambiguous, and — where the paper
reports them — the Table 1 reference numbers, so that the benchmark
harness can print paper-vs-measured rows.

Reconstruction notes: the paper's own figures are reproduced exactly; the
"ours", StackOverflow/StackExchange, and BV10 grammars are reconstructions
(the original files are not available offline), so complexity numbers are
approximate. See DESIGN.md "Faithfulness notes".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.grammar import Grammar


@dataclass(frozen=True)
class PaperRow:
    """The Table 1 reference numbers for one grammar (as published)."""

    nonterms: int
    prods: int
    states: int
    conflicts: int
    ambiguous: bool
    unifying: int
    nonunifying: int
    timeouts: int
    total_time: float | None  # seconds; None for T/L rows
    average_time: float | None


@dataclass(frozen=True)
class GrammarSpec:
    """One corpus entry."""

    name: str
    category: str  # "paper" | "ours" | "stackoverflow" | "bv10" | "hygiene" | "nonlalr"
    loader: Callable[[], Grammar]
    ambiguous: bool
    exact: bool = False  # True when the grammar is verbatim from the paper
    paper: PaperRow | None = None
    notes: str = ""

    def load(self) -> Grammar:
        grammar = self.loader()
        # Keep the registry name authoritative for reporting.
        grammar.name = self.name
        return grammar


_REGISTRY: dict[str, GrammarSpec] = {}


def register(spec: GrammarSpec) -> GrammarSpec:
    """Add *spec* to the global registry (module import time)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate corpus grammar {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_loaded() -> None:
    """Import the corpus modules so their registrations run."""
    from repro.corpus import (  # noqa: F401
        c,
        hygiene,
        java,
        nonlalr,
        ours,
        paper,
        pascal,
        sql,
        stackoverflow,
    )


def all_specs(category: str | None = None) -> list[GrammarSpec]:
    """All registered grammars, optionally filtered by category."""
    _ensure_loaded()
    specs = list(_REGISTRY.values())
    if category is not None:
        specs = [s for s in specs if s.category == category]
    return specs


def get(name: str) -> GrammarSpec:
    """Look up one grammar by its Table 1 name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"no corpus grammar {name!r}; known: {known}") from None


def load(name: str) -> Grammar:
    """Load one corpus grammar by name."""
    return get(name).load()
