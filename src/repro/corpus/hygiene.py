"""Hygiene-control grammars: lint-clean baselines, not Table 1 entries.

The lint subsystem needs at least one corpus grammar whose report is
free of warnings and errors, so the golden tests can pin "clean stays
clean" alongside the conflict grammars' findings. ``clean-json`` is a
minimal JSON-shaped grammar: SLR(1), conflict-free, no useless symbols,
no ambiguity-prone patterns. Its only lint output is informational
(left recursion, unit productions, the LR-class summary).
"""

from __future__ import annotations

from repro.corpus.registry import GrammarSpec, register
from repro.grammar import Grammar, load_grammar

CLEAN_JSON = """
%grammar clean-json
%start value
value : '{' members '}'
      | '[' elements ']'
      | STRING
      | NUMBER
      ;
members : %empty | pairs ;
pairs : pair | pairs ',' pair ;
pair : STRING ':' value ;
elements : %empty | items ;
items : value | items ',' value ;
"""


def _load_clean_json() -> Grammar:
    return load_grammar(CLEAN_JSON, name="clean-json")


register(
    GrammarSpec(
        name="clean-json",
        category="hygiene",
        loader=_load_clean_json,
        ambiguous=False,
        notes="lint-clean control grammar (SLR(1), zero warnings)",
    )
)
