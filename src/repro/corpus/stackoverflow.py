"""Reconstructions of the StackOverflow/StackExchange grammars of Table 1.

The paper links to twelve Q&A posts by developers puzzled by parsing
conflicts. The posts describe classic conflict patterns; each grammar
here reconstructs the *pattern* of its post (the exact grammar files are
not part of the paper's artifact):

==============  =============================================================
stackexc01      ambiguous expression grammar (associativity + precedence)
stackexc02      nullable declaration/statement lists, unambiguous non-LALR
stackovf01      self-delimiting recursion needing 2 lookaheads (unambiguous)
stackovf02      the bare E -> E+E | E*E expression grammar (ambiguous)
stackovf03      statement list with optional trailing separator (ambiguous)
stackovf04      reduce/reduce on a shared prefix, disambiguated later
stackovf05      reduce/reduce between identical derivations (ambiguous)
stackovf06      two LR(2) patterns side by side (unambiguous)
stackovf07      prefix/infix operator overlap (ambiguous)
stackovf08      optional-item cascade, unambiguous but massively conflicted
stackovf09      nested optional wrappers, unambiguous non-LALR
stackovf10      XML-ish element grammar with nullable lists (ambiguous)
==============  =============================================================
"""

from __future__ import annotations

from repro.corpus.registry import GrammarSpec, PaperRow, register
from repro.grammar import Grammar, load_grammar

_TEXTS = {
    "stackexc01": """
%grammar stackexc01
%start e
%left '+'
e : e '+' e | e '*' e | ID ;
""",
    "stackexc02": """
%grammar stackexc02
%start unit
unit : decls stmts ;
decls : decls decl | %empty ;
decl : ID ID ';' ;
stmts : stmts stmt | %empty ;
stmt : ID '=' num ';' ;
num : NUM ;
""",
    "stackovf01": """
%grammar stackovf01
%start s
s : 'a' s 'a' | %empty ;
""",
    "stackovf02": """
%grammar stackovf02
%start e
e : e '+' e | e '*' e | '(' e ')' | NUM ;
""",
    "stackovf03": """
%grammar stackovf03
%start list
list : list ';' list | ITEM ;
""",
    "stackovf04": """
%grammar stackovf04
%start s
s : t 'x' 'p' | u 'x' 'q' ;
t : 'k' ;
u : 'k' ;
""",
    "stackovf05": """
%grammar stackovf05
%start s
s : first 'x' | second 'x' ;
first : 'q' ;
second : 'q' ;
""",
    "stackovf06": """
%grammar stackovf06
%start s
s : t 'x' 'p' | u 'x' 'q' | v 'y' 'p' | w 'y' 'q' ;
t : 'k' ;
u : 'k' ;
v : 'm' ;
w : 'm' ;
""",
    "stackovf07": """
%grammar stackovf07
%start s
s : e ;
e : e '+' e | t ;
t : t '*' t | '-' t | prim ;
prim : ID | NUM | '(' e ')' ;
""",
    "stackovf08": """
%grammar stackovf08
%start s
s : t follow 'p' | u follow 'q' ;
t : 'k' ;
u : 'k' ;
follow : 'a' | 'b' | 'c' | 'd' | 'e' | 'f' | 'g' | 'h' ;
""",
    "stackovf09": """
%grammar stackovf09
%start s
s : wrap 'x' 'p' | wrap2 'x' 'q' ;
wrap : inner ;
wrap2 : inner2 ;
inner : 'k' ;
inner2 : 'k' ;
""",
    "stackovf10": """
%grammar stackovf10
%start document
document : prolog element epilog ;
prolog : prolog misc | %empty ;
epilog : epilog misc | %empty ;
misc : COMMENT | PI | DOCTYPE | CDATA | misc misc ;
element : '<' NAME attrs '>' content '</' NAME '>'
        | '<' NAME attrs '/>'
        ;
attrs : attrs attr | %empty ;
attr : NAME '=' STRING ;
content : content chunk | %empty ;
chunk : element | text | misc ;
text : TEXT | text TEXT ;
""",
}

_ROWS = {
    "stackexc01": PaperRow(2, 7, 13, 3, True, 3, 0, 0, 0.023, 0.008),
    "stackexc02": PaperRow(6, 11, 15, 1, False, 0, 1, 0, 0.008, 0.008),
    "stackovf01": PaperRow(2, 5, 9, 1, False, 0, 1, 0, 0.009, 0.009),
    "stackovf02": PaperRow(2, 5, 9, 4, True, 4, 0, 0, 0.043, 0.011),
    "stackovf03": PaperRow(2, 6, 10, 1, True, 1, 0, 0, 0.017, 0.017),
    "stackovf04": PaperRow(5, 9, 13, 1, False, 0, 1, 0, 0.009, 0.009),
    "stackovf05": PaperRow(5, 10, 14, 1, True, 1, 0, 0, 0.010, 0.010),
    "stackovf06": PaperRow(6, 10, 15, 2, False, 0, 2, 0, 0.012, 0.006),
    "stackovf07": PaperRow(7, 12, 17, 3, True, 3, 0, 0, 0.028, 0.009),
    "stackovf08": PaperRow(3, 13, 21, 8, False, 0, 8, 0, 0.025, 0.003),
    "stackovf09": PaperRow(6, 12, 27, 1, False, 0, 1, 0, 0.017, 0.017),
    "stackovf10": PaperRow(9, 20, 53, 19, True, 19, 0, 0, 0.140, 0.007),
}


def _make_loader(name: str):
    def loader() -> Grammar:
        return load_grammar(_TEXTS[name], name=name)

    return loader


for _name, _row in _ROWS.items():
    register(
        GrammarSpec(
            name=_name,
            category="stackoverflow",
            loader=_make_loader(_name),
            ambiguous=_row.ambiguous,
            paper=_row,
        )
    )
