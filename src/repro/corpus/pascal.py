"""A Pascal grammar with five injected-conflict variants (BV10 Pascal.1–5).

The base grammar is a faithful ISO-7185-flavoured Pascal: program
heading, label/const/type/var sections, nested procedures and functions,
records with variant parts, arrays/sets/files/pointers, the full
statement suite (compound, if, case, while, repeat, for, with, goto) and
set-valued expressions. The dangling else is resolved in the base with
the standard %nonassoc THEN/ELSE device, so the base is conflict-free.

Variants:

==========  ==============================================================
Pascal.1    remove the THEN/ELSE precedence (dangling else) and make the
            set-element comma optional — a mix of easy unifying conflicts
            and conflicts whose search hits the time limit
Pascal.2    collapsed MOD layer (``factor : factor MOD factor``) — ambiguous
Pascal.3    duplicate derivation path for the program file list — ambiguous
Pascal.4    associativity-free POW operator — ambiguous
Pascal.5    variant-record tag shadowing (duplicate path) — ambiguous
==========  ==============================================================
"""

from __future__ import annotations

from repro.corpus.inject import add_rules, drop_directive
from repro.corpus.registry import GrammarSpec, PaperRow, register
from repro.grammar import Grammar, load_grammar

PASCAL_BASE = """
%grammar pascal
%start program
%nonassoc THEN
%nonassoc ELSE

program : PROGRAM ID opt_files ';' block '.' ;
opt_files : '(' id_list ')' | %empty ;
id_list : ID | id_list ',' ID ;

block : opt_labels opt_consts opt_types opt_vars opt_subprogs compound ;

opt_labels : LABEL labels ';' | %empty ;
labels : NUM | labels ',' NUM ;

opt_consts : CONST const_defs | %empty ;
const_defs : const_def | const_defs const_def ;
const_def : ID '=' constant ';' ;
constant : NUM | '+' NUM | '-' NUM | STRING | ID | CHR ;

opt_types : TYPE type_defs | %empty ;
type_defs : type_def | type_defs type_def ;
type_def : ID '=' type ';' ;

type : simple_type
     | ARRAY '[' index_types ']' OF type
     | RECORD field_list END
     | SET OF simple_type
     | FILE OF type
     | '^' ID
     | PACKED ARRAY '[' index_types ']' OF type
     | PACKED RECORD field_list END
     ;
simple_type : ID
            | '(' id_list ')'
            | constant DOTDOT constant
            ;
index_types : simple_type | index_types ',' simple_type ;

field_list : fixed_part
           | fixed_part ';' variant_part
           | variant_part
           ;
fixed_part : field_decl | fixed_part ';' field_decl ;
field_decl : id_list ':' type ;
variant_part : CASE ID ':' ID OF variants ;
variants : variant | variants ';' variant ;
variant : case_labels ':' '(' field_list ')' ;
case_labels : constant | case_labels ',' constant ;

opt_vars : VAR var_decls | %empty ;
var_decls : var_decl | var_decls var_decl ;
var_decl : id_list ':' type ';' ;

opt_subprogs : opt_subprogs subprog ';' | %empty ;
subprog : proc_heading ';' block
        | func_heading ';' block
        | proc_heading ';' FORWARD
        | func_heading ';' FORWARD
        ;
proc_heading : PROCEDURE ID opt_params ;
func_heading : FUNCTION ID opt_params ':' ID ;
opt_params : '(' param_groups ')' | %empty ;
param_groups : param_group | param_groups ';' param_group ;
param_group : id_list ':' ID
            | VAR id_list ':' ID
            | PROCEDURE id_list
            | FUNCTION id_list ':' ID
            ;

compound : PBEGIN statements END ;
statements : statement | statements ';' statement ;

statement : opt_label unlabeled ;
opt_label : NUM ':' | %empty ;
unlabeled : assignment
          | proc_call
          | compound
          | IF expr THEN statement %prec THEN
          | IF expr THEN statement ELSE statement
          | CASE expr OF case_elems opt_semi END
          | WHILE expr DO statement
          | REPEAT statements UNTIL expr
          | FOR ID ASSIGN expr TO expr DO statement
          | FOR ID ASSIGN expr DOWNTO expr DO statement
          | WITH variables DO statement
          | GOTO NUM
          | %empty
          ;
opt_semi : ';' | %empty ;

assignment : variable ASSIGN expr ;
variables : variable | variables ',' variable ;
variable : ID
         | variable '[' expr_list ']'
         | variable '.' ID
         | variable '^'
         ;
proc_call : ID '(' expr_list ')' ;

case_elems : case_elem | case_elems ';' case_elem ;
case_elem : case_labels ':' statement ;

expr_list : expr | expr_list ',' expr ;

expr : simple_expr
     | simple_expr relop simple_expr
     ;
relop : '=' | NE | '<' | '>' | LE | GE | IN ;
simple_expr : term2
            | '+' term2
            | '-' term2
            | simple_expr addop term2
            ;
addop : '+' | '-' | OR ;
term2 : factor | term2 mulop factor ;
mulop : '*' | '/' | DIV | MOD | AND ;
factor : variable
       | NUM
       | STRING
       | NIL
       | CHR
       | ID '(' expr_list ')'
       | '(' expr ')'
       | NOT factor
       | '[' set_elems ']'
       | '[' ']'
       ;
set_elems : set_elem | set_elems ',' set_elem ;
set_elem : expr | expr DOTDOT expr ;
"""


def pascal_base_text() -> str:
    """The conflict-free base Pascal grammar text."""
    return PASCAL_BASE


def pascal_base() -> Grammar:
    return load_grammar(PASCAL_BASE, name="pascal-base")


def _pascal1() -> Grammar:
    text = drop_directive(PASCAL_BASE, "%nonassoc THEN")
    text = drop_directive(text, "%nonassoc ELSE")
    text = text.replace(
        "| IF expr THEN statement %prec THEN", "| IF expr THEN statement"
    )
    text = text.replace(
        "set_elems : set_elem | set_elems ',' set_elem ;",
        "set_elems : set_elem | set_elems opt_comma set_elem ;\n"
        "opt_comma : ',' | %empty ;",
    )
    return load_grammar(text, name="Pascal.1")


def _pascal2() -> Grammar:
    text = add_rules(PASCAL_BASE, "factor : factor MOD factor ;")
    return load_grammar(text, name="Pascal.2")


def _pascal3() -> Grammar:
    text = add_rules(
        PASCAL_BASE,
        "opt_files : file_spec ;\nfile_spec : '(' id_list ')' ;",
    )
    return load_grammar(text, name="Pascal.3")


def _pascal4() -> Grammar:
    text = add_rules(PASCAL_BASE, "factor : factor POW factor ;")
    return load_grammar(text, name="Pascal.4")


def _pascal5() -> Grammar:
    text = add_rules(
        PASCAL_BASE,
        "variant_part : CASE tag_field OF variants ;\ntag_field : ID ':' ID ;",
    )
    return load_grammar(text, name="Pascal.5")


register(
    GrammarSpec(
        name="Pascal.1",
        category="bv10",
        loader=_pascal1,
        ambiguous=True,
        paper=PaperRow(79, 177, 323, 3, True, 2, 0, 1, 0.196, 0.098),
    )
)
register(
    GrammarSpec(
        name="Pascal.2",
        category="bv10",
        loader=_pascal2,
        ambiguous=True,
        paper=PaperRow(79, 177, 324, 5, True, 5, 0, 0, 0.296, 0.059),
    )
)
register(
    GrammarSpec(
        name="Pascal.3",
        category="bv10",
        loader=_pascal3,
        ambiguous=True,
        paper=PaperRow(79, 177, 321, 1, True, 1, 0, 0, 0.070, 0.070),
    )
)
register(
    GrammarSpec(
        name="Pascal.4",
        category="bv10",
        loader=_pascal4,
        ambiguous=True,
        paper=PaperRow(79, 177, 322, 1, True, 1, 0, 0, 0.081, 0.081),
    )
)
register(
    GrammarSpec(
        name="Pascal.5",
        category="bv10",
        loader=_pascal5,
        ambiguous=True,
        paper=PaperRow(79, 177, 322, 1, True, 1, 0, 0, 0.113, 0.113),
    )
)
