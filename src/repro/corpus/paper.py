"""The paper's own grammars, verbatim (Figures 1, 3, 7; §2.4 example)."""

from __future__ import annotations

from repro.corpus.registry import GrammarSpec, PaperRow, register
from repro.grammar import Grammar, load_grammar

FIGURE1 = """
%grammar figure1
%start stmt
stmt : IF expr THEN stmt ELSE stmt
     | IF expr THEN stmt
     | expr '?' stmt stmt
     | arr '[' expr ']' ':=' expr
     ;
expr : num | expr '+' expr ;
num  : DIGIT | num DIGIT ;
"""

FIGURE3 = """
%grammar figure3
%start S
S : T | S T ;
T : X | Y ;
X : 'a' ;
Y : 'a' 'a' 'b' ;
"""

FIGURE7 = """
%grammar figure7
%start S
S : N | N 'c' ;
N : 'n' N 'd' | 'n' N 'c' | 'n' A 'b' | 'n' B ;
A : 'a' ;
B : 'a' 'b' 'c' | 'a' 'b' 'd' ;
"""

#: §2.4's running example: the ambiguous + conflict, resolvable by %left.
PRECEDENCE_CONFLICTED = """
%grammar precedence-conflicted
%start expr
expr : expr '+' expr | num ;
num : DIGIT | num DIGIT ;
"""

PRECEDENCE_RESOLVED = """
%grammar precedence-resolved
%left '+'
%start expr
expr : expr '+' expr | num ;
num : DIGIT | num DIGIT ;
"""


def figure1() -> Grammar:
    return load_grammar(FIGURE1)


def figure3() -> Grammar:
    return load_grammar(FIGURE3)


def figure7() -> Grammar:
    return load_grammar(FIGURE7)


def precedence_conflicted() -> Grammar:
    return load_grammar(PRECEDENCE_CONFLICTED)


def precedence_resolved() -> Grammar:
    return load_grammar(PRECEDENCE_RESOLVED)


register(
    GrammarSpec(
        name="figure1",
        category="paper",
        loader=figure1,
        ambiguous=True,
        exact=True,
        paper=PaperRow(3, 9, 24, 3, True, 3, 0, 0, 0.072, 0.024),
    )
)
register(
    GrammarSpec(
        name="figure3",
        category="paper",
        loader=figure3,
        ambiguous=False,
        exact=True,
        paper=PaperRow(4, 7, 10, 1, False, 0, 1, 0, 0.010, 0.010),
    )
)
register(
    GrammarSpec(
        name="figure7",
        category="paper",
        loader=figure7,
        ambiguous=True,
        exact=True,
        paper=PaperRow(4, 10, 16, 2, True, 2, 0, 0, 0.016, 0.008),
    )
)
