"""Reconstructions of the paper's "our grammars" section of Table 1.

These are grammars the authors collected from their own projects
(abcd, simp2, xi, eqn, ambfailed01, java-ext1/2). The originals are not
published, so each is reconstructed to match its Table 1 row in kind:
the same ambiguity status, a comparable size, and — most importantly —
the same *outcome class* (all-unifying, nonunifying, or time-limit).

``ambfailed01`` is the paper's example of the §6 tradeoff: the grammar is
ambiguous, but the default search (restricted to the shortest
lookahead-sensitive path) cannot find a unifying counterexample; the
``-extendedsearch`` option can. The reconstruction engineers exactly that
situation: the conflict is reachable through two contexts, the shorter of
which is unambiguous.
"""

from __future__ import annotations

from repro.corpus.registry import GrammarSpec, PaperRow, register
from repro.grammar import Grammar, load_grammar

ABCD = """
%grammar abcd
%start s
s : AB CD | A BCD | ABC D ;
AB : 'a' 'b' ;
CD : 'c' 'd' ;
A : 'a' ;
BCD : 'b' 'c' 'd' ;
ABC : 'a' 'b' 'c' ;
D : 'd' ;
"""

SIMP2 = """
%grammar simp2
%start program
program : stmts ;
stmts : stmt | stmts ';' stmt ;
stmt : ID ':=' expr
     | IF bexpr THEN stmt
     | IF bexpr THEN stmt ELSE stmt
     | WHILE bexpr DO stmt
     | PRINT expr
     | SKIP
     | BEGIN stmts END
     | FOR ID ':=' expr TO expr DO stmt
     ;
bexpr : bexpr OR bterm | bterm ;
bterm : bterm AND bfactor | bfactor ;
bfactor : NOT bfactor
        | expr relop expr
        | TRUE
        | FALSE
        | '(' bexpr ')'
        ;
relop : '<' | '>' | '=' | '#' | '<=' | '>=' ;
expr : expr '+' term | expr '-' term | term ;
term : term '*' factor | term '/' factor | factor ;
factor : ID | NUM | '(' expr ')' | '-' factor | ID '(' args ')' ;
args : expr | args ',' expr ;
"""

XI = """
%grammar xi
%start program
program : uses decls ;
uses : uses use | %empty ;
use : USE ID ;
decls : decls decl | decl ;
decl : ID '(' params ')' rets block ;
params : %empty | paramlist ;
paramlist : param | paramlist ',' param ;
param : ID ':' type ;
rets : %empty | ':' typelist ;
typelist : type | typelist ',' type ;
type : INT | BOOL | type '[' ']' | type '[' expr ']' ;
block : '{' stmts '}' ;
stmts : stmts stmt | %empty ;
stmt : ID ':' type
     | ID ':' type '=' expr
     | lhslist '=' expr
     | IF expr block
     | IF expr block ELSE block
     | WHILE expr block
     | RETURN exprs ';'
     | block
     | ID '(' exprs ')'
     ;
lhslist : lhs | lhslist ',' lhs ;
lhs : ID | lhs '[' expr ']' | '_' ;
exprs : %empty | exprlist ;
exprlist : expr | exprlist ',' expr ;
expr : expr '+' expr | expr '&' expr
     | '-' expr
     | atom
     ;
atom : ID | NUM | TRUE | FALSE
     | atom '[' expr ']' | '(' expr ')' | ID '(' exprs ')'
     ;
"""

EQN = """
%grammar eqn
%start equation
equation : box ;
box : box OVER box | sequence ;
sequence : sequence scripted | scripted ;
scripted : mark
         | mark SUB mark
         | mark SUP mark
         | mark SUB mark SUP mark
         ;
mark : primary
     | SQRT primary
     | primary UNDERLINE
     | primary BAR
     | VEC primary
     | TILDE primary
     | DOT primary
     ;
primary : TEXT | NUM | GREEK | SYM
        | '{' box '}'
        | LEFT delim box RIGHT delim
        | PILE '{' list '}'
        | LPILE '{' list '}'
        | RPILE '{' list '}'
        | MATRIX '{' columns '}'
        | FRAC '{' box '}' '{' box '}'
        | FUNC '(' box ')'
        | SIZE NUM primary
        | FONT ID primary
        ;
delim : '(' | ')' | '[' | ']' | '|' | FLOOR | CEIL ;
columns : column | columns column ;
column : CCOL '{' list '}' | LCOL '{' list '}' | RCOL '{' list '}' ;
list : box | list ABOVE box ;
"""

AMBFAILED01 = """
%grammar ambfailed01
%start s
s : X m 'q' | Y Y m 'r' | Y Y m ;
m : single 'p' | triple ;
single : 'a' ;
triple : 'a' 'p' 'r' ;
X : 'x' ;
Y : 'y' ;
"""

#: Generic method invocation syntax grafted onto the Java base: the
#: classic ``a < b > ( c )`` overlap between relational chains and
#: generic calls. The resulting conflicts need extremely deep unifying
#: counterexamples (through the 15-level expression hierarchy), so the
#: search hits its time limit — the paper's T/L outcome for java-ext1/2.
JAVA_EXT1_EXTRAS = """
MethodInvocation : Name '<' TypeArgs '>' '(' ArgumentListOpt ')' ;
TypeArgs : TypeArg | TypeArgs ',' TypeArg ;
TypeArg : Name | Name '<' TypeArgs '>' ;
"""


def abcd() -> Grammar:
    return load_grammar(ABCD)


def simp2() -> Grammar:
    return load_grammar(SIMP2)


def xi() -> Grammar:
    return load_grammar(XI)


def eqn() -> Grammar:
    return load_grammar(EQN)


def ambfailed01() -> Grammar:
    return load_grammar(AMBFAILED01)


def java_ext1() -> Grammar:
    """A Java-like grammar extended with constructs whose conflict
    requires a very deep unifying counterexample (paper: T/L)."""
    from repro.corpus.java import java_base_text

    return load_grammar(java_base_text() + JAVA_EXT1_EXTRAS, name="java-ext1")


def java_ext2() -> Grammar:
    """A second extension with more generic-syntax overlap (paper: T/L)."""
    from repro.corpus.java import java_base_text

    extras = JAVA_EXT1_EXTRAS + """
CastExpression : '(' Name '<' TypeArgs '>' ')' UnaryExpressionNotPlusMinus ;
ClassInstanceCreationExpression : NEW Name '<' TypeArgs '>'
                                  '(' ArgumentListOpt ')' ;
TypeArg : '?' EXTENDS Name | '?' ;
"""
    return load_grammar(java_base_text() + extras, name="java-ext2")


register(
    GrammarSpec(
        name="abcd",
        category="ours",
        loader=abcd,
        ambiguous=True,
        paper=PaperRow(5, 11, 22, 3, True, 3, 0, 0, 0.024, 0.008),
    )
)
register(
    GrammarSpec(
        name="simp2",
        category="ours",
        loader=simp2,
        ambiguous=True,
        paper=PaperRow(10, 41, 70, 1, True, 1, 0, 0, 0.548, 0.548),
    )
)
register(
    GrammarSpec(
        name="xi",
        category="ours",
        loader=xi,
        ambiguous=True,
        paper=PaperRow(16, 41, 82, 6, True, 6, 0, 0, 0.155, 0.026),
    )
)
register(
    GrammarSpec(
        name="eqn",
        category="ours",
        loader=eqn,
        ambiguous=True,
        paper=PaperRow(14, 67, 133, 1, True, 1, 0, 0, 0.169, 0.169),
    )
)
register(
    GrammarSpec(
        name="ambfailed01",
        category="ours",
        loader=ambfailed01,
        ambiguous=True,
        paper=PaperRow(6, 10, 17, 1, True, 0, 1, 0, 0.010, 0.010),
        notes="ambiguous, but the restricted search cannot unify (§6 tradeoff)",
    )
)
register(
    GrammarSpec(
        name="java-ext1",
        category="ours",
        loader=java_ext1,
        ambiguous=False,
        paper=PaperRow(185, 445, 767, 2, False, 0, 0, 2, None, None),
        notes="search times out on every conflict (T/L)",
    )
)
register(
    GrammarSpec(
        name="java-ext2",
        category="ours",
        loader=java_ext2,
        ambiguous=False,
        paper=PaperRow(234, 599, 1255, 1, False, 0, 0, 1, None, None),
        notes="search times out on every conflict (T/L)",
    )
)
