"""A SQL grammar with five injected-conflict variants (BV10's SQL.1–5).

The base grammar covers the core of SQL-92 DML/DDL: SELECT with joins,
grouping, ordering and subqueries; INSERT/UPDATE/DELETE; CREATE/DROP
TABLE with column constraints; stratified boolean and arithmetic
expressions; CASE expressions and aggregate functions. The base is
conflict-free; each variant injects one defect class:

=======  ==================================================================
SQL.1    dangling ELSE inside CASE WHEN clauses — ambiguous
SQL.2    ambiguous join nesting (``join_ref JOIN join_ref``) — ambiguous
SQL.3    duplicate derivation path for the DROP TABLE name — ambiguous
SQL.4    associativity-free power operator — ambiguous
SQL.5    collapsed boolean grammar (``cond : cond AND cond``) — ambiguous
=======  ==================================================================
"""

from __future__ import annotations

from repro.corpus.inject import add_rules
from repro.corpus.registry import GrammarSpec, PaperRow, register
from repro.grammar import Grammar, load_grammar

SQL_BASE = """
%grammar sql
%start sql_list

sql_list : stmt ';' | sql_list stmt ';' ;

stmt : select_stmt
     | insert_stmt
     | update_stmt
     | delete_stmt
     | create_stmt
     | drop_stmt
     ;

select_stmt : SELECT opt_distinct select_list from_clause opt_where
              opt_group opt_having opt_order ;

opt_distinct : DISTINCT | ALL | %empty ;

select_list : '*' | sel_items ;
sel_items : sel_item | sel_items ',' sel_item ;
sel_item : expr | expr AS ID | ID '.' '*' ;

from_clause : FROM table_refs ;
table_refs : join_ref | table_refs ',' join_ref ;
join_ref : table_ref
         | join_ref JOIN table_ref ON cond
         | join_ref INNER JOIN table_ref ON cond
         | join_ref LEFT JOIN table_ref ON cond
         | join_ref RIGHT JOIN table_ref ON cond
         ;
table_ref : ID | ID ID | ID AS ID | '(' select_stmt ')' ID ;

opt_where : WHERE cond | %empty ;
opt_group : GROUP BY column_list | %empty ;
opt_having : HAVING cond | %empty ;
opt_order : ORDER BY order_items | %empty ;
order_items : order_item | order_items ',' order_item ;
order_item : expr | expr ASC | expr DESC ;
column_list : column | column_list ',' column ;
column : ID | ID '.' ID ;

cond : cond OR andcond | andcond ;
andcond : andcond AND notcond | notcond ;
notcond : NOT notcond | predicate ;
predicate : expr relop expr
          | expr IS NULL
          | expr IS NOT NULL
          | expr LIKE STRING
          | expr IN '(' select_stmt ')'
          | expr IN '(' value_list ')'
          | EXISTS '(' select_stmt ')'
          | '(' cond ')'
          ;
relop : '=' | '<' | '>' | '<=' | '>=' | '<>' ;

expr : expr '+' term | expr '-' term | term ;
term : term '*' factor | term '/' factor | factor ;
factor : value
       | column
       | '(' expr ')'
       | '-' factor
       | func_call
       | case_expr
       ;
func_call : COUNT '(' '*' ')'
          | COUNT '(' expr ')'
          | SUM '(' expr ')'
          | AVG '(' expr ')'
          | MIN '(' expr ')'
          | MAX '(' expr ')'
          | ID '(' value_list ')'
          ;
case_expr : CASE when_clauses opt_else END ;
when_clauses : when_clause | when_clauses when_clause ;
when_clause : WHEN cond THEN expr ;
opt_else : ELSE expr | %empty ;

value : NUM | STRING | NULL | TRUE | FALSE | PARAM ;
value_list : expr | value_list ',' expr ;

insert_stmt : INSERT INTO ID opt_columns VALUES '(' value_list ')'
            | INSERT INTO ID opt_columns select_stmt
            ;
opt_columns : '(' column_list ')' | %empty ;

update_stmt : UPDATE ID SET set_items opt_where ;
set_items : set_item | set_items ',' set_item ;
set_item : ID '=' expr ;

delete_stmt : DELETE FROM ID opt_where ;

create_stmt : CREATE TABLE ID '(' col_defs ')' ;
col_defs : col_def | col_defs ',' col_def ;
col_def : ID type_name col_constraints ;
type_name : INT_T | FLOAT_T | CHAR_T '(' NUM ')' | VARCHAR_T '(' NUM ')'
          | DATE_T | BOOLEAN_T ;
col_constraints : col_constraints col_constraint | %empty ;
col_constraint : NOT NULL | PRIMARY KEY | UNIQUE | DEFAULT value ;

drop_stmt : DROP TABLE ID ;
"""


def sql_base_text() -> str:
    """The conflict-free base SQL grammar text."""
    return SQL_BASE


def sql_base() -> Grammar:
    return load_grammar(SQL_BASE, name="sql-base")


def _sql1() -> Grammar:
    text = add_rules(SQL_BASE, "when_clause : WHEN cond THEN expr ELSE expr ;")
    return load_grammar(text, name="SQL.1")


def _sql2() -> Grammar:
    text = add_rules(SQL_BASE, "join_ref : join_ref JOIN join_ref ON cond ;")
    return load_grammar(text, name="SQL.2")


def _sql3() -> Grammar:
    text = add_rules(SQL_BASE, "drop_stmt : DROP TABLE qualified ;\nqualified : ID ;")
    return load_grammar(text, name="SQL.3")


def _sql4() -> Grammar:
    text = add_rules(SQL_BASE, "factor : factor '^' factor ;")
    return load_grammar(text, name="SQL.4")


def _sql5() -> Grammar:
    text = add_rules(SQL_BASE, "cond : cond AND cond ;")
    return load_grammar(text, name="SQL.5")


register(
    GrammarSpec(
        name="SQL.1",
        category="bv10",
        loader=_sql1,
        ambiguous=True,
        paper=PaperRow(8, 23, 46, 1, True, 1, 0, 0, 0.024, 0.024),
    )
)
register(
    GrammarSpec(
        name="SQL.2",
        category="bv10",
        loader=_sql2,
        ambiguous=True,
        paper=PaperRow(29, 81, 151, 1, True, 1, 0, 0, 0.060, 0.060),
    )
)
register(
    GrammarSpec(
        name="SQL.3",
        category="bv10",
        loader=_sql3,
        ambiguous=True,
        paper=PaperRow(29, 81, 149, 1, True, 1, 0, 0, 0.024, 0.024),
    )
)
register(
    GrammarSpec(
        name="SQL.4",
        category="bv10",
        loader=_sql4,
        ambiguous=True,
        paper=PaperRow(29, 81, 151, 1, True, 1, 0, 0, 0.031, 0.031),
    )
)
register(
    GrammarSpec(
        name="SQL.5",
        category="bv10",
        loader=_sql5,
        ambiguous=True,
        paper=PaperRow(29, 81, 151, 1, True, 1, 0, 0, 0.030, 0.030),
    )
)
