"""The non-LALR fixture family: LR(1)-but-not-LALR(1) grammars.

These are the "mysterious reduce/reduce conflict" grammars of the
dragon-book tradition: each is unambiguous and canonical-LR(1)
conflict-free, yet LALR's merging of same-core LR(1) states unions
lookahead sets that were disjoint in every canonical member and thereby
*manufactures* reduce/reduce conflicts. They pin the minimal-LR(1)
backend (:mod:`repro.automaton.ielr`) end to end: the splitter must
dissolve exactly these conflicts, and the provenance classifier must
label each one an *LALR merge artifact* naming the split states.

``nonlalr03-genuine`` is the control sibling: structurally similar, but
its reduce/reduce conflict survives canonical LR(1) (both reductions
share the lookahead in a single canonical state), so no amount of
splitting removes it and the classifier must answer *genuine*.
"""

from __future__ import annotations

from repro.corpus.registry import GrammarSpec, register
from repro.grammar import Grammar, load_grammar

#: The textbook minimal non-LALR grammar. Canonical LR(1) keeps the two
#: ``c``-kernel states apart (lookaheads {d,e} vs {e,d} swapped by
#: context); LALR merges them and reports R/R on both d and e.
NONLALR01 = """
%grammar nonlalr01
%start s
s : 'a' X 'd' | 'a' Y 'e' | 'b' X 'e' | 'b' Y 'd' ;
X : 'c' ;
Y : 'c' ;
"""

#: A deeper variant: the offending reductions sit one derivation level
#: below the context split, so dissolving the conflict requires the
#: goto-congruence pass to propagate the split through the ``c``-chain
#: (splitting one state is not enough — its predecessor must split too).
NONLALR02 = """
%grammar nonlalr02
%start s
s : 'a' X 'a' | 'b' X 'b' | 'a' Y 'b' | 'b' Y 'a' ;
X : 'c' XP ;
Y : 'c' YP ;
XP : 'c' ;
YP : 'c' ;
"""

#: The genuine control: X and Y both reduce from ``c`` under the *same*
#: lookahead ``a`` in one canonical LR(1) state, so the R/R conflict is
#: not a merge artifact and must classify as genuine.
NONLALR03_GENUINE = """
%grammar nonlalr03-genuine
%start s
s : X 'a' | Y 'a' ;
X : 'c' ;
Y : 'c' ;
"""


def _load_nonlalr01() -> Grammar:
    return load_grammar(NONLALR01, name="nonlalr01")


def _load_nonlalr02() -> Grammar:
    return load_grammar(NONLALR02, name="nonlalr02")


def _load_nonlalr03_genuine() -> Grammar:
    return load_grammar(NONLALR03_GENUINE, name="nonlalr03-genuine")


register(
    GrammarSpec(
        name="nonlalr01",
        category="nonlalr",
        loader=_load_nonlalr01,
        ambiguous=False,
        notes="LR(1) but not LALR(1); both R/R conflicts are merge artifacts",
    )
)
register(
    GrammarSpec(
        name="nonlalr02",
        category="nonlalr",
        loader=_load_nonlalr02,
        ambiguous=False,
        notes="non-LALR with a two-level split (goto congruence propagation)",
    )
)
register(
    GrammarSpec(
        name="nonlalr03-genuine",
        category="nonlalr",
        loader=_load_nonlalr03_genuine,
        ambiguous=True,
        notes="control sibling: the R/R conflict survives canonical LR(1)",
    )
)
