"""An ANSI C grammar with five injected-conflict variants (BV10 C.1–5).

The base grammar follows the classic ANSI C yacc grammar (Jeff Lee,
1985): the full 15-level expression hierarchy, declarations with
storage/type specifiers and qualifiers, struct/union/enum specifiers,
pointer declarators, abstract declarators, initializers, and the complete
statement set. As in real C parsers, typedef names are a distinct
``TYPE_NAME`` token (lexer feedback), which keeps casts unambiguous. The
dangling else is resolved with the standard precedence device, so the
base is conflict-free.

Variants:

=====  =====================================================================
C.1    remove the else precedence — the dangling else, ambiguous
C.2    collapsed comma-expression layer — ambiguous
C.3    collapsed logical-and layer — ambiguous
C.4    optional comma in initializer lists — ambiguous, but the unifying
       counterexample needs a long chain of production steps (paper: T/L)
C.5    duplicate derivation path for goto labels — ambiguous reduce/reduce
=====  =====================================================================
"""

from __future__ import annotations

from repro.corpus.inject import add_rules, drop_directive, replace_rule
from repro.corpus.registry import GrammarSpec, PaperRow, register
from repro.grammar import Grammar, load_grammar

C_BASE = """
%grammar c
%start translation_unit
%nonassoc NOELSE
%nonassoc ELSE

primary_expression : IDENTIFIER
                   | CONSTANT
                   | STRING_LITERAL
                   | '(' expression ')'
                   ;

postfix_expression : primary_expression
                   | postfix_expression '[' expression ']'
                   | postfix_expression '(' ')'
                   | postfix_expression '(' argument_expression_list ')'
                   | postfix_expression '.' IDENTIFIER
                   | postfix_expression PTR_OP IDENTIFIER
                   | postfix_expression INC_OP
                   | postfix_expression DEC_OP
                   ;

argument_expression_list : assignment_expression
                         | argument_expression_list ',' assignment_expression
                         ;

unary_expression : postfix_expression
                 | INC_OP unary_expression
                 | DEC_OP unary_expression
                 | unary_operator cast_expression
                 | SIZEOF unary_expression
                 | SIZEOF '(' type_name ')'
                 ;

unary_operator : '&' | '*' | '+' | '-' | '~' | '!' ;

cast_expression : unary_expression
                | '(' type_name ')' cast_expression
                ;

multiplicative_expression : cast_expression
                          | multiplicative_expression '*' cast_expression
                          | multiplicative_expression '/' cast_expression
                          | multiplicative_expression '%' cast_expression
                          ;

additive_expression : multiplicative_expression
                    | additive_expression '+' multiplicative_expression
                    | additive_expression '-' multiplicative_expression
                    ;

shift_expression : additive_expression
                 | shift_expression LEFT_OP additive_expression
                 | shift_expression RIGHT_OP additive_expression
                 ;

relational_expression : shift_expression
                      | relational_expression '<' shift_expression
                      | relational_expression '>' shift_expression
                      | relational_expression LE_OP shift_expression
                      | relational_expression GE_OP shift_expression
                      ;

equality_expression : relational_expression
                    | equality_expression EQ_OP relational_expression
                    | equality_expression NE_OP relational_expression
                    ;

and_expression : equality_expression
               | and_expression '&' equality_expression
               ;

exclusive_or_expression : and_expression
                        | exclusive_or_expression '^' and_expression
                        ;

inclusive_or_expression : exclusive_or_expression
                        | inclusive_or_expression '|' exclusive_or_expression
                        ;

logical_and_expression : inclusive_or_expression
                       | logical_and_expression AND_OP inclusive_or_expression
                       ;

logical_or_expression : logical_and_expression
                      | logical_or_expression OR_OP logical_and_expression
                      ;

conditional_expression : logical_or_expression
                       | logical_or_expression '?' expression ':' conditional_expression
                       ;

assignment_expression : conditional_expression
                      | unary_expression assignment_operator assignment_expression
                      ;

assignment_operator : '=' | MUL_ASSIGN | DIV_ASSIGN | MOD_ASSIGN | ADD_ASSIGN
                    | SUB_ASSIGN | LEFT_ASSIGN | RIGHT_ASSIGN | AND_ASSIGN
                    | XOR_ASSIGN | OR_ASSIGN
                    ;

expression : assignment_expression
           | expression ',' assignment_expression
           ;

constant_expression : conditional_expression ;

declaration : declaration_specifiers ';'
            | declaration_specifiers init_declarator_list ';'
            ;

declaration_specifiers : storage_class_specifier
                       | storage_class_specifier declaration_specifiers
                       | type_specifier
                       | type_specifier declaration_specifiers
                       | type_qualifier
                       | type_qualifier declaration_specifiers
                       ;

init_declarator_list : init_declarator
                     | init_declarator_list ',' init_declarator
                     ;

init_declarator : declarator
                | declarator '=' initializer
                ;

storage_class_specifier : TYPEDEF | EXTERN | STATIC | AUTO | REGISTER ;

type_specifier : VOID | CHAR | SHORT | INT | LONG | FLOAT | DOUBLE
               | SIGNED | UNSIGNED
               | struct_or_union_specifier
               | enum_specifier
               | TYPE_NAME
               ;

struct_or_union_specifier : struct_or_union IDENTIFIER '{' struct_declaration_list '}'
                          | struct_or_union '{' struct_declaration_list '}'
                          | struct_or_union IDENTIFIER
                          ;

struct_or_union : STRUCT | UNION ;

struct_declaration_list : struct_declaration
                        | struct_declaration_list struct_declaration
                        ;

struct_declaration : specifier_qualifier_list struct_declarator_list ';' ;

specifier_qualifier_list : type_specifier specifier_qualifier_list
                         | type_specifier
                         | type_qualifier specifier_qualifier_list
                         | type_qualifier
                         ;

struct_declarator_list : struct_declarator
                       | struct_declarator_list ',' struct_declarator
                       ;

struct_declarator : declarator
                  | ':' constant_expression
                  | declarator ':' constant_expression
                  ;

enum_specifier : ENUM '{' enumerator_list '}'
               | ENUM IDENTIFIER '{' enumerator_list '}'
               | ENUM IDENTIFIER
               ;

enumerator_list : enumerator
                | enumerator_list ',' enumerator
                ;

enumerator : IDENTIFIER
           | IDENTIFIER '=' constant_expression
           ;

type_qualifier : CONST | VOLATILE ;

declarator : pointer direct_declarator
           | direct_declarator
           ;

direct_declarator : IDENTIFIER
                  | '(' declarator ')'
                  | direct_declarator '[' constant_expression ']'
                  | direct_declarator '[' ']'
                  | direct_declarator '(' parameter_type_list ')'
                  | direct_declarator '(' identifier_list ')'
                  | direct_declarator '(' ')'
                  ;

pointer : '*'
        | '*' type_qualifier_list
        | '*' pointer
        | '*' type_qualifier_list pointer
        ;

type_qualifier_list : type_qualifier
                    | type_qualifier_list type_qualifier
                    ;

parameter_type_list : parameter_list
                    | parameter_list ',' ELLIPSIS
                    ;

parameter_list : parameter_declaration
               | parameter_list ',' parameter_declaration
               ;

parameter_declaration : declaration_specifiers declarator
                      | declaration_specifiers abstract_declarator
                      | declaration_specifiers
                      ;

identifier_list : IDENTIFIER
                | identifier_list ',' IDENTIFIER
                ;

type_name : specifier_qualifier_list
          | specifier_qualifier_list abstract_declarator
          ;

abstract_declarator : pointer
                    | direct_abstract_declarator
                    | pointer direct_abstract_declarator
                    ;

direct_abstract_declarator : '(' abstract_declarator ')'
                           | '[' ']'
                           | '[' constant_expression ']'
                           | direct_abstract_declarator '[' ']'
                           | direct_abstract_declarator '[' constant_expression ']'
                           | '(' ')'
                           | '(' parameter_type_list ')'
                           | direct_abstract_declarator '(' ')'
                           | direct_abstract_declarator '(' parameter_type_list ')'
                           ;

initializer : assignment_expression
            | '{' initializer_list '}'
            | '{' initializer_list ',' '}'
            ;

initializer_list : initializer
                 | initializer_list ',' initializer
                 ;

statement : labeled_statement
          | compound_statement
          | expression_statement
          | selection_statement
          | iteration_statement
          | jump_statement
          ;

labeled_statement : IDENTIFIER ':' statement
                  | CASE constant_expression ':' statement
                  | DEFAULT ':' statement
                  ;

compound_statement : '{' '}'
                   | '{' statement_list '}'
                   | '{' declaration_list '}'
                   | '{' declaration_list statement_list '}'
                   ;

declaration_list : declaration
                 | declaration_list declaration
                 ;

statement_list : statement
               | statement_list statement
               ;

expression_statement : ';'
                     | expression ';'
                     ;

selection_statement : IF '(' expression ')' statement %prec NOELSE
                    | IF '(' expression ')' statement ELSE statement
                    | SWITCH '(' expression ')' statement
                    ;

iteration_statement : WHILE '(' expression ')' statement
                    | DO statement WHILE '(' expression ')' ';'
                    | FOR '(' expression_statement expression_statement ')' statement
                    | FOR '(' expression_statement expression_statement expression ')' statement
                    ;

jump_statement : GOTO IDENTIFIER ';'
               | CONTINUE ';'
               | BREAK ';'
               | RETURN ';'
               | RETURN expression ';'
               ;

translation_unit : external_declaration
                 | translation_unit external_declaration
                 ;

external_declaration : function_definition
                     | declaration
                     ;

function_definition : declaration_specifiers declarator declaration_list compound_statement
                    | declaration_specifiers declarator compound_statement
                    | declarator declaration_list compound_statement
                    | declarator compound_statement
                    ;
"""


def c_base_text() -> str:
    """The conflict-free base ANSI C grammar text."""
    return C_BASE


def c_base() -> Grammar:
    return load_grammar(C_BASE, name="c-base")


def _c1() -> Grammar:
    text = drop_directive(C_BASE, "%nonassoc NOELSE")
    text = drop_directive(text, "%nonassoc ELSE")
    text = text.replace(
        "selection_statement : IF '(' expression ')' statement %prec NOELSE",
        "selection_statement : IF '(' expression ')' statement",
    )
    return load_grammar(text, name="C.1")


def _c2() -> Grammar:
    text = add_rules(C_BASE, "expression : expression ',' expression ;")
    return load_grammar(text, name="C.2")


def _c3() -> Grammar:
    text = add_rules(
        C_BASE,
        "logical_and_expression : logical_and_expression AND_OP "
        "logical_and_expression ;",
    )
    return load_grammar(text, name="C.3")


def _c4() -> Grammar:
    text = replace_rule(
        C_BASE,
        "initializer_list : initializer\n"
        "                 | initializer_list ',' initializer\n"
        "                 ;",
        "initializer_list : initializer\n"
        "                 | initializer_list opt_comma initializer\n"
        "                 ;\n"
        "opt_comma : ',' | %empty ;",
    )
    return load_grammar(text, name="C.4")


def _c5() -> Grammar:
    text = add_rules(
        C_BASE,
        "jump_statement : GOTO label_name ';' ;\nlabel_name : IDENTIFIER ;",
    )
    return load_grammar(text, name="C.5")


register(
    GrammarSpec(
        name="C.1",
        category="bv10",
        loader=_c1,
        ambiguous=True,
        paper=PaperRow(64, 214, 369, 1, True, 1, 0, 0, 0.327, 0.327),
    )
)
register(
    GrammarSpec(
        name="C.2",
        category="bv10",
        loader=_c2,
        ambiguous=True,
        paper=PaperRow(64, 214, 368, 1, True, 1, 0, 0, 0.219, 0.219),
    )
)
register(
    GrammarSpec(
        name="C.3",
        category="bv10",
        loader=_c3,
        ambiguous=True,
        paper=PaperRow(64, 214, 368, 4, True, 4, 0, 0, 1.015, 0.254),
    )
)
register(
    GrammarSpec(
        name="C.4",
        category="bv10",
        loader=_c4,
        ambiguous=True,
        paper=PaperRow(64, 214, 369, 1, True, 0, 0, 1, None, None),
        notes="ambiguous, but the unifying search times out (paper: T/L)",
    )
)
register(
    GrammarSpec(
        name="C.5",
        category="bv10",
        loader=_c5,
        ambiguous=True,
        paper=PaperRow(64, 214, 370, 1, True, 1, 0, 0, 0.212, 0.212),
    )
)
