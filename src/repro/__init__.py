"""repro — Finding counterexamples from parsing conflicts (PLDI 2015).

This package is a from-scratch reproduction of the counterexample-finding
algorithm of Isradisaikul and Myers, together with the entire LALR
parser-generator substrate it runs on.

The most convenient entry points:

* :func:`repro.grammar.load_grammar` — parse a yacc-like grammar text.
* :class:`repro.automaton.LALRAutomaton` — build the LALR(1) automaton
  and parse tables, exposing any shift/reduce and reduce/reduce conflicts.
* :class:`repro.core.CounterexampleFinder` — explain each conflict with a
  unifying or nonunifying counterexample.
* :func:`repro.core.explain_conflicts` — one-call convenience wrapper that
  returns formatted, CUP-style conflict reports for a grammar.

Submodules are imported lazily so that, e.g., loading a grammar does not
pull in the whole search machinery.
"""

from typing import Any

__version__ = "1.0.0"

__all__ = [
    "Grammar",
    "load_grammar",
    "LALRAutomaton",
    "build_lalr",
    "CounterexampleFinder",
    "explain_conflicts",
    "__version__",
]

_LAZY_EXPORTS = {
    "Grammar": ("repro.grammar", "Grammar"),
    "load_grammar": ("repro.grammar", "load_grammar"),
    "LALRAutomaton": ("repro.automaton", "LALRAutomaton"),
    "build_lalr": ("repro.automaton", "build_lalr"),
    "CounterexampleFinder": ("repro.core", "CounterexampleFinder"),
    "explain_conflicts": ("repro.core", "explain_conflicts"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value
