"""Grammar hygiene transforms and structural metrics.

Parser generators conventionally warn about or remove *useless* symbols
before table construction; this module provides those transforms plus the
structural metrics used by the benchmark reports:

* :func:`remove_unreachable` / :func:`remove_nonproductive` /
  :func:`reduce_grammar` — the classic useless-symbol eliminations;
  the reduced grammar derives exactly the same terminal language;
* :func:`unit_productions` / :func:`left_recursive_nonterminals` /
  :func:`has_derivation_cycles` — structural probes (a grammar with a
  derivation cycle ``A =>+ A`` is infinitely ambiguous whenever ``A`` is
  reachable and productive, which the counterexample machinery surfaces
  as unifying counterexamples with nested unit derivations);
* :class:`GrammarMetrics` — the size numbers reported in Table 1 plus a
  few more for the scalability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammar.analysis import GrammarAnalysis
from repro.grammar.grammar import Grammar, Production
from repro.grammar.symbols import Nonterminal, Symbol, Terminal


def _rebuild(grammar: Grammar, keep: set[Nonterminal], name_suffix: str) -> Grammar:
    """A new grammar containing only productions over *keep* nonterminals."""
    productions: list[
        tuple[Nonterminal, tuple[Symbol, ...], Terminal | None, int | None]
    ] = []
    for production in grammar.user_productions():
        if production.lhs not in keep:
            continue
        if any(
            symbol.is_nonterminal and symbol not in keep
            for symbol in production.rhs
        ):
            continue
        productions.append(
            (
                production.lhs,
                production.rhs,
                production.prec_override,
                production.line,
            )
        )
    return Grammar(
        productions,
        start=grammar.start,
        precedence=grammar.precedence.copy(),
        name=f"{grammar.name}{name_suffix}",
        token_declarations=dict(grammar.token_declarations),
    )


def remove_nonproductive(grammar: Grammar) -> Grammar:
    """Drop nonterminals that cannot derive any terminal string.

    Raises :class:`ValueError` if the start symbol itself is
    nonproductive (the language would be empty).
    """
    nonproductive = grammar.nonproductive_nonterminals
    if grammar.start in nonproductive:
        raise ValueError(f"start symbol {grammar.start} derives no terminal string")
    keep = {
        nonterminal
        for nonterminal in grammar.nonterminals
        if nonterminal not in nonproductive
    }
    return _rebuild(grammar, keep, name_suffix="")


def remove_unreachable(grammar: Grammar) -> Grammar:
    """Drop nonterminals not reachable from the start symbol."""
    unreachable = grammar.unreachable_nonterminals
    keep = {
        nonterminal
        for nonterminal in grammar.nonterminals
        if nonterminal not in unreachable
    }
    return _rebuild(grammar, keep, name_suffix="")


def reduce_grammar(grammar: Grammar) -> Grammar:
    """Remove nonproductive then unreachable symbols (the standard order:
    removing nonproductive symbols can make others unreachable)."""
    return remove_unreachable(remove_nonproductive(grammar))


# --------------------------------------------------------------------- #
# Structural probes


def unit_productions(grammar: Grammar) -> list[Production]:
    """Productions of the form ``A -> B`` with ``B`` a nonterminal."""
    return [
        production
        for production in grammar.user_productions()
        if len(production.rhs) == 1 and production.rhs[0].is_nonterminal
    ]


def left_recursive_nonterminals(grammar: Grammar) -> frozenset[Nonterminal]:
    """Nonterminals ``A`` with ``A =>+ A γ`` (through nullable prefixes)."""
    analysis = GrammarAnalysis(grammar)
    # A directly left-reaches B when some production A -> α B γ has a
    # nullable α; take the transitive closure and look for self-loops.
    reaches: dict[Nonterminal, set[Nonterminal]] = {
        nonterminal: set() for nonterminal in grammar.nonterminals
    }
    for production in grammar.productions:
        for symbol in production.rhs:
            if symbol.is_nonterminal:
                reaches[production.lhs].add(symbol)  # type: ignore[arg-type]
            if not (symbol.is_nonterminal and symbol in analysis.nullable):
                break
    changed = True
    while changed:
        changed = False
        for nonterminal, targets in reaches.items():
            expansion = set()
            for target in targets:
                expansion |= reaches[target]
            before = len(targets)
            targets |= expansion
            if len(targets) != before:
                changed = True
    return frozenset(
        nonterminal
        for nonterminal, targets in reaches.items()
        if nonterminal in targets
    )


def has_derivation_cycles(grammar: Grammar) -> bool:
    """Whether some ``A =>+ A`` (unit/epsilon cycling) exists.

    Such a cycle makes the grammar infinitely ambiguous as soon as ``A``
    participates in a sentence.
    """
    analysis = GrammarAnalysis(grammar)
    # A =>1 B when A -> α B β with α and β nullable.
    edges: dict[Nonterminal, set[Nonterminal]] = {
        nonterminal: set() for nonterminal in grammar.nonterminals
    }
    for production in grammar.productions:
        for index, symbol in enumerate(production.rhs):
            if not symbol.is_nonterminal:
                continue
            rest_nullable = all(
                other.is_nonterminal and other in analysis.nullable
                for position, other in enumerate(production.rhs)
                if position != index
            )
            if rest_nullable:
                edges[production.lhs].add(symbol)  # type: ignore[arg-type]
    # Cycle detection via DFS colouring.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {nonterminal: WHITE for nonterminal in edges}

    def visit(node: Nonterminal) -> bool:
        colour[node] = GREY
        for successor in edges[node]:
            if colour[successor] == GREY:
                return True
            if colour[successor] == WHITE and visit(successor):
                return True
        colour[node] = BLACK
        return False

    return any(
        colour[nonterminal] == WHITE and visit(nonterminal)
        for nonterminal in list(edges)
    )


# --------------------------------------------------------------------- #
# Metrics


@dataclass(frozen=True)
class GrammarMetrics:
    """Structural size/shape numbers for one grammar."""

    nonterminals: int
    terminals: int
    productions: int
    nullable_nonterminals: int
    unit_productions: int
    left_recursive: int
    max_rhs_length: int
    mean_rhs_length: float
    has_cycles: bool

    @classmethod
    def of(cls, grammar: Grammar) -> "GrammarMetrics":
        analysis = GrammarAnalysis(grammar)
        user = list(grammar.user_productions())
        lengths = [len(production.rhs) for production in user]
        return cls(
            nonterminals=grammar.num_user_nonterminals,
            terminals=len([t for t in grammar.terminals if str(t) != "$"]),
            productions=len(user),
            nullable_nonterminals=len(
                [n for n in analysis.nullable if n != grammar.augmented_start]
            ),
            unit_productions=len(unit_productions(grammar)),
            left_recursive=len(left_recursive_nonterminals(grammar)),
            max_rhs_length=max(lengths, default=0),
            mean_rhs_length=(sum(lengths) / len(lengths)) if lengths else 0.0,
            has_cycles=has_derivation_cycles(grammar),
        )

    def describe(self) -> str:
        return (
            f"{self.nonterminals} nonterminals, {self.terminals} terminals, "
            f"{self.productions} productions "
            f"(max rhs {self.max_rhs_length}, mean {self.mean_rhs_length:.1f}); "
            f"{self.nullable_nonterminals} nullable, "
            f"{self.unit_productions} unit productions, "
            f"{self.left_recursive} left-recursive"
            + ("; has derivation cycles" if self.has_cycles else "")
        )
