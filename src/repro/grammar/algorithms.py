"""Table-construction algorithm names and validation.

The system builds parse tables with one of three constructions:

* ``"lalr"`` — the classic LALR(1) merge of canonical LR(1) states that
  share an LR(0) core (the paper's setting, and the default);
* ``"ielr"`` — minimal LR(1): LALR-sized tables except where core
  merging *manufactures* reduce/reduce conflicts, in which case exactly
  those states are split (:mod:`repro.automaton.ielr`);
* ``"lr1"`` — canonical LR(1), one state per distinct LR(1) kernel.

This module lives in the grammar layer (not :mod:`repro.automaton`) so
the DSL's ``%algorithm`` directive, :class:`~repro.grammar.builder.
GrammarBuilder`, and the CLI can all validate names through one routine
without importing automaton code. An unknown name raises
:class:`UnknownAlgorithmError`, a :class:`~repro.grammar.errors.
GrammarError` subclass — so it carries a source line when it came from
grammar text and flows through the CLI's structured error path instead
of surfacing as a bare ``ValueError``.
"""

from __future__ import annotations

from repro.grammar.errors import GrammarError

#: Recognised table-construction algorithms, weakest first.
TABLE_ALGORITHMS: tuple[str, ...] = ("lalr", "ielr", "lr1")

#: The construction used when a grammar does not say otherwise.
DEFAULT_ALGORITHM = "lalr"

#: Accepted spellings, normalised to the canonical names above.
_ALIASES: dict[str, str] = {
    "lalr": "lalr",
    "lalr1": "lalr",
    "lalr(1)": "lalr",
    "ielr": "ielr",
    "ielr1": "ielr",
    "ielr(1)": "ielr",
    "minimal": "ielr",
    "minimal-lr1": "ielr",
    "lr1": "lr1",
    "lr(1)": "lr1",
    "canonical": "lr1",
    "canonical-lr1": "lr1",
}


class UnknownAlgorithmError(GrammarError):
    """An unrecognised table-construction algorithm name."""


def normalize_algorithm(name: str, line: int | None = None) -> str:
    """Resolve *name* to a canonical algorithm name, or raise.

    Raises:
        UnknownAlgorithmError: if *name* (case-insensitively, with
            common aliases) is not a recognised construction. *line* is
            attached for grammar-text provenance.
    """
    canonical = _ALIASES.get(name.strip().lower())
    if canonical is None:
        known = ", ".join(TABLE_ALGORITHMS)
        raise UnknownAlgorithmError(
            f"unknown table algorithm {name!r} (expected one of: {known})",
            line=line,
        )
    return canonical
