"""Grammar symbols: terminals and nonterminals.

Symbols are small immutable value objects compared by kind and name. Two
special terminals exist:

* :data:`END_OF_INPUT` — the ``$`` end marker appended by grammar
  augmentation and used in lookahead sets.
* There is deliberately *no* epsilon symbol; an empty production is a
  production whose right-hand side is the empty tuple.
"""

from __future__ import annotations

from typing import Union


class Symbol:
    """Abstract base for grammar symbols.

    Symbols are interned per name within their class so identity comparison
    is valid after construction, which keeps the hot paths of automaton
    construction cheap.
    """

    __slots__ = ("name", "_hash")

    _instances: dict[str, "Symbol"]

    def __new__(cls, name: str) -> "Symbol":
        if cls is Symbol:
            raise TypeError("instantiate Terminal or Nonterminal, not Symbol")
        try:
            return cls._instances[name]
        except KeyError:
            instance = super().__new__(cls)
            object.__setattr__(instance, "name", name)
            object.__setattr__(instance, "_hash", hash((cls.__name__, name)))
            cls._instances[name] = instance
            return instance

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        cls._instances = {}

    @property
    def is_terminal(self) -> bool:
        return isinstance(self, Terminal)

    @property
    def is_nonterminal(self) -> bool:
        return isinstance(self, Nonterminal)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other

    def __reduce__(self) -> tuple:
        # Interning means default pickling would break identity equality
        # (and ``__slots__`` + immutable ``__setattr__`` break it outright);
        # reconstruct through ``__new__`` so unpickling re-interns.
        return (type(self), (self.name,))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __lt__(self, other: "Symbol") -> bool:
        """Order symbols for deterministic output: terminals first, then by name."""
        if not isinstance(other, Symbol):
            return NotImplemented
        return (self.is_nonterminal, self.name) < (other.is_nonterminal, other.name)


class Terminal(Symbol):
    """A terminal symbol (token) of the grammar."""

    __slots__ = ()


class Nonterminal(Symbol):
    """A nonterminal symbol of the grammar."""

    __slots__ = ()


#: The end-of-input marker appended by grammar augmentation.
END_OF_INPUT = Terminal("$")

SymbolLike = Union[Symbol, str]


def as_symbol(value: SymbolLike, nonterminals: frozenset[str] | set[str]) -> Symbol:
    """Coerce a name to a :class:`Symbol`, resolving by membership in *nonterminals*.

    Names present in *nonterminals* become :class:`Nonterminal`; all others
    become :class:`Terminal`. Existing symbols pass through unchanged.
    """
    if isinstance(value, Symbol):
        return value
    if value in nonterminals:
        return Nonterminal(value)
    return Terminal(value)
