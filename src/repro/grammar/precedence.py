"""Operator precedence and associativity declarations.

LALR parser generators let users resolve shift/reduce conflicts with
``%left`` / ``%right`` / ``%nonassoc`` declarations (§2.4 of the paper).
A production's precedence defaults to that of its rightmost terminal, and
may be overridden per production (the yacc ``%prec`` directive).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.grammar.errors import DuplicateDeclarationError
from repro.grammar.symbols import Symbol, Terminal


class Associativity(enum.Enum):
    """Associativity of a precedence level."""

    LEFT = "left"
    RIGHT = "right"
    NONASSOC = "nonassoc"


@dataclass(frozen=True)
class PrecedenceLevel:
    """A single precedence level: its rank (higher binds tighter) and associativity."""

    rank: int
    associativity: Associativity


@dataclass
class PrecedenceTable:
    """Mapping from terminals to precedence levels.

    Levels are declared lowest-precedence first, mirroring the order of
    ``%left``/``%right``/``%nonassoc`` lines in a yacc grammar file.
    """

    _levels: dict[Terminal, PrecedenceLevel] = field(default_factory=dict)
    _next_rank: int = 1

    def declare(self, associativity: Associativity, terminals: Iterable[Terminal]) -> PrecedenceLevel:
        """Declare one precedence level for *terminals*; returns the new level."""
        level = PrecedenceLevel(self._next_rank, associativity)
        self._next_rank += 1
        for terminal in terminals:
            if terminal in self._levels:
                raise DuplicateDeclarationError(
                    f"terminal {terminal} already has a precedence level"
                )
            self._levels[terminal] = level
        return level

    def level_of(self, terminal: Terminal) -> PrecedenceLevel | None:
        """The precedence level of *terminal*, or ``None`` if undeclared."""
        return self._levels.get(terminal)

    def production_level(
        self, rhs: Sequence[Symbol], override: Terminal | None = None
    ) -> PrecedenceLevel | None:
        """The precedence level of a production with right-hand side *rhs*.

        The ``%prec`` *override* terminal wins if given; otherwise the
        rightmost terminal of the production determines the level.
        """
        if override is not None:
            return self.level_of(override)
        for symbol in reversed(rhs):
            if isinstance(symbol, Terminal):
                return self.level_of(symbol)
        return None

    def __contains__(self, terminal: Terminal) -> bool:
        return terminal in self._levels

    def __len__(self) -> int:
        return len(self._levels)

    def copy(self) -> "PrecedenceTable":
        table = PrecedenceTable()
        table._levels = dict(self._levels)
        table._next_rank = self._next_rank
        return table
