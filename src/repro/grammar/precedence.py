"""Operator precedence and associativity declarations.

LALR parser generators let users resolve shift/reduce conflicts with
``%left`` / ``%right`` / ``%nonassoc`` declarations (§2.4 of the paper).
A production's precedence defaults to that of its rightmost terminal, and
may be overridden per production (the yacc ``%prec`` directive).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.grammar.errors import DuplicateDeclarationError
from repro.grammar.symbols import Symbol, Terminal


class Associativity(enum.Enum):
    """Associativity of a precedence level."""

    LEFT = "left"
    RIGHT = "right"
    NONASSOC = "nonassoc"


@dataclass(frozen=True)
class PrecedenceLevel:
    """A single precedence level: its rank (higher binds tighter) and associativity."""

    rank: int
    associativity: Associativity


@dataclass
class PrecedenceTable:
    """Mapping from terminals to precedence levels.

    Levels are declared lowest-precedence first, mirroring the order of
    ``%left``/``%right``/``%nonassoc`` lines in a yacc grammar file.
    """

    _levels: dict[Terminal, PrecedenceLevel] = field(default_factory=dict)
    _next_rank: int = 1
    # Source lines are diagnostic metadata: two tables declaring the same
    # levels are equal regardless of where the declarations were written.
    _decl_lines: dict[Terminal, int | None] = field(default_factory=dict, compare=False)

    def declare(
        self,
        associativity: Associativity,
        terminals: Iterable[Terminal],
        line: int | None = None,
    ) -> PrecedenceLevel:
        """Declare one precedence level for *terminals*; returns the new level.

        *line* is the 1-based source line of the declaration, recorded for
        diagnostics (``None`` for programmatic declarations).
        """
        level = PrecedenceLevel(self._next_rank, associativity)
        self._next_rank += 1
        for terminal in terminals:
            if terminal in self._levels:
                raise DuplicateDeclarationError(
                    f"terminal {terminal} already has a precedence level",
                    line=line,
                )
            self._levels[terminal] = level
            self._decl_lines[terminal] = line
        return level

    def level_of(self, terminal: Terminal) -> PrecedenceLevel | None:
        """The precedence level of *terminal*, or ``None`` if undeclared."""
        return self._levels.get(terminal)

    def declared_terminals(self) -> tuple[Terminal, ...]:
        """All terminals with a declared precedence level, in declaration order."""
        return tuple(self._levels)

    def declaration_line(self, terminal: Terminal) -> int | None:
        """Source line of *terminal*'s precedence declaration, if known."""
        return self._decl_lines.get(terminal)

    def production_level(
        self, rhs: Sequence[Symbol], override: Terminal | None = None
    ) -> PrecedenceLevel | None:
        """The precedence level of a production with right-hand side *rhs*.

        The ``%prec`` *override* terminal wins if given; otherwise the
        rightmost terminal of the production determines the level.
        """
        if override is not None:
            return self.level_of(override)
        for symbol in reversed(rhs):
            if isinstance(symbol, Terminal):
                return self.level_of(symbol)
        return None

    def __contains__(self, terminal: Terminal) -> bool:
        return terminal in self._levels

    def __len__(self) -> int:
        return len(self._levels)

    def copy(self) -> "PrecedenceTable":
        table = PrecedenceTable()
        table._levels = dict(self._levels)
        table._next_rank = self._next_rank
        table._decl_lines = dict(self._decl_lines)
        return table
