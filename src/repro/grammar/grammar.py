"""Context-free grammar representation.

A :class:`Grammar` is an immutable collection of :class:`Production` rules
over :class:`~repro.grammar.symbols.Terminal` and
:class:`~repro.grammar.symbols.Nonterminal` symbols, plus a start symbol
and an optional :class:`~repro.grammar.precedence.PrecedenceTable`.

Grammars are *augmented* on construction: a fresh start production
``START' -> S $`` is prepended (production index 0), as required by LR
automaton construction. The augmented start symbol and the end marker are
available as :attr:`Grammar.augmented_start` and the module-level
:data:`~repro.grammar.symbols.END_OF_INPUT`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Sequence

from repro.grammar.algorithms import DEFAULT_ALGORITHM, normalize_algorithm
from repro.grammar.errors import InvalidGrammarError, UndefinedSymbolError
from repro.grammar.precedence import PrecedenceTable
from repro.grammar.symbols import END_OF_INPUT, Nonterminal, Symbol, Terminal

#: Name used for the synthetic augmented start nonterminal.
AUGMENTED_START_NAME = "START'"


@dataclass(frozen=True)
class Production:
    """A grammar production ``lhs -> rhs``.

    Attributes:
        index: Position of the production in the grammar (0 is the
            augmented start production).
        lhs: The nonterminal being defined.
        rhs: Right-hand side symbols; empty tuple for an epsilon production.
        prec_override: Terminal named in a ``%prec`` directive, if any.
        line: 1-based source line of the production in the grammar text,
            when the grammar came through the DSL; ``None`` for
            programmatically built grammars and the augmented production.
    """

    index: int
    lhs: Nonterminal
    rhs: tuple[Symbol, ...]
    prec_override: Terminal | None = None
    # Source-location metadata; excluded from equality/hash so that
    # programmatic and DSL-loaded copies of the same production compare equal.
    line: int | None = field(default=None, compare=False)

    def __str__(self) -> str:
        rhs = " ".join(str(symbol) for symbol in self.rhs) if self.rhs else "/* empty */"
        return f"{self.lhs} ::= {rhs}"

    def __len__(self) -> int:
        return len(self.rhs)


class Grammar:
    """An augmented context-free grammar.

    Use :class:`~repro.grammar.builder.GrammarBuilder` or
    :func:`~repro.grammar.dsl.load_grammar` to construct instances; the
    constructor itself takes fully resolved symbols.
    """

    def __init__(
        self,
        productions: Sequence[tuple],
        start: Nonterminal,
        precedence: PrecedenceTable | None = None,
        name: str = "grammar",
        token_declarations: dict[str, int | None] | None = None,
        table_algorithm: str = DEFAULT_ALGORITHM,
    ) -> None:
        """Build an augmented grammar.

        Args:
            productions: Triples ``(lhs, rhs, prec_override)`` — or
                quadruples with a trailing 1-based source line — in
                source order.
            start: The user's start symbol.
            precedence: Optional precedence declarations.
            name: Diagnostic name used in reports and benchmarks.
            token_declarations: Terminal names declared via ``%token``
                (or equivalent), mapped to their source line. Purely
                diagnostic; terminal-ness is still inferred from use.
            table_algorithm: Requested table construction (``%algorithm``
                in the DSL); one of
                :data:`~repro.grammar.algorithms.TABLE_ALGORITHMS`.
        """
        if not productions:
            raise InvalidGrammarError("a grammar needs at least one production")
        self.name = name
        self.start = start
        self.table_algorithm = normalize_algorithm(table_algorithm)
        self.augmented_start = Nonterminal(AUGMENTED_START_NAME)
        self.precedence = precedence if precedence is not None else PrecedenceTable()
        self.token_declarations: dict[str, int | None] = dict(
            token_declarations or {}
        )

        augmented: list[Production] = [
            Production(0, self.augmented_start, (start, END_OF_INPUT))
        ]
        for entry in productions:
            lhs, rhs, override = entry[0], entry[1], entry[2]
            line = entry[3] if len(entry) > 3 else None
            augmented.append(
                Production(len(augmented), lhs, tuple(rhs), override, line)
            )
        self.productions: tuple[Production, ...] = tuple(augmented)

        self._by_lhs: dict[Nonterminal, tuple[Production, ...]] = {}
        grouped: dict[Nonterminal, list[Production]] = {}
        for production in self.productions:
            grouped.setdefault(production.lhs, []).append(production)
        self._by_lhs = {lhs: tuple(prods) for lhs, prods in grouped.items()}

        self._validate()

    # ------------------------------------------------------------------ #
    # Introspection

    @cached_property
    def nonterminals(self) -> tuple[Nonterminal, ...]:
        """All nonterminals, in order of first appearance (augmented start first)."""
        seen: dict[Nonterminal, None] = {}
        for production in self.productions:
            seen.setdefault(production.lhs, None)
            for symbol in production.rhs:
                if isinstance(symbol, Nonterminal):
                    seen.setdefault(symbol, None)
        return tuple(seen)

    @cached_property
    def terminals(self) -> tuple[Terminal, ...]:
        """All terminals appearing in the grammar, including the end marker."""
        seen: dict[Terminal, None] = {}
        for production in self.productions:
            for symbol in production.rhs:
                if isinstance(symbol, Terminal):
                    seen.setdefault(symbol, None)
        return tuple(seen)

    @cached_property
    def symbols(self) -> tuple[Symbol, ...]:
        return self.terminals + self.nonterminals

    def productions_of(self, nonterminal: Nonterminal) -> tuple[Production, ...]:
        """Productions whose left-hand side is *nonterminal* (possibly empty)."""
        return self._by_lhs.get(nonterminal, ())

    @property
    def start_production(self) -> Production:
        """The augmented production ``START' -> start $``."""
        return self.productions[0]

    def user_productions(self) -> Iterator[Production]:
        """Productions excluding the synthetic start production."""
        return iter(self.productions[1:])

    @cached_property
    def num_user_nonterminals(self) -> int:
        """Nonterminal count excluding the augmented start (Table 1's ``#nonterms``)."""
        return len(self.nonterminals) - 1

    @cached_property
    def num_user_productions(self) -> int:
        """Production count excluding the augmented production (Table 1's ``#prods``)."""
        return len(self.productions) - 1

    # ------------------------------------------------------------------ #
    # Validation and hygiene analyses

    def _validate(self) -> None:
        for production in self.productions:
            for symbol in production.rhs:
                if isinstance(symbol, Nonterminal) and symbol not in self._by_lhs:
                    raise UndefinedSymbolError(
                        f"nonterminal {symbol} used in '{production}' has no productions"
                    )
        if self.start not in self._by_lhs:
            raise UndefinedSymbolError(f"start symbol {self.start} has no productions")
        for production in self.user_productions():
            if END_OF_INPUT in production.rhs:
                raise InvalidGrammarError(
                    f"the end marker $ may not appear in user production '{production}'"
                )

    @cached_property
    def unreachable_nonterminals(self) -> frozenset[Nonterminal]:
        """Nonterminals not reachable from the start symbol."""
        reachable: set[Nonterminal] = {self.augmented_start}
        frontier = [self.augmented_start]
        while frontier:
            current = frontier.pop()
            for production in self.productions_of(current):
                for symbol in production.rhs:
                    if isinstance(symbol, Nonterminal) and symbol not in reachable:
                        reachable.add(symbol)
                        frontier.append(symbol)
        return frozenset(set(self.nonterminals) - reachable)

    @cached_property
    def nonproductive_nonterminals(self) -> frozenset[Nonterminal]:
        """Nonterminals that cannot derive any terminal string."""
        productive: set[Nonterminal] = set()
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                if production.lhs in productive:
                    continue
                if all(
                    symbol.is_terminal or symbol in productive
                    for symbol in production.rhs
                ):
                    productive.add(production.lhs)
                    changed = True
        return frozenset(set(self.nonterminals) - productive)

    # ------------------------------------------------------------------ #
    # Dunder conveniences

    def __iter__(self) -> Iterator[Production]:
        return iter(self.productions)

    def __len__(self) -> int:
        return len(self.productions)

    def __str__(self) -> str:
        lines = [f"// grammar {self.name}"]
        for production in self.user_productions():
            lines.append(str(production))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Grammar({self.name!r}, {self.num_user_nonterminals} nonterminals, "
            f"{self.num_user_productions} productions)"
        )

    def pretty(self) -> str:
        """Multi-line rendering grouping alternatives per nonterminal."""
        lines: list[str] = []
        for nonterminal in self.nonterminals:
            if nonterminal == self.augmented_start:
                continue
            alternatives = [
                " ".join(str(s) for s in production.rhs) or "/* empty */"
                for production in self.productions_of(nonterminal)
            ]
            lines.append(f"{nonterminal} ::= " + " | ".join(alternatives))
        return "\n".join(lines)
