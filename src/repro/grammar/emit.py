"""Emit a grammar back into the textual DSL.

The inverse of :func:`repro.grammar.dsl.load_grammar`: rendering a
:class:`~repro.grammar.grammar.Grammar` as DSL text that reloads to an
equivalent grammar. Uses:

* persisting programmatically built or transformed grammars (e.g. the
  output of :func:`repro.grammar.transforms.reduce_grammar`);
* golden-file diffs of injected corpus variants;
* the round-trip property tests that pin the DSL's semantics.

Quoting rules match the parser: names that could not be scanned as plain
identifiers (operators, punctuation) are emitted quoted; identifier-like
terminal names are emitted bare. Precedence declarations are re-emitted
in rank order, and ``%prec`` overrides are preserved.
"""

from __future__ import annotations

import re

from repro.grammar.algorithms import DEFAULT_ALGORITHM
from repro.grammar.grammar import Grammar
from repro.grammar.precedence import Associativity
from repro.grammar.symbols import Symbol, Terminal

_PLAIN_NAME = re.compile(r"[A-Za-z_][A-Za-z0-9_'-]*$")


def _emit_name(symbol: Symbol) -> str:
    name = symbol.name
    if symbol.is_terminal and not _PLAIN_NAME.match(name):
        escaped = name.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return name


def dump_grammar(grammar: Grammar) -> str:
    """Render *grammar* as DSL text accepted by ``load_grammar``.

    Productions are emitted in index order, starting a new rule block
    whenever the left-hand side changes — never regrouped by
    nonterminal. Production order is semantically significant (yacc
    defaults resolve reduce/reduce conflicts in favour of the *earliest*
    production), so ``load_grammar(dump_grammar(g))`` yields a grammar
    with identical production indices, start symbol, and precedence
    behaviour.
    """
    name = grammar.name
    if not _PLAIN_NAME.match(name):
        name = "'" + name.replace("\\", "\\\\").replace("'", "\\'") + "'"
    lines: list[str] = [f"%grammar {name}", f"%start {grammar.start}"]
    # The default construction is implicit; emitting it only when it
    # deviates keeps pre-existing grammars byte-identical round-trips.
    if grammar.table_algorithm != DEFAULT_ALGORITHM:
        lines.append(f"%algorithm {grammar.table_algorithm}")

    # Re-emit precedence levels lowest-rank first, grouping terminals on
    # one line per level.
    levels: dict[int, tuple[Associativity, list[Terminal]]] = {}
    for terminal in grammar.terminals:
        level = grammar.precedence.level_of(terminal)
        if level is None:
            continue
        entry = levels.setdefault(level.rank, (level.associativity, []))
        entry[1].append(terminal)
    for rank in sorted(levels):
        associativity, terminals = levels[rank]
        names = " ".join(_emit_name(t) for t in sorted(terminals, key=str))
        lines.append(f"%{associativity.value} {names}")

    lines.append("")
    current_lhs = None
    alternatives: list[str] = []

    def flush() -> None:
        if current_lhs is not None:
            joined = "\n     | ".join(alternatives)
            lines.append(f"{current_lhs} : {joined}\n     ;")

    for production in grammar.user_productions():
        if production.lhs != current_lhs:
            flush()
            current_lhs = production.lhs
            alternatives = []
        body = " ".join(_emit_name(symbol) for symbol in production.rhs)
        if not production.rhs:
            body = "%empty"
        if production.prec_override is not None:
            body += f" %prec {_emit_name(production.prec_override)}"
        alternatives.append(body)
    flush()
    return "\n".join(lines) + "\n"
