"""Classic grammar analyses: nullability, FIRST, FOLLOW, and expansions.

:class:`GrammarAnalysis` bundles the fixpoint computations every LR
construction needs, plus two derivation oracles the counterexample
algorithms rely on:

* :meth:`GrammarAnalysis.shortest_expansion` — a minimal terminal string
  derivable from a nonterminal;
* :meth:`GrammarAnalysis.starter_production` — the first step of a minimal
  derivation of a nonterminal whose yield *begins with a given terminal*
  (used in §4 to complete nonunifying counterexamples so that the conflict
  terminal immediately follows the dot).

All results are computed eagerly in the constructor; instances are cheap
to query and safe to share.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.grammar.grammar import Grammar, Production
from repro.grammar.symbols import END_OF_INPUT, Nonterminal, Symbol, Terminal

#: Effectively-infinite cost marker for unreachable expansions.
_INFINITY = float("inf")


class GrammarAnalysis:
    """Nullable / FIRST / FOLLOW sets and minimal-derivation oracles."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.nullable: frozenset[Nonterminal] = self._compute_nullable()
        self.first: dict[Symbol, frozenset[Terminal]] = self._compute_first()
        self.follow: dict[Nonterminal, frozenset[Terminal]] = self._compute_follow()
        self._min_yield: dict[Symbol, float] = self._compute_min_yield()
        self._nullable_production: dict[Nonterminal, Production] = (
            self._compute_nullable_productions()
        )
        self._starters: dict[tuple[Nonterminal, Terminal], tuple[Production, int]] = (
            self._compute_starters()
        )
        self.first_symbols: dict[Symbol, frozenset[Symbol]] = (
            self._compute_first_symbols()
        )

    # ------------------------------------------------------------------ #
    # Fixpoint computations

    def _compute_nullable(self) -> frozenset[Nonterminal]:
        nullable: set[Nonterminal] = set()
        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                if production.lhs in nullable:
                    continue
                if all(
                    symbol.is_nonterminal and symbol in nullable
                    for symbol in production.rhs
                ):
                    nullable.add(production.lhs)
                    changed = True
        return frozenset(nullable)

    def _compute_first(self) -> dict[Symbol, frozenset[Terminal]]:
        first: dict[Symbol, set[Terminal]] = {}
        for terminal in self.grammar.terminals:
            first[terminal] = {terminal}
        first[END_OF_INPUT] = {END_OF_INPUT}
        for nonterminal in self.grammar.nonterminals:
            first[nonterminal] = set()

        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                target = first[production.lhs]
                before = len(target)
                for symbol in production.rhs:
                    target.update(first[symbol])
                    if not (symbol.is_nonterminal and symbol in self.nullable):
                        break
                if len(target) != before:
                    changed = True
        return {symbol: frozenset(values) for symbol, values in first.items()}

    def _compute_follow(self) -> dict[Nonterminal, frozenset[Terminal]]:
        follow: dict[Nonterminal, set[Terminal]] = {
            nonterminal: set() for nonterminal in self.grammar.nonterminals
        }
        follow[self.grammar.augmented_start].add(END_OF_INPUT)

        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                for index, symbol in enumerate(production.rhs):
                    if not symbol.is_nonterminal:
                        continue
                    assert isinstance(symbol, Nonterminal)
                    target = follow[symbol]
                    before = len(target)
                    tail = production.rhs[index + 1 :]
                    tail_first, tail_nullable = self.first_of_sequence_ex(tail)
                    target.update(tail_first)
                    if tail_nullable:
                        target.update(follow[production.lhs])
                    if len(target) != before:
                        changed = True
        return {symbol: frozenset(values) for symbol, values in follow.items()}

    def _compute_min_yield(self) -> dict[Symbol, float]:
        """Length of the shortest terminal string derivable from each symbol.

        Also records, per nonterminal, the production achieving the minimum
        (``self._min_yield_production``). Because the production is recorded
        only on a strict improvement, following these choices recursively is
        well-founded even for cyclic grammars.
        """
        cost: dict[Symbol, float] = {t: 1.0 for t in self.grammar.terminals}
        cost[END_OF_INPUT] = 1.0
        for nonterminal in self.grammar.nonterminals:
            cost[nonterminal] = _INFINITY
        self._min_yield_production: dict[Nonterminal, Production] = {}

        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                total = 0.0
                for symbol in production.rhs:
                    total += cost[symbol]
                    if total == _INFINITY:
                        break
                if total < cost[production.lhs]:
                    cost[production.lhs] = total
                    self._min_yield_production[production.lhs] = production
                    changed = True
        return cost

    def _compute_nullable_productions(self) -> dict[Nonterminal, Production]:
        """For each nullable nonterminal, one production usable to derive epsilon."""
        chosen: dict[Nonterminal, Production] = {}
        # Iterate in rounds so that the chosen production's nullable
        # children already have chosen productions of their own.
        resolved: set[Nonterminal] = set()
        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                if production.lhs in resolved or production.lhs not in self.nullable:
                    continue
                if all(symbol in resolved for symbol in production.rhs):
                    chosen[production.lhs] = production
                    resolved.add(production.lhs)
                    changed = True
        return chosen

    def _compute_starters(
        self,
    ) -> dict[tuple[Nonterminal, Terminal], tuple[Production, int]]:
        """For each ``(N, t)`` with ``t in FIRST(N)``, a minimal first step.

        The value ``(production, k)`` means: expand ``N`` with *production*,
        derive its first ``k`` right-hand-side symbols to epsilon, and
        continue deriving a ``t``-initial string from ``rhs[k]`` (or stop if
        ``rhs[k]`` is the terminal ``t`` itself). Steps are chosen to
        minimise the number of expansions, making completed
        counterexamples as small as possible.
        """
        cost: dict[tuple[Nonterminal, Terminal], float] = {}
        step: dict[tuple[Nonterminal, Terminal], tuple[Production, int]] = {}

        def symbol_cost(symbol: Symbol, terminal: Terminal) -> float:
            if symbol == terminal:
                return 0.0
            if symbol.is_nonterminal:
                return cost.get((symbol, terminal), _INFINITY)  # type: ignore[arg-type]
            return _INFINITY

        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                nullable_prefix_cost = 0.0
                for k, symbol in enumerate(production.rhs):
                    for terminal in self.first[symbol]:
                        candidate = (
                            1.0 + nullable_prefix_cost + symbol_cost(symbol, terminal)
                        )
                        key = (production.lhs, terminal)
                        if candidate < cost.get(key, _INFINITY):
                            cost[key] = candidate
                            step[key] = (production, k)
                            changed = True
                    if not (symbol.is_nonterminal and symbol in self.nullable):
                        break
                    # Deriving this nullable symbol to epsilon costs at
                    # least one expansion.
                    nullable_prefix_cost += 1.0
        return step

    def _compute_first_symbols(self) -> dict[Symbol, frozenset[Symbol]]:
        """Symbol-level FIRST: all symbols that can begin a derivation.

        Unlike classic FIRST (terminals only), ``first_symbols(X)``
        contains every grammar symbol — terminal or nonterminal — that can
        appear leftmost in some sentential form derived from ``X``,
        including ``X`` itself. The counterexample search uses this to ask
        "can parser 2 possibly produce a transition matching parser 1's?"
        at the *symbol* level, since product-parser transitions are joint
        on arbitrary symbols.
        """
        first_symbols: dict[Symbol, set[Symbol]] = {
            symbol: {symbol} for symbol in self.grammar.symbols
        }
        first_symbols.setdefault(END_OF_INPUT, {END_OF_INPUT})
        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                target = first_symbols[production.lhs]
                before = len(target)
                for symbol in production.rhs:
                    target.update(first_symbols[symbol])
                    if not (symbol.is_nonterminal and symbol in self.nullable):
                        break
                if len(target) != before:
                    changed = True
        return {symbol: frozenset(v) for symbol, v in first_symbols.items()}

    def first_symbols_of_sequence(
        self, symbols: Sequence[Symbol]
    ) -> tuple[frozenset[Symbol], bool]:
        """Symbol-level FIRST of a sentential form, plus its nullability."""
        result: set[Symbol] = set()
        for symbol in symbols:
            result.update(self.first_symbols[symbol])
            if not (symbol.is_nonterminal and symbol in self.nullable):
                return frozenset(result), False
        return frozenset(result), True

    # ------------------------------------------------------------------ #
    # Queries

    def is_nullable_sequence(self, symbols: Sequence[Symbol]) -> bool:
        """Whether every symbol in *symbols* can derive epsilon."""
        return all(
            symbol.is_nonterminal and symbol in self.nullable for symbol in symbols
        )

    def first_of_sequence_ex(
        self, symbols: Sequence[Symbol], tail: Iterable[Terminal] = ()
    ) -> tuple[frozenset[Terminal], bool]:
        """FIRST of a sentential form, and whether the form is nullable.

        *tail* terminals are included when the whole sequence is nullable
        (the ``L`` context of the paper's precise follow sets).
        """
        result: set[Terminal] = set()
        for symbol in symbols:
            result.update(self.first[symbol])
            if not (symbol.is_nonterminal and symbol in self.nullable):
                return frozenset(result), False
        result.update(tail)
        return frozenset(result), True

    def first_of_sequence(
        self, symbols: Sequence[Symbol], tail: Iterable[Terminal] = ()
    ) -> frozenset[Terminal]:
        """FIRST of a sentential form with context *tail* (see paper §4)."""
        return self.first_of_sequence_ex(symbols, tail)[0]

    def precise_follow(
        self, production: Production, dot: int, context: frozenset[Terminal]
    ) -> frozenset[Terminal]:
        """The paper's ``follow_L(itm)`` for an item ``A -> X1..Xk . X(k+1) ...``.

        Returns the terminals that can actually follow the symbol after the
        dot, given that *context* can follow the whole production.
        """
        if dot >= len(production.rhs):
            raise ValueError("precise_follow needs a symbol after the dot")
        return self.first_of_sequence(production.rhs[dot + 1 :], context)

    def min_yield_length(self, symbol: Symbol) -> float:
        """Length of the shortest terminal string derivable from *symbol*."""
        return self._min_yield[symbol]

    def nullable_production(self, nonterminal: Nonterminal) -> Production:
        """A production usable to derive *nonterminal* to epsilon."""
        return self._nullable_production[nonterminal]

    def starter_production(
        self, nonterminal: Nonterminal, terminal: Terminal
    ) -> tuple[Production, int] | None:
        """First step of a minimal derivation of *nonterminal* starting with *terminal*.

        Returns ``None`` when ``terminal not in FIRST(nonterminal)``.
        """
        return self._starters.get((nonterminal, terminal))

    def shortest_expansion(self, symbol: Symbol) -> tuple[Terminal, ...]:
        """A minimal terminal string derivable from *symbol*.

        Raises :class:`ValueError` for nonproductive nonterminals.
        """
        if symbol.is_terminal:
            return (symbol,)  # type: ignore[return-value]
        if self._min_yield[symbol] == _INFINITY:
            raise ValueError(f"{symbol} cannot derive a terminal string")
        assert isinstance(symbol, Nonterminal)
        production = self._min_yield_production[symbol]
        result: list[Terminal] = []
        for child in production.rhs:
            result.extend(self.shortest_expansion(child))
        return tuple(result)
