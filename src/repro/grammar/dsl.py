"""A yacc-like textual grammar format.

The format accepted by :func:`load_grammar` mirrors the fragment of the
yacc/CUP specification language needed to express every grammar in the
paper's evaluation::

    // comments run to end of line
    %grammar dangling-else      // optional diagnostic name
    %start stmt                 // defaults to the first rule's lhs
    %algorithm ielr             // table construction: lalr | ielr | lr1
    %left '+' '-'
    %left '*'                   // later lines bind tighter
    %right ELSE
    %nonassoc EQ

    stmt : IF expr THEN stmt ELSE stmt
         | IF expr THEN stmt
         | %empty               // epsilon production
         | expr '?' stmt stmt %prec ELSE
         ;

Symbol-name conventions:

* A name is a **nonterminal** iff it appears to the left of a ``:``.
* Every other name is a **terminal**. Quoted names (``'+'``, ``":="``)
  are terminals whose name is the quoted text.
* ``%empty`` (or an entirely empty alternative) denotes epsilon.
* ``%prec TERMINAL`` at the end of an alternative overrides the
  production's precedence.

This module is itself a miniature recursive-descent parser — the
bootstrap layer beneath the parser generator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.grammar.builder import GrammarBuilder
from repro.grammar.errors import GrammarSyntaxError
from repro.grammar.grammar import Grammar

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>      \s+                       )
    | (?P<comment> //[^\n]* | \#[^\n]*       )
    | (?P<block>   /\*.*?\*/                 )
    | (?P<quoted>  '(?:[^'\\]|\\.)+' | "(?:[^"\\]|\\.)+" )
    | (?P<directive> %[A-Za-z_][A-Za-z0-9_]* )
    | (?P<name>    [A-Za-z_][A-Za-z0-9_'-]*  )
    | (?P<punct>   ::=|[:|;]                 )
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    line = 1
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise GrammarSyntaxError(
                f"unexpected character {text[position]!r}", line=line
            )
        kind = match.lastgroup or ""
        fragment = match.group()
        if kind not in ("ws", "comment", "block"):
            tokens.append(_Token(kind, fragment, line))
        line += fragment.count("\n")
        position = match.end()
    return tokens


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last_line = self._tokens[-1].line if self._tokens else 1
            raise GrammarSyntaxError("unexpected end of grammar text", line=last_line)
        self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise GrammarSyntaxError(
                f"expected {wanted}, found {token.text!r}", line=token.line
            )
        return token

    def _symbol_name(self, token: _Token) -> str:
        if token.kind == "quoted":
            name = _unquote(token.text)
            if hasattr(self, "_quoted_names"):
                self._quoted_names.setdefault(name, token.line)
            return name
        if token.kind == "name":
            return token.text
        raise GrammarSyntaxError(
            f"expected a symbol name, found {token.text!r}", line=token.line
        )

    def parse(self, default_name: str) -> Grammar:
        builder = GrammarBuilder(default_name)
        start: str | None = None
        self._quoted_names: dict[str, int] = {}

        while self._peek() is not None:
            token = self._peek()
            assert token is not None
            if token.kind == "directive":
                start = self._parse_directive(builder, start)
            elif token.kind in ("name", "quoted"):
                self._parse_rule(builder)
            else:
                raise GrammarSyntaxError(
                    f"expected a directive or rule, found {token.text!r}",
                    line=token.line,
                )

        # Quoted symbols are meant to be terminals; a quoted name that is
        # also a rule head would silently resolve to the nonterminal, so
        # reject the collision outright.
        rule_heads = {lhs for lhs, _, _, _ in builder._raw_rules}
        for name, line in self._quoted_names.items():
            if name in rule_heads:
                raise GrammarSyntaxError(
                    f"quoted terminal {name!r} collides with a nonterminal "
                    "of the same name; rename one of them",
                    line=line,
                )
        return builder.build(start=start)

    def _parse_directive(self, builder: GrammarBuilder, start: str | None) -> str | None:
        token = self._next()
        directive = token.text
        if directive == "%start":
            return self._symbol_name(self._next())
        if directive == "%grammar":
            builder.name = self._symbol_name(self._next())
            return start
        if directive == "%algorithm":
            operand = self._next()
            builder.algorithm(self._symbol_name(operand), line=operand.line)
            return start
        if directive in ("%left", "%right", "%nonassoc"):
            terminals: list[str] = []
            while True:
                lookahead = self._peek()
                if lookahead is None or lookahead.kind not in ("name", "quoted"):
                    break
                # A name followed by ':' or '::=' begins a rule, not a
                # precedence operand.
                after = (
                    self._tokens[self._index + 1]
                    if self._index + 1 < len(self._tokens)
                    else None
                )
                if lookahead.kind == "name" and after is not None and after.kind == "punct" and after.text in (":", "::="):
                    break
                terminals.append(self._symbol_name(self._next()))
            if not terminals:
                raise GrammarSyntaxError(
                    f"{directive} requires at least one terminal", line=token.line
                )
            getattr(builder, directive[1:])(*terminals, line=token.line)
            return start
        if directive == "%token":
            # Token declarations carry no grammar information (terminal-ness
            # is inferred), but are recorded with their source line so lint
            # passes can flag declared-but-unused tokens.
            while True:
                lookahead = self._peek()
                if lookahead is None or lookahead.kind not in ("name", "quoted"):
                    break
                after = (
                    self._tokens[self._index + 1]
                    if self._index + 1 < len(self._tokens)
                    else None
                )
                if lookahead.kind == "name" and after is not None and after.kind == "punct" and after.text in (":", "::="):
                    break
                declared = self._next()
                builder.token(self._symbol_name(declared), line=declared.line)
            return start
        raise GrammarSyntaxError(f"unknown directive {directive}", line=token.line)

    def _parse_rule(self, builder: GrammarBuilder) -> None:
        lhs_token = self._next()
        lhs = self._symbol_name(lhs_token)
        separator = self._next()
        if separator.kind != "punct" or separator.text not in (":", "::="):
            raise GrammarSyntaxError(
                f"expected ':' after rule head {lhs!r}, found {separator.text!r}",
                line=separator.line,
            )

        alternative: list[str] = []
        prec: str | None = None
        # Source line of the current alternative: the line of its first
        # body token, falling back to the rule head for empty alternatives.
        alt_line: int | None = None

        def flush() -> None:
            nonlocal alternative, prec, alt_line
            builder.rule(
                lhs,
                alternative,
                prec=prec,
                line=alt_line if alt_line is not None else lhs_token.line,
            )
            alternative = []
            prec = None
            alt_line = None

        while True:
            token = self._next()
            if token.kind == "punct" and token.text == ";":
                flush()
                return
            if token.kind == "punct" and token.text == "|":
                flush()
                continue
            if token.kind == "directive" and token.text == "%empty":
                if alt_line is None:
                    alt_line = token.line
                continue
            if token.kind == "directive" and token.text == "%prec":
                prec = self._symbol_name(self._next())
                continue
            if token.kind in ("name", "quoted"):
                if alt_line is None:
                    alt_line = token.line
                alternative.append(self._symbol_name(token))
                continue
            raise GrammarSyntaxError(
                f"unexpected {token.text!r} in rule body", line=token.line
            )


def load_grammar(text: str, name: str = "grammar") -> Grammar:
    """Parse grammar *text* in the yacc-like format into a :class:`Grammar`."""
    tokens = _tokenize(text)
    if not tokens:
        raise GrammarSyntaxError("empty grammar text")
    return _Parser(tokens).parse(default_name=name)


def load_grammar_file(path: str) -> Grammar:
    """Read *path* and parse its contents with :func:`load_grammar`."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    import os

    return load_grammar(text, name=os.path.splitext(os.path.basename(path))[0])
