"""Programmatic grammar construction.

:class:`GrammarBuilder` offers a small fluent API used throughout the test
suite and the corpus::

    builder = GrammarBuilder("dangling-else")
    builder.rule("stmt", "IF expr THEN stmt ELSE stmt")
    builder.rule("stmt", "IF expr THEN stmt")
    builder.rule("expr", "NUM")
    grammar = builder.build(start="stmt")

Right-hand sides are whitespace-separated symbol names. A name is a
nonterminal iff it appears on some left-hand side; every other name is a
terminal. ``rules`` accepts ``|``-separated alternatives.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.grammar.algorithms import DEFAULT_ALGORITHM, normalize_algorithm
from repro.grammar.errors import InvalidGrammarError
from repro.grammar.grammar import Grammar
from repro.grammar.precedence import Associativity, PrecedenceTable
from repro.grammar.symbols import Nonterminal, Symbol, Terminal


class GrammarBuilder:
    """Incrementally assemble a :class:`~repro.grammar.grammar.Grammar`."""

    def __init__(self, name: str = "grammar") -> None:
        self.name = name
        self._raw_rules: list[tuple[str, tuple[str, ...], str | None, int | None]] = []
        self._precedence = PrecedenceTable()
        self._start: str | None = None
        self._token_declarations: dict[str, int | None] = {}
        self._algorithm: str = DEFAULT_ALGORITHM

    # ------------------------------------------------------------------ #

    def rule(
        self,
        lhs: str,
        rhs: str | Sequence[str] = "",
        prec: str | None = None,
        line: int | None = None,
    ) -> "GrammarBuilder":
        """Add one production. *rhs* is a space-separated string or a sequence.

        An empty *rhs* adds an epsilon production. *prec* names a terminal
        whose precedence the production should take (yacc ``%prec``).
        *line* is the 1-based source line of the production, recorded on
        the resulting :class:`~repro.grammar.grammar.Production` for
        diagnostics.
        """
        if isinstance(rhs, str):
            symbols = tuple(rhs.split())
        else:
            symbols = tuple(rhs)
        self._raw_rules.append((lhs, symbols, prec, line))
        return self

    def rules(self, lhs: str, alternatives: str) -> "GrammarBuilder":
        """Add several productions at once, ``|``-separated.

        Use the literal token ``%empty`` for an epsilon alternative (a bare
        ``|`` would be ambiguous with accidental double spaces).
        """
        for alternative in alternatives.split("|"):
            symbols = alternative.split()
            if symbols == ["%empty"]:
                symbols = []
            self.rule(lhs, symbols)
        return self

    def left(self, *terminals: str, line: int | None = None) -> "GrammarBuilder":
        """Declare one ``%left`` precedence level (lowest first)."""
        self._precedence.declare(
            Associativity.LEFT, (Terminal(t) for t in terminals), line=line
        )
        return self

    def right(self, *terminals: str, line: int | None = None) -> "GrammarBuilder":
        """Declare one ``%right`` precedence level."""
        self._precedence.declare(
            Associativity.RIGHT, (Terminal(t) for t in terminals), line=line
        )
        return self

    def nonassoc(self, *terminals: str, line: int | None = None) -> "GrammarBuilder":
        """Declare one ``%nonassoc`` precedence level."""
        self._precedence.declare(
            Associativity.NONASSOC, (Terminal(t) for t in terminals), line=line
        )
        return self

    def token(self, *names: str, line: int | None = None) -> "GrammarBuilder":
        """Record ``%token`` declarations (diagnostic only; first line wins)."""
        for name in names:
            self._token_declarations.setdefault(name, line)
        return self

    def start(self, nonterminal: str) -> "GrammarBuilder":
        """Set the start symbol (defaults to the first rule's left-hand side)."""
        self._start = nonterminal
        return self

    def algorithm(self, name: str, line: int | None = None) -> "GrammarBuilder":
        """Select the table construction (DSL ``%algorithm``).

        Raises :class:`~repro.grammar.algorithms.UnknownAlgorithmError`
        — carrying *line* when given — for unrecognised names.
        """
        self._algorithm = normalize_algorithm(name, line=line)
        return self

    # ------------------------------------------------------------------ #

    def build(self, start: str | None = None) -> Grammar:
        """Resolve names to symbols and produce the augmented grammar."""
        if start is not None:
            self._start = start
        if not self._raw_rules:
            raise InvalidGrammarError(f"grammar {self.name!r} has no rules")
        if self._start is None:
            self._start = self._raw_rules[0][0]

        nonterminal_names = {lhs for lhs, _, _, _ in self._raw_rules}

        def resolve(name: str) -> Symbol:
            if name in nonterminal_names:
                return Nonterminal(name)
            return Terminal(name)

        productions: list[
            tuple[Nonterminal, tuple[Symbol, ...], Terminal | None, int | None]
        ] = []
        for lhs, rhs, prec, line in self._raw_rules:
            productions.append(
                (
                    Nonterminal(lhs),
                    tuple(resolve(name) for name in rhs),
                    Terminal(prec) if prec is not None else None,
                    line,
                )
            )
        return Grammar(
            productions,
            start=Nonterminal(self._start),
            precedence=self._precedence,
            name=self.name,
            token_declarations=self._token_declarations,
            table_algorithm=self._algorithm,
        )


def grammar_from_rules(
    name: str,
    rules: Iterable[tuple[str, str]],
    start: str | None = None,
) -> Grammar:
    """Shorthand: build a grammar from ``(lhs, rhs)`` string pairs."""
    builder = GrammarBuilder(name)
    for lhs, rhs in rules:
        builder.rule(lhs, rhs)
    return builder.build(start=start)
