"""Context-free grammar substrate: symbols, productions, analyses, DSL."""

from repro.grammar.algorithms import (
    DEFAULT_ALGORITHM,
    TABLE_ALGORITHMS,
    UnknownAlgorithmError,
    normalize_algorithm,
)
from repro.grammar.analysis import GrammarAnalysis
from repro.grammar.builder import GrammarBuilder, grammar_from_rules
from repro.grammar.dsl import load_grammar, load_grammar_file
from repro.grammar.emit import dump_grammar
from repro.grammar.errors import (
    DuplicateDeclarationError,
    GrammarError,
    GrammarSyntaxError,
    InvalidGrammarError,
    UndefinedSymbolError,
)
from repro.grammar.grammar import AUGMENTED_START_NAME, Grammar, Production
from repro.grammar.precedence import Associativity, PrecedenceLevel, PrecedenceTable
from repro.grammar.transforms import (
    GrammarMetrics,
    has_derivation_cycles,
    left_recursive_nonterminals,
    reduce_grammar,
    remove_nonproductive,
    remove_unreachable,
    unit_productions,
)
from repro.grammar.symbols import (
    END_OF_INPUT,
    Nonterminal,
    Symbol,
    Terminal,
)

__all__ = [
    "AUGMENTED_START_NAME",
    "Associativity",
    "DEFAULT_ALGORITHM",
    "DuplicateDeclarationError",
    "END_OF_INPUT",
    "Grammar",
    "GrammarAnalysis",
    "GrammarBuilder",
    "GrammarError",
    "GrammarMetrics",
    "GrammarSyntaxError",
    "InvalidGrammarError",
    "Nonterminal",
    "PrecedenceLevel",
    "PrecedenceTable",
    "Production",
    "Symbol",
    "TABLE_ALGORITHMS",
    "Terminal",
    "UndefinedSymbolError",
    "UnknownAlgorithmError",
    "dump_grammar",
    "normalize_algorithm",
    "grammar_from_rules",
    "has_derivation_cycles",
    "left_recursive_nonterminals",
    "load_grammar",
    "load_grammar_file",
    "reduce_grammar",
    "remove_nonproductive",
    "remove_unreachable",
    "unit_productions",
]
