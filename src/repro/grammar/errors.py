"""Exception hierarchy for grammar construction and analysis."""

from __future__ import annotations


class GrammarError(Exception):
    """Base class for all errors raised while building or analysing a grammar.

    Attributes:
        line: 1-based line number of the offending grammar source, if known.
            Errors raised outside the textual DSL (programmatic builder use)
            carry ``None``.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class GrammarSyntaxError(GrammarError):
    """The textual grammar DSL could not be parsed."""


class UndefinedSymbolError(GrammarError):
    """A production refers to a nonterminal that has no productions."""


class DuplicateDeclarationError(GrammarError):
    """A symbol or precedence level was declared more than once."""


class InvalidGrammarError(GrammarError):
    """The grammar is structurally unusable (e.g. no start symbol)."""
