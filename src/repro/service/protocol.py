"""Wire protocol and job model for the grammar-analysis service.

Everything that crosses a boundary — HTTP body, journal line, worker
payload — is expressed here as plain dataclasses with explicit JSON
codecs, so the HTTP layer, the journal, and the subprocess workers all
speak one schema (see ``docs/SERVICE.md`` for the wire format).

A job's life::

    submitted ─► queued ─► running ─► completed
                              │  ▲        (ok result)
                              │  └ retrying (crash/hang, backoff)
                              ├────► degraded   (breaker open / retries
                              │                  exhausted — stub-rung
                              │                  verdict, never lost)
                              ├────► failed     (permanent request error,
                              │                  e.g. a syntax error)
                              └────► cancelled  (shutdown without resume)

``degraded`` deliberately reuses the degradation-ladder vocabulary of
:mod:`repro.robust.degrade`: the job still terminates with an answer —
a stub-rung verdict naming what failed — rather than disappearing.
"""

from __future__ import annotations

import enum
import hashlib
import json
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Mapping


class JobState(enum.Enum):
    """Where a job is in its life cycle."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    DEGRADED = "degraded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL_STATES


_TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.DEGRADED, JobState.FAILED, JobState.CANCELLED}
)


@dataclass(frozen=True)
class AnalyzeOptions:
    """Per-request knobs, all clamped by the admission controller.

    Attributes:
        time_limit: Per-conflict unifying-search budget (seconds).
        cumulative_limit: Total unifying-search budget (seconds).
        table_algorithm: ``lalr`` / ``ielr`` / ``lr1``; ``None`` defers
            to the grammar's ``%algorithm`` directive.
        ambiguity: Also run the SR pair walk for per-conflict verdicts.
        lint: Also run the static lint passes.
        verify: Earley-verify unifying counterexamples.
        max_configurations: Node cap per unifying search.
        chaos_sleep_s: Synthetic pre-analysis delay (heartbeats keep
            flowing) — a load/drain-testing knob, clamped hard.
    """

    time_limit: float = 2.0
    cumulative_limit: float = 30.0
    table_algorithm: str | None = None
    ambiguity: bool = False
    lint: bool = False
    verify: bool = True
    max_configurations: int = 500_000
    chaos_sleep_s: float = 0.0

    def to_json(self) -> dict[str, Any]:
        return {
            "time_limit": self.time_limit,
            "cumulative_limit": self.cumulative_limit,
            "table_algorithm": self.table_algorithm,
            "ambiguity": self.ambiguity,
            "lint": self.lint,
            "verify": self.verify,
            "max_configurations": self.max_configurations,
            "chaos_sleep_s": self.chaos_sleep_s,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "AnalyzeOptions":
        defaults = cls()
        unknown = set(data) - set(defaults.to_json())
        if unknown:
            raise ProtocolError(f"unknown options: {', '.join(sorted(unknown))}")
        try:
            return cls(
                time_limit=float(data.get("time_limit", defaults.time_limit)),
                cumulative_limit=float(
                    data.get("cumulative_limit", defaults.cumulative_limit)
                ),
                table_algorithm=(
                    str(data["table_algorithm"])
                    if data.get("table_algorithm") is not None
                    else None
                ),
                ambiguity=bool(data.get("ambiguity", defaults.ambiguity)),
                lint=bool(data.get("lint", defaults.lint)),
                verify=bool(data.get("verify", defaults.verify)),
                max_configurations=int(
                    data.get("max_configurations", defaults.max_configurations)
                ),
                chaos_sleep_s=float(
                    data.get("chaos_sleep_s", defaults.chaos_sleep_s)
                ),
            )
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"malformed options: {error}") from error


class ProtocolError(ValueError):
    """A request the protocol layer cannot even represent (HTTP 400)."""


@dataclass(frozen=True)
class AnalyzeRequest:
    """One grammar-analysis request."""

    grammar: str
    name: str = "grammar"
    options: AnalyzeOptions = field(default_factory=AnalyzeOptions)

    @property
    def grammar_key(self) -> str:
        """Content hash of the grammar text alone.

        The circuit breaker keys on this: a poison grammar must trip the
        breaker no matter which option combination resubmits it.
        """
        return hashlib.sha256(self.grammar.encode()).hexdigest()[:16]

    @property
    def fingerprint(self) -> str:
        """Content hash of the whole request (grammar + options).

        Jobs with equal fingerprints perform identical work, so the
        journal's resume pass dedupes on it and repeat requests ride the
        warm automaton cache.
        """
        payload = self.grammar + "\x00" + json.dumps(
            self.options.to_json(), sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def to_json(self) -> dict[str, Any]:
        return {
            "grammar": self.grammar,
            "name": self.name,
            "options": self.options.to_json(),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "AnalyzeRequest":
        grammar = data.get("grammar")
        if not isinstance(grammar, str) or not grammar.strip():
            raise ProtocolError("request must carry a non-empty 'grammar' string")
        name = data.get("name", "grammar")
        if not isinstance(name, str) or not name:
            raise ProtocolError("'name' must be a non-empty string")
        options_data = data.get("options", {})
        if not isinstance(options_data, Mapping):
            raise ProtocolError("'options' must be an object")
        return cls(
            grammar=grammar, name=name, options=AnalyzeOptions.from_json(options_data)
        )


@dataclass
class JobRecord:
    """One job's full state — exactly what a journal line snapshots."""

    id: str
    request: AnalyzeRequest
    state: JobState = JobState.QUEUED
    attempts: int = 0
    created_at: float = 0.0
    updated_at: float = 0.0
    result: dict[str, Any] | None = None
    error: str | None = None

    @classmethod
    def new(cls, request: AnalyzeRequest, now: float) -> "JobRecord":
        return cls(
            id=uuid.uuid4().hex[:16],
            request=request,
            created_at=now,
            updated_at=now,
        )

    def advance(self, state: JobState, now: float, **changes: Any) -> "JobRecord":
        """A copy in *state*; callers journal the returned snapshot."""
        return replace(self, state=state, updated_at=now, **changes)

    def to_json(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "request": self.request.to_json(),
            "state": self.state.value,
            "attempts": self.attempts,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "result": self.result,
            "error": self.error,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "JobRecord":
        return cls(
            id=str(data["id"]),
            request=AnalyzeRequest.from_json(data["request"]),
            state=JobState(str(data["state"])),
            attempts=int(data.get("attempts", 0)),  # type: ignore[arg-type]
            created_at=float(data.get("created_at", 0.0)),  # type: ignore[arg-type]
            updated_at=float(data.get("updated_at", 0.0)),  # type: ignore[arg-type]
            result=data.get("result"),
            error=(str(data["error"]) if data.get("error") is not None else None),
        )

    def public_json(self) -> dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` body (grammar text elided)."""
        return {
            "id": self.id,
            "name": self.request.name,
            "fingerprint": self.request.fingerprint,
            "state": self.state.value,
            "attempts": self.attempts,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "result": self.result,
            "error": self.error,
        }


def degraded_result(stage: str, reason: str, error_type: str) -> dict[str, Any]:
    """A stub-rung job result for supervision-level degradation.

    Mirrors :meth:`repro.robust.degrade.DegradedExplanation.to_json`, so
    robust-report consumers parse service degradations with the same
    code that parses pipeline-stage degradations.
    """
    return {
        "ok": False,
        "rung": "stub",
        "degradation": {
            "stage": stage,
            "reason": reason,
            "error_type": error_type,
            "artifacts": {},
        },
    }


__all__ = [
    "AnalyzeOptions",
    "AnalyzeRequest",
    "JobRecord",
    "JobState",
    "ProtocolError",
    "degraded_result",
]
