"""Supervised grammar-analysis service.

An asyncio HTTP/JSON front over the counterexample pipeline with the
full robustness stack: admission control with load shedding
(:mod:`repro.service.admission`), subprocess worker supervision with
retries and hang/crash detection (:mod:`repro.service.supervisor`),
per-grammar circuit breakers (:mod:`repro.service.breaker`), and a
crash-safe journaled job store with restart resume
(:mod:`repro.service.journal`). See ``docs/SERVICE.md``.
"""

from repro.service.admission import (
    Admitted,
    AdmissionConfig,
    AdmissionController,
    Decision,
    Rejected,
    Shed,
)
from repro.service.app import AnalysisService, ServiceConfig, serve_main
from repro.service.breaker import BreakerBoard, BreakerState, CircuitBreaker
from repro.service.journal import JobJournal, ReplayStats, resumable
from repro.service.protocol import (
    AnalyzeOptions,
    AnalyzeRequest,
    JobRecord,
    JobState,
    ProtocolError,
    degraded_result,
)
from repro.service.supervisor import (
    AttemptOutcome,
    SupervisorConfig,
    WorkerSupervisor,
)
from repro.service.worker import CRASH_EXIT_CODE, run_analysis, worker_entry

__all__ = [
    "Admitted",
    "AdmissionConfig",
    "AdmissionController",
    "AnalysisService",
    "AnalyzeOptions",
    "AnalyzeRequest",
    "AttemptOutcome",
    "BreakerBoard",
    "BreakerState",
    "CRASH_EXIT_CODE",
    "CircuitBreaker",
    "Decision",
    "JobJournal",
    "JobRecord",
    "JobState",
    "ProtocolError",
    "Rejected",
    "ReplayStats",
    "ServiceConfig",
    "Shed",
    "SupervisorConfig",
    "WorkerSupervisor",
    "degraded_result",
    "resumable",
    "serve_main",
    "worker_entry",
    "run_analysis",
]
