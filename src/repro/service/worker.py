"""The analysis worker: one request, one subprocess, one JSON result.

:func:`run_analysis` is the pure core — request payload in, JSON-ready
result out — shared by unit tests (in-process) and the subprocess entry
:func:`worker_entry`. The subprocess half adds the supervision contract:

* a **heartbeat thread** sends a beat over the result pipe at a fixed
  interval (first beat immediately), so the supervisor can tell a
  long-running analysis from a wedged worker;
* **fault arming**: the payload carries serialized
  :class:`~repro.robust.faults.FaultSpec` entries plus per-point arrival
  offsets (the supervisor passes the job's attempt count), so a
  ``count``-bounded crash spec fires on exactly the planned attempts
  even though each attempt is a fresh process;
* the ``worker`` injection point at entry translates
  :class:`~repro.robust.faults.InjectedCrash` into ``os._exit(3)`` (a
  genuine hard death — no cleanup, no result) and
  :class:`~repro.robust.faults.InjectedHang` into a heartbeat-free
  sleep, the two failure modes the supervisor must detect from outside.

Results always carry ``ok`` and, on failure, ``permanent``: a grammar
syntax error is permanent (retrying cannot parse it), an unexpected
internal error is transient (a retry on a healthy worker may succeed).
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Mapping

from repro.perf import metrics
from repro.robust.faults import (
    FaultSpec,
    InjectedCrash,
    InjectedHang,
    fire,
    registry,
)

#: Exit code a crash-injected worker dies with (visible to the
#: supervisor as a non-zero ``exitcode`` without a result).
CRASH_EXIT_CODE = 3


def run_analysis(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Analyse one grammar request; never raises.

    The payload mirrors :class:`~repro.service.protocol.AnalyzeRequest`
    plus service context (``cache_dir``). Returns a result dict with
    per-phase metrics — a cache-warm request shows no ``automaton``
    build phase, which is how the service's metrics surface cache hits.
    """
    from repro.core import CounterexampleFinder, safe_format_report, summary_to_json
    from repro.grammar import GrammarError, load_grammar, normalize_algorithm
    from repro.perf.cache import (
        AutomatonCache,
        analyze_conflicts_cached,
        build_automaton_cached,
    )

    options = payload.get("options", {})
    sleep_s = float(options.get("chaos_sleep_s", 0.0) or 0.0)
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    try:
        with metrics.collecting() as collector:
            grammar = load_grammar(
                payload["grammar"], name=str(payload.get("name", "grammar"))
            )
            algorithm = normalize_algorithm(
                options.get("table_algorithm") or grammar.table_algorithm
            )
            cache_dir = payload.get("cache_dir")
            cache = AutomatonCache(cache_dir) if cache_dir else None
            automaton = build_automaton_cached(grammar, cache, algorithm)
            lint_findings: list[dict[str, Any]] | None = None
            if options.get("lint"):
                from repro.lint import run_lint

                lint_findings = [
                    diagnostic.as_dict()
                    for diagnostic in run_lint(grammar).diagnostics
                ]
            finder = CounterexampleFinder(
                automaton,
                time_limit=float(options.get("time_limit", 2.0)),
                cumulative_limit=float(options.get("cumulative_limit", 30.0)),
                verify=bool(options.get("verify", True)),
                max_configurations=int(options.get("max_configurations", 500_000)),
            )
            summary = finder.explain_all()
            ambiguity: list[dict[str, Any]] | None = None
            if options.get("ambiguity") and automaton.conflicts:
                verdicts = analyze_conflicts_cached(automaton, cache)
                ambiguity = [
                    {
                        "state": conflict.state_id,
                        "terminal": conflict.terminal.name,
                        "verdict": verdict.verdict.value,
                        "witness": (
                            [t.name for t in verdict.witness]
                            if verdict.witness is not None
                            else None
                        ),
                    }
                    for conflict, verdict in verdicts.items()
                ]
            reports = [safe_format_report(report) for report in summary.reports]
        result: dict[str, Any] = {
            "ok": True,
            "grammar": grammar.name,
            "algorithm": algorithm,
            "conflicts": summary.num_conflicts,
            "summary": summary_to_json(summary),
            "reports": reports,
            "phases": _phases(collector),
        }
        if lint_findings is not None:
            result["lint"] = lint_findings
        if ambiguity is not None:
            result["ambiguity"] = ambiguity
        return result
    except GrammarError as error:
        return {"ok": False, "permanent": True, "error": str(error)}
    except Exception as error:  # noqa: BLE001 — the worker fault boundary
        return {
            "ok": False,
            "permanent": False,
            "error": f"{type(error).__qualname__}: {error}",
            "traceback": traceback.format_exc(),
        }


def _phases(collector: metrics.MetricsCollector) -> dict[str, Any]:
    return {
        path: {"count": count, "total_s": round(total, 6)}
        for path, (count, total) in sorted(collector.spans.items())
    }


# ---------------------------------------------------------------------- #
# Subprocess entry


def _arm_faults(payload: Mapping[str, Any]) -> None:
    """Install the supervisor-forwarded fault plan in this process.

    The registry is reset first: under a fork start-method the child
    inherits the parent's registry (installed specs *and* arrival
    counts), and the payload's plan — specs plus attempt-seeded arrival
    offsets — must be the only thing armed here.
    """
    registry().reset()
    specs = payload.get("faults") or []
    if specs:
        registry().install(*(FaultSpec.from_json(spec) for spec in specs))
    offsets = payload.get("fault_arrivals") or {}
    if offsets:
        registry().seed_arrivals(
            {str(point): int(offset) for point, offset in offsets.items()}
        )


def _heartbeat_loop(send, interval: float, stop: threading.Event) -> None:
    while True:
        try:
            send(("hb", time.monotonic()))
        except (OSError, ValueError, BrokenPipeError):
            return
        if stop.wait(interval):
            return


def worker_entry(conn, payload: Mapping[str, Any]) -> None:
    """``multiprocessing`` target: heartbeat, analyse, send, exit."""
    import os

    _arm_faults(payload)
    send_lock = threading.Lock()

    def send(message: tuple[str, Any]) -> None:
        with send_lock:
            conn.send(message)

    try:
        fire("worker", context=str(payload.get("name", "")))
    except InjectedCrash:
        os._exit(CRASH_EXIT_CODE)
    except InjectedHang:
        # A wedged worker: alive, silent. No heartbeat thread was
        # started, so the supervisor's hang detector must reap us.
        time.sleep(3600.0)
        os._exit(CRASH_EXIT_CODE)

    stop = threading.Event()
    interval = float(payload.get("heartbeat_interval", 0.1))
    beater = threading.Thread(
        target=_heartbeat_loop, args=(send, interval, stop), daemon=True
    )
    beater.start()
    try:
        result = run_analysis(payload)
    finally:
        stop.set()
    try:
        send(("result", result))
        conn.close()
    except (OSError, ValueError, BrokenPipeError):
        pass


__all__ = ["CRASH_EXIT_CODE", "run_analysis", "worker_entry"]
