"""Per-grammar-fingerprint circuit breakers.

One poison grammar — one that reliably crashes, hangs, or times out its
worker — must not starve the fleet: after ``threshold`` consecutive
failures its breaker *opens* and further requests for the same grammar
are answered immediately with a degraded (stub-rung) verdict instead of
burning another worker. After ``cooldown`` seconds the breaker goes
*half-open* and admits exactly one probe: success closes it, failure
re-opens it for another cooldown.

The classic pattern (Nygard, *Release It!*), deterministic here: the
clock is injectable, state transitions happen only inside :meth:`allow`
/ :meth:`record_failure` / :meth:`record_success`, and the board
snapshots cleanly into ``/healthz``.
"""

from __future__ import annotations

import enum
import time
from typing import Callable

Clock = Callable[[], float]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker for one grammar fingerprint."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.total_failures = 0
        self.opened_at: float | None = None
        self._probe_outstanding = False

    # ------------------------------------------------------------------ #

    def allow(self) -> bool:
        """May a request proceed right now?

        In the open state, the first call after the cooldown flips to
        half-open and is admitted as the probe; until that probe reports
        back, everything else is refused.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self.opened_at is not None
            if self._clock() - self.opened_at >= self.cooldown:
                self.state = BreakerState.HALF_OPEN
                self._probe_outstanding = True
                return True
            return False
        # HALF_OPEN: one probe at a time.
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None
        self._probe_outstanding = False

    def record_failure(self) -> None:
        self.total_failures += 1
        self.consecutive_failures += 1
        self._probe_outstanding = False
        if (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = self._clock()

    # ------------------------------------------------------------------ #

    def retry_after(self) -> float:
        """Seconds until the next probe could be admitted (0 if now)."""
        if self.state is not BreakerState.OPEN or self.opened_at is None:
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - self.opened_at))


class BreakerBoard:
    """All breakers, keyed by grammar fingerprint."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Clock = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, key: str) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self.threshold, cooldown=self.cooldown, clock=self._clock
            )
            self._breakers[key] = breaker
        return breaker

    def states(self) -> dict[str, dict[str, object]]:
        """Non-closed breakers, for ``/healthz`` (closed ones are noise)."""
        return {
            key: {
                "state": breaker.state.value,
                "consecutive_failures": breaker.consecutive_failures,
                "total_failures": breaker.total_failures,
                "retry_after_s": round(breaker.retry_after(), 3),
            }
            for key, breaker in sorted(self._breakers.items())
            if breaker.state is not BreakerState.CLOSED
            or breaker.total_failures > 0
        }

    @property
    def open_count(self) -> int:
        return sum(
            1
            for breaker in self._breakers.values()
            if breaker.state is not BreakerState.CLOSED
        )


__all__ = ["BreakerBoard", "BreakerState", "CircuitBreaker"]
