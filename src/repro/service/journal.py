"""Crash-safe, append-only job journal (JSONL with atomic rotation).

Every job mutation appends one full :class:`~repro.service.protocol.JobRecord`
snapshot as a JSON line; replay folds the lines left to right, so the
last intact snapshot per job id wins. Snapshots-not-deltas keeps replay
trivially idempotent: replaying a journal twice — or a journal whose
tail was torn off by ``kill -9`` — can never invent a job or a state
transition that was not durably recorded.

Torn-write tolerance:

* a **torn final line** (the classic crash-mid-``write``) fails JSON
  decoding and is skipped — the job simply resumes from its previous
  snapshot;
* on re-open for append, a missing trailing newline is **healed** first,
  so the next snapshot starts on a fresh line instead of fusing with the
  torn fragment;
* mid-file garbage (torn line later fused by a live writer that kept
  appending) is counted and skipped, never fatal.

Rotation rewrites the journal as one snapshot per retained job — live
jobs always, terminal jobs up to ``keep_terminal`` (newest first) — into
a temp file published with ``os.replace``, so a crash during rotation
leaves the old journal intact.

The ``journal`` fault-injection point simulates a torn write: under an
installed :class:`~repro.robust.faults.FaultKind.TORN_WRITE` spec the
line is persisted only up to its midpoint, exactly what a power cut
mid-``write(2)`` leaves behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.robust.faults import InjectedTornWrite, fire
from repro.service.protocol import JobRecord, JobState


@dataclass
class ReplayStats:
    """What :meth:`JobJournal.replay` saw while folding the journal."""

    lines: int = 0
    applied: int = 0
    torn: int = 0
    errors: list[str] = field(default_factory=list)


class JobJournal:
    """Append-only JSONL journal of job snapshots.

    Args:
        path: Journal file location (parent directories are created).
        fsync: Force each append to stable storage. Off by default —
            the chaos contract only promises *at-least-once* execution
            after a crash, and an OS-buffered line lost with the power
            merely re-runs the job.
        rotate_after: Appends between automatic compactions.
        keep_terminal: Terminal-job snapshots to retain across rotation
            (newest first); live jobs are always retained.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        fsync: bool = False,
        rotate_after: int = 512,
        keep_terminal: int = 256,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.rotate_after = rotate_after
        self.keep_terminal = keep_terminal
        self.appends_since_rotate = 0
        self.torn_writes = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Writing

    def append(self, record: JobRecord) -> None:
        """Durably append one snapshot of *record*."""
        line = json.dumps(record.to_json(), separators=(",", ":"))
        self._write_line(line)
        self.appends_since_rotate += 1

    def _write_line(self, line: str) -> None:
        healed = self._needs_heal()
        with open(self.path, "a", encoding="utf-8") as handle:
            if healed:
                handle.write("\n")
            try:
                fire("journal")
                handle.write(line + "\n")
            except InjectedTornWrite:
                # Simulate a crash mid-write: persist only a prefix, no
                # trailing newline. The snapshot is lost; replay falls
                # back to the job's previous snapshot.
                handle.write(line[: max(1, len(line) // 2)])
                self.torn_writes += 1
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def _needs_heal(self) -> bool:
        """True when the journal exists and does not end in a newline."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    # ------------------------------------------------------------------ #
    # Reading

    def replay(self) -> tuple[dict[str, JobRecord], ReplayStats]:
        """Fold the journal into the latest snapshot per job id."""
        stats = ReplayStats()
        records: dict[str, JobRecord] = {}
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return records, stats
        for index, raw in enumerate(lines):
            raw = raw.strip()
            if not raw:
                continue
            stats.lines += 1
            try:
                record = JobRecord.from_json(json.loads(raw))
            except (ValueError, KeyError, TypeError) as error:
                stats.torn += 1
                stats.errors.append(f"line {index + 1}: {error}")
                continue
            records[record.id] = record
            stats.applied += 1
        return records, stats

    # ------------------------------------------------------------------ #
    # Rotation

    def maybe_rotate(self, records: Iterable[JobRecord]) -> bool:
        """Compact once enough appends have accumulated."""
        if self.appends_since_rotate < self.rotate_after:
            return False
        self.rotate(records)
        return True

    def rotate(self, records: Iterable[JobRecord]) -> None:
        """Atomically rewrite the journal as one snapshot per job.

        Live (non-terminal) jobs are always retained; terminal jobs are
        capped at ``keep_terminal``, newest ``updated_at`` first. The
        rewrite goes through a temp file + ``os.replace``, so a crash
        mid-rotation preserves the previous journal byte-for-byte.
        """
        live: list[JobRecord] = []
        terminal: list[JobRecord] = []
        for record in records:
            (terminal if record.state.terminal else live).append(record)
        terminal.sort(key=lambda record: record.updated_at, reverse=True)
        retained = live + terminal[: self.keep_terminal]
        retained.sort(key=lambda record: record.created_at)
        tmp = self.path.with_name(self.path.name + ".rotate.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in retained:
                handle.write(
                    json.dumps(record.to_json(), separators=(",", ":")) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self.appends_since_rotate = 0

    # ------------------------------------------------------------------ #

    def info(self) -> dict[str, Any]:
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "path": str(self.path),
            "size_bytes": size,
            "appends_since_rotate": self.appends_since_rotate,
            "torn_writes": self.torn_writes,
        }


def resumable(records: dict[str, JobRecord]) -> list[JobRecord]:
    """The jobs a restarted service must re-enqueue, oldest first.

    ``queued`` jobs never ran; ``running`` jobs were in flight when the
    process died — both come back as ``queued`` (attempt counters
    preserved, so a crash-looping grammar still marches toward its
    breaker). Terminal jobs are *not* resumed: re-running completed work
    is the duplicate side effect the journal exists to prevent.
    """
    pending = [
        record
        for record in records.values()
        if record.state in (JobState.QUEUED, JobState.RUNNING)
    ]
    pending.sort(key=lambda record: record.created_at)
    return pending


__all__ = ["JobJournal", "ReplayStats", "resumable"]
