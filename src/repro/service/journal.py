"""Crash-safe, append-only job journal (JSONL with atomic rotation).

The storage discipline — full snapshots, idempotent left-to-right
replay, torn-final-line skip + heal, atomic temp+fsync+``os.replace``
rotation, stale-rotation-temp sweep on open — lives in the generic
:class:`repro.robust.ledger.SnapshotLedger`; this module keeps only the
job-shaped policy on top of it:

* snapshots are :class:`~repro.service.protocol.JobRecord` documents,
  re-validated on replay (a line that parses as JSON but not as a job
  record counts as torn, never as state);
* rotation retains live jobs always and terminal jobs up to
  ``keep_terminal`` (newest first), ordered by creation time;
* :func:`resumable` names the jobs a restarted service must re-enqueue.

The ``journal`` fault-injection point simulates a torn write: under an
installed :class:`~repro.robust.faults.FaultKind.TORN_WRITE` spec the
line is persisted only up to its midpoint, exactly what a power cut
mid-``write(2)`` leaves behind.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterable

from repro.robust.ledger import ReplayStats, SnapshotLedger
from repro.service.protocol import JobRecord, JobState


class JobJournal:
    """Append-only JSONL journal of job snapshots.

    Args:
        path: Journal file location (parent directories are created).
        fsync: Force each append to stable storage. Off by default —
            the chaos contract only promises *at-least-once* execution
            after a crash, and an OS-buffered line lost with the power
            merely re-runs the job.
        rotate_after: Appends between automatic compactions.
        keep_terminal: Terminal-job snapshots to retain across rotation
            (newest first); live jobs are always retained.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        fsync: bool = False,
        rotate_after: int = 512,
        keep_terminal: int = 256,
    ) -> None:
        self._ledger = SnapshotLedger(
            path, key="id", fsync=fsync, rotate_after=rotate_after
        )
        self.keep_terminal = keep_terminal

    # ------------------------------------------------------------------ #
    # Storage-level state, delegated to the generic ledger

    @property
    def path(self) -> Path:
        return self._ledger.path

    @property
    def fsync(self) -> bool:
        return self._ledger.fsync

    @property
    def rotate_after(self) -> int:
        return self._ledger.rotate_after

    @property
    def appends_since_rotate(self) -> int:
        return self._ledger.appends_since_rotate

    @property
    def torn_writes(self) -> int:
        return self._ledger.torn_writes

    @property
    def stale_temps_removed(self) -> int:
        return self._ledger.stale_temps_removed

    # ------------------------------------------------------------------ #
    # Writing

    def append(self, record: JobRecord) -> None:
        """Durably append one snapshot of *record*."""
        self._ledger.append(record.to_json())

    # ------------------------------------------------------------------ #
    # Reading

    def replay(self) -> tuple[dict[str, JobRecord], ReplayStats]:
        """Fold the journal into the latest snapshot per job id."""
        return self._ledger.replay(decode=JobRecord.from_json)

    # ------------------------------------------------------------------ #
    # Rotation

    def maybe_rotate(self, records: Iterable[JobRecord]) -> bool:
        """Compact once enough appends have accumulated."""
        if self._ledger.appends_since_rotate < self._ledger.rotate_after:
            return False
        self.rotate(records)
        return True

    def rotate(self, records: Iterable[JobRecord]) -> None:
        """Atomically rewrite the journal as one snapshot per job.

        Live (non-terminal) jobs are always retained; terminal jobs are
        capped at ``keep_terminal``, newest ``updated_at`` first. The
        rewrite goes through a temp file + ``os.replace``, so a crash
        mid-rotation preserves the previous journal byte-for-byte.
        """
        live: list[JobRecord] = []
        terminal: list[JobRecord] = []
        for record in records:
            (terminal if record.state.terminal else live).append(record)
        terminal.sort(key=lambda record: record.updated_at, reverse=True)
        retained = live + terminal[: self.keep_terminal]
        retained.sort(key=lambda record: record.created_at)
        self._ledger.rotate(record.to_json() for record in retained)

    # ------------------------------------------------------------------ #

    def info(self) -> dict[str, Any]:
        return self._ledger.info()


def resumable(records: dict[str, JobRecord]) -> list[JobRecord]:
    """The jobs a restarted service must re-enqueue, oldest first.

    ``queued`` jobs never ran; ``running`` jobs were in flight when the
    process died — both come back as ``queued`` (attempt counters
    preserved, so a crash-looping grammar still marches toward its
    breaker). Terminal jobs are *not* resumed: re-running completed work
    is the duplicate side effect the journal exists to prevent.
    """
    pending = [
        record
        for record in records.values()
        if record.state in (JobState.QUEUED, JobState.RUNNING)
    ]
    pending.sort(key=lambda record: record.created_at)
    return pending


__all__ = ["JobJournal", "ReplayStats", "resumable"]
