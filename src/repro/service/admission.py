"""Admission control: bounded queue, budget envelopes, load shedding.

Nothing enters the job queue unchecked. The controller:

* **validates** the request shape (size caps are *rejections* — HTTP
  4xx, retrying is pointless);
* **clamps** the requested budgets into the service's per-request
  envelope (a client may ask for less time than the cap, never more);
* **sheds** load when the queue is full or the optional global
  :class:`~repro.robust.budget.Budget` envelope is exhausted — HTTP 503
  with a ``Retry-After`` derived from observed job latency, so clients
  back off proportionally to actual saturation instead of hammering.

The ``queue`` fault-injection point forces the queue-full path for
chaos tests without actually filling the queue.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

from repro.robust.budget import Budget, CancellationToken
from repro.robust.errors import BudgetExhausted, SearchTimeout
from repro.robust.faults import InjectedFault, fire
from repro.service.protocol import AnalyzeOptions, AnalyzeRequest

Clock = Callable[[], float]


@dataclass(frozen=True)
class AdmissionConfig:
    """Service-side envelopes every request is clamped into."""

    max_queue: int = 64
    max_time_limit: float = 10.0
    max_cumulative_limit: float = 60.0
    max_configurations: int = 2_000_000
    max_grammar_bytes: int = 256 * 1024
    max_chaos_sleep_s: float = 30.0
    #: Optional global wall-clock envelope: once this much time has
    #: passed since the service started, new work is shed. ``None``
    #: disables the global envelope (the normal production setting).
    global_time_budget: float | None = None
    #: Floor/ceiling for the Retry-After hint (seconds).
    min_retry_after: float = 1.0
    max_retry_after: float = 60.0


@dataclass(frozen=True)
class Admitted:
    """The request may run, with budgets clamped into the envelope."""

    options: AnalyzeOptions


@dataclass(frozen=True)
class Shed:
    """Transient refusal (HTTP 503 + Retry-After): try again later."""

    reason: str
    retry_after: int


@dataclass(frozen=True)
class Rejected:
    """Permanent refusal (HTTP 4xx): retrying cannot help."""

    reason: str
    status: int = 400


Decision = Admitted | Shed | Rejected


class AdmissionController:
    """Decides, for each request, admit / shed / reject."""

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        token: CancellationToken | None = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock
        #: The global envelope is a real ``repro.robust`` budget sharing
        #: the service's cancellation token: admission charges one node
        #: per admitted job and polls it, so both the wall-clock envelope
        #: and service shutdown shed load through the same mechanism.
        self.envelope = Budget(
            time_limit=self.config.global_time_budget,
            token=token,
            stage="admission",
            clock=clock,
        ).start()
        self.admitted = 0
        self.shed = 0
        self.rejected = 0
        #: Exponential moving average of completed-job latency, feeding
        #: the Retry-After estimate.
        self._avg_job_seconds = 1.0

    # ------------------------------------------------------------------ #

    def decide(self, request: AnalyzeRequest, queue_depth: int) -> Decision:
        """Admission decision for *request* given the current queue."""
        config = self.config
        if len(request.grammar.encode()) > config.max_grammar_bytes:
            self.rejected += 1
            return Rejected(
                f"grammar exceeds {config.max_grammar_bytes} bytes", status=413
            )
        try:
            fire("queue", context=request.name)
        except (InjectedFault, BudgetExhausted, SearchTimeout):
            self.shed += 1
            return Shed("queue full (injected)", self._retry_after(queue_depth))
        if queue_depth >= config.max_queue:
            self.shed += 1
            return Shed("queue full", self._retry_after(queue_depth))
        try:
            self.envelope.charge()
            self.envelope.check()
        except (BudgetExhausted, SearchTimeout):
            self.shed += 1
            return Shed(
                "global budget envelope exhausted",
                self._retry_after(queue_depth),
            )
        except Exception as error:  # Cancelled — service shutting down
            self.shed += 1
            return Shed(f"service unavailable: {error}", self._retry_after(0))
        self.admitted += 1
        return Admitted(options=self.clamp(request.options))

    def clamp(self, options: AnalyzeOptions) -> AnalyzeOptions:
        """Clip the request's budgets into the per-request envelope."""
        config = self.config
        return AnalyzeOptions(
            time_limit=min(max(options.time_limit, 0.0), config.max_time_limit),
            cumulative_limit=min(
                max(options.cumulative_limit, 0.0), config.max_cumulative_limit
            ),
            table_algorithm=options.table_algorithm,
            ambiguity=options.ambiguity,
            lint=options.lint,
            verify=options.verify,
            max_configurations=min(
                max(options.max_configurations, 1), config.max_configurations
            ),
            chaos_sleep_s=min(
                max(options.chaos_sleep_s, 0.0), config.max_chaos_sleep_s
            ),
        )

    # ------------------------------------------------------------------ #

    def observe_job_seconds(self, seconds: float) -> None:
        """Fold one completed job's wall time into the latency EMA."""
        self._avg_job_seconds = 0.8 * self._avg_job_seconds + 0.2 * max(
            seconds, 0.01
        )

    def _retry_after(self, queue_depth: int) -> int:
        estimate = (queue_depth + 1) * self._avg_job_seconds
        clamped = min(
            max(estimate, self.config.min_retry_after), self.config.max_retry_after
        )
        return int(math.ceil(clamped))

    def counters(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "rejected": self.rejected,
        }


__all__ = [
    "Admitted",
    "AdmissionConfig",
    "AdmissionController",
    "Decision",
    "Rejected",
    "Shed",
]
