"""The worker-pool supervisor: subprocess isolation, retries, breakers.

Each job attempt runs in a **fresh subprocess** — the only isolation
that survives a segfault, an OOM kill, or a poisoned interpreter. The
supervisor watches the attempt from the parent event loop:

* **result** on the pipe → success;
* process **exit without a result** → crash;
* **heartbeats stop** while the process lives → hang (the worker beats
  on a side thread, so a wedged analysis is detected, not awaited);
* the attempt outlives its **hard deadline** (request budget + slack) →
  timeout.

Crash/hang/timeout are transient: the supervisor retries under a
:class:`~repro.robust.retry.RetryPolicy` (exponential backoff + seeded
jitter, awaited asynchronously so the event loop keeps serving). Every
failed attempt feeds the grammar's circuit breaker; once the breaker
opens — or retries are exhausted — the job terminates *degraded* with a
stub-rung verdict rather than being lost. Permanent failures (syntax
errors) terminate immediately as *failed* and never burn retries.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.robust.retry import RetryPolicy
from repro.service.breaker import BreakerBoard
from repro.service.protocol import JobRecord, degraded_result


def _default_context() -> multiprocessing.context.BaseContext:
    # fork is dramatically cheaper than spawn (the parent already has
    # repro imported) and the worker only computes and writes to a pipe.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX fallback
        return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class SupervisorConfig:
    """Detection thresholds and the retry policy."""

    heartbeat_interval: float = 0.1
    #: Silence longer than this while the process lives → hang.
    hang_timeout: float = 5.0
    #: Added to the request's cumulative budget for the hard wall cap
    #: (stage slack, serialization, interpreter startup).
    hard_timeout_grace: float = 30.0
    poll_interval: float = 0.02
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3, base_delay=0.05, multiplier=2.0, max_delay=2.0
        )
    )


@dataclass
class AttemptOutcome:
    """What one subprocess attempt produced."""

    result: dict[str, Any] | None = None
    failure: str | None = None  # "crash" | "hang" | "timeout"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.result is not None


class WorkerSupervisor:
    """Runs job attempts in subprocesses and supervises them."""

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        breakers: BreakerBoard | None = None,
        counters: dict[str, int] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.breakers = breakers if breakers is not None else BreakerBoard()
        self.counters = counters if counters is not None else {}
        self._clock = clock
        self._ctx = _default_context()
        self._rng = random.Random(0xC0FFEE)
        self._live: set[multiprocessing.process.BaseProcess] = set()

    # ------------------------------------------------------------------ #

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    async def run_job(
        self, job: JobRecord, payload: dict[str, Any]
    ) -> tuple[bool, dict[str, Any], int]:
        """Run *job* to a terminal result.

        Returns ``(ok, result, attempts_made)``. ``ok`` is ``False``
        both for permanent failures (result carries ``error``) and for
        degradations (result carries ``degradation``); the caller maps
        those onto the job states.
        """
        breaker = self.breakers.get(job.request.grammar_key)
        policy = self.config.retry
        attempts = job.attempts
        while True:
            if not breaker.allow():
                self._count("breaker.rejected")
                return (
                    False,
                    degraded_result(
                        stage="supervisor",
                        reason=(
                            "circuit breaker open for this grammar "
                            f"(retry after {breaker.retry_after():.0f}s)"
                        ),
                        error_type="CircuitBreakerOpen",
                    ),
                    attempts,
                )
            attempt_payload = dict(payload)
            attempt_payload["fault_arrivals"] = {"worker": attempts}
            attempt_payload["heartbeat_interval"] = self.config.heartbeat_interval
            outcome = await self._run_attempt(attempt_payload)
            attempts += 1
            if outcome.ok:
                assert outcome.result is not None
                if outcome.result.get("ok"):
                    breaker.record_success()
                    return True, outcome.result, attempts
                if outcome.result.get("permanent"):
                    # A request that can never succeed is not the
                    # grammar "failing" the fleet — no breaker charge.
                    self._count("failure.permanent")
                    return False, outcome.result, attempts
                breaker.record_failure()
                self._count("failure.transient")
            else:
                assert outcome.failure is not None
                breaker.record_failure()
                self._count(f"failure.{outcome.failure}")
            if not policy.should_retry(attempts - job.attempts):
                self._count("retries.exhausted")
                return (
                    False,
                    degraded_result(
                        stage="supervisor",
                        reason=(
                            f"gave up after {attempts} attempts: "
                            f"{outcome.failure or 'transient error'} "
                            f"{outcome.detail}".strip()
                        ),
                        error_type="RetriesExhausted",
                    ),
                    attempts,
                )
            self._count("retries.scheduled")
            pause = policy.delay(attempts - job.attempts, self._rng)
            if pause > 0.0:
                await asyncio.sleep(pause)

    # ------------------------------------------------------------------ #

    async def _run_attempt(self, payload: Mapping[str, Any]) -> AttemptOutcome:
        """One subprocess attempt, watched to completion or death."""
        from repro.service.worker import worker_entry

        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_entry, args=(child_conn, dict(payload)), daemon=True
        )
        process.start()
        self._live.add(process)
        child_conn.close()
        options = payload.get("options", {})
        hard_cap = (
            float(options.get("cumulative_limit", 30.0))
            + float(options.get("chaos_sleep_s", 0.0) or 0.0)
            + self.config.hard_timeout_grace
        )
        started = self._clock()
        last_beat = started
        result: dict[str, Any] | None = None
        try:
            while True:
                drained_eof = False
                try:
                    while parent_conn.poll(0):
                        kind, value = parent_conn.recv()
                        if kind == "hb":
                            last_beat = self._clock()
                        elif kind == "result":
                            result = value
                except (EOFError, OSError):
                    drained_eof = True
                if result is not None:
                    return AttemptOutcome(result=result)
                now = self._clock()
                if drained_eof or not process.is_alive():
                    # Dead (or pipe closed) without a result: a crash.
                    process.join(timeout=1.0)
                    return AttemptOutcome(
                        failure="crash",
                        detail=f"exitcode={process.exitcode}",
                    )
                if now - last_beat > self.config.hang_timeout:
                    self._kill(process)
                    return AttemptOutcome(
                        failure="hang",
                        detail=f"no heartbeat for {now - last_beat:.2f}s",
                    )
                if now - started > hard_cap:
                    self._kill(process)
                    return AttemptOutcome(
                        failure="timeout",
                        detail=f"exceeded hard cap of {hard_cap:.1f}s",
                    )
                await asyncio.sleep(self.config.poll_interval)
        finally:
            parent_conn.close()
            if process.is_alive():
                self._kill(process)
            self._live.discard(process)

    def _kill(self, process: multiprocessing.process.BaseProcess) -> None:
        try:
            process.kill()
            process.join(timeout=1.0)
        except (OSError, ValueError):
            pass

    def kill_all(self) -> int:
        """Hard-stop every live worker (shutdown past the drain deadline)."""
        killed = 0
        for process in list(self._live):
            if process.is_alive():
                self._kill(process)
                killed += 1
            self._live.discard(process)
        return killed


__all__ = ["AttemptOutcome", "SupervisorConfig", "WorkerSupervisor"]
