"""The supervised grammar-analysis service: asyncio server + job store.

One process, one event loop, four moving parts:

* an **HTTP front** — a deliberately tiny HTTP/1.1 reader over
  :func:`asyncio.start_server` (request line, headers, ``Content-Length``
  body; one request per connection). The API is three routes:
  ``POST /v1/analyze``, ``GET /v1/jobs/<id>``, and the
  ``/healthz`` / ``/readyz`` probes;
* the **admission controller** (:mod:`repro.service.admission`) standing
  between the socket and the queue;
* an asyncio **worker pool** pulling jobs off the queue and running each
  through the :class:`~repro.service.supervisor.WorkerSupervisor`
  (subprocess isolation, retries, circuit breakers);
* the **journal** (:mod:`repro.service.journal`): every state change is
  appended before it is acknowledged, so ``kill -9`` at any instant
  loses at most the in-flight line and a restart resumes every
  non-terminal job.

Submissions carrying an identical fingerprint (grammar + options) while
a matching job is still live are **coalesced** onto that job instead of
queued twice; repeat submissions after completion re-run but ride the
warm automaton cache, which the per-job phase metrics make visible (a
cache-warm run has no ``automaton`` build span).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Awaitable, Callable, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.perf.metrics import MetricsCollector
from repro.robust.budget import CancellationToken
from repro.robust.faults import install_from_env, registry
from repro.service.admission import (
    Admitted,
    AdmissionConfig,
    AdmissionController,
    Decision,
    Rejected,
    Shed,
)
from repro.service.breaker import BreakerBoard
from repro.service.journal import JobJournal, ReplayStats, resumable
from repro.service.protocol import (
    AnalyzeRequest,
    JobRecord,
    JobState,
    ProtocolError,
)
from repro.service.supervisor import SupervisorConfig, WorkerSupervisor

#: Cap on the longest ``?wait=`` a client may request (seconds).
MAX_WAIT_S = 120.0


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service needs to boot."""

    host: str = "127.0.0.1"
    port: int = 8777
    workers: int = 2
    journal_path: str = "service-journal.jsonl"
    cache_dir: str | None = None
    drain_timeout: float = 10.0
    max_body_bytes: int = 1024 * 1024
    fsync_journal: bool = False
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)


class AnalysisService:
    """Job store, queue, worker pool, and probes — the service brain."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        wall: Callable[[], float] = time.time,
    ) -> None:
        self.config = config or ServiceConfig()
        self._clock = clock
        self._wall = wall
        self.token = CancellationToken()
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self.supervisor = WorkerSupervisor(
            self.config.supervisor, breakers=self.breakers
        )
        self.admission = AdmissionController(
            self.config.admission, token=self.token, clock=clock
        )
        self.journal = JobJournal(
            self.config.journal_path, fsync=self.config.fsync_journal
        )
        self.jobs: dict[str, JobRecord] = {}
        self.queue: asyncio.Queue[str] = asyncio.Queue()
        self.events: dict[str, asyncio.Event] = {}
        self.metrics = MetricsCollector(clock=clock)
        self.replay_stats = ReplayStats()
        self.resumed = 0
        self.coalesced = 0
        self.draining = False
        self._running: set[str] = set()
        self._worker_tasks: list[asyncio.Task[None]] = []

    # ------------------------------------------------------------------ #
    # Lifecycle

    async def start(self) -> None:
        """Replay the journal, resume unfinished work, start the pool."""
        records, self.replay_stats = self.journal.replay()
        for record in records.values():
            if record.state.terminal:
                self.jobs[record.id] = record
        for record in resumable(records):
            requeued = record.advance(JobState.QUEUED, self._wall())
            self._journal(requeued)
            self.events[requeued.id] = asyncio.Event()
            self.queue.put_nowait(requeued.id)
            self.resumed += 1
        for index in range(max(1, self.config.workers)):
            self._worker_tasks.append(
                asyncio.create_task(
                    self._worker_loop(), name=f"service-worker-{index}"
                )
            )

    async def shutdown(self, drain_timeout: float | None = None) -> dict[str, int]:
        """Drain under a deadline, checkpoint the rest, stop everything."""
        self.draining = True
        self.token.cancel("service shutting down")
        deadline = (
            drain_timeout if drain_timeout is not None else self.config.drain_timeout
        )
        drained = True
        try:
            await asyncio.wait_for(self.queue.join(), timeout=max(deadline, 0.0))
        except asyncio.TimeoutError:
            drained = False
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks.clear()
        killed = self.supervisor.kill_all()
        checkpointed = 0
        for job in list(self.jobs.values()):
            if not job.state.terminal:
                # Back to queued: the next boot's resume pass re-runs it.
                self._journal(job.advance(JobState.QUEUED, self._wall()))
                checkpointed += 1
        self.journal.rotate(self.jobs.values())
        return {
            "drained": int(drained),
            "checkpointed": checkpointed,
            "workers_killed": killed,
        }

    # ------------------------------------------------------------------ #
    # Submission

    def submit(
        self, request: AnalyzeRequest
    ) -> tuple[Decision, JobRecord | None, bool]:
        """Admission-check *request*; returns (decision, job, coalesced)."""
        decision = self.admission.decide(request, self.queue.qsize())
        if not isinstance(decision, Admitted):
            return decision, None, False
        clamped = AnalyzeRequest(
            grammar=request.grammar, name=request.name, options=decision.options
        )
        for job in self.jobs.values():
            if (
                not job.state.terminal
                and job.request.fingerprint == clamped.fingerprint
            ):
                self.coalesced += 1
                return decision, job, True
        job = JobRecord.new(clamped, self._wall())
        self._journal(job)
        self.events[job.id] = asyncio.Event()
        self.queue.put_nowait(job.id)
        return decision, job, False

    async def wait_for(self, job_id: str, timeout: float) -> JobRecord | None:
        """Block until *job_id* reaches a terminal state (or timeout)."""
        job = self.jobs.get(job_id)
        if job is None:
            return None
        if job.state.terminal:
            return job
        event = self.events.get(job_id)
        if event is not None:
            try:
                await asyncio.wait_for(event.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass
        return self.jobs.get(job_id)

    # ------------------------------------------------------------------ #
    # The worker loop

    def _journal(self, record: JobRecord) -> None:
        self.jobs[record.id] = record
        self.journal.append(record)

    def _payload(self, job: JobRecord) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "grammar": job.request.grammar,
            "name": job.request.name,
            "options": job.request.options.to_json(),
            "faults": [spec.to_json() for spec in registry().specs],
        }
        if self.config.cache_dir:
            payload["cache_dir"] = self.config.cache_dir
        return payload

    async def _worker_loop(self) -> None:
        while True:
            job_id = await self.queue.get()
            try:
                job = self.jobs.get(job_id)
                if job is None or job.state.terminal:
                    continue
                started = self._clock()
                job = job.advance(JobState.RUNNING, self._wall())
                self._journal(job)
                self._running.add(job_id)
                try:
                    ok, result, attempts = await self.supervisor.run_job(
                        job, self._payload(job)
                    )
                finally:
                    self._running.discard(job_id)
                self._finish(job, ok, result, attempts)
                self.admission.observe_job_seconds(self._clock() - started)
                self.journal.maybe_rotate(self.jobs.values())
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 — keep the pool alive
                job = self.jobs.get(job_id)
                if job is not None and not job.state.terminal:
                    self._finish(
                        job,
                        False,
                        {
                            "ok": False,
                            "error": f"{type(error).__qualname__}: {error}",
                        },
                        job.attempts,
                    )
            finally:
                self.queue.task_done()

    def _finish(
        self, job: JobRecord, ok: bool, result: dict[str, Any], attempts: int
    ) -> None:
        if ok:
            state = JobState.COMPLETED
            error = None
            self._merge_phases(result.get("phases") or {})
        elif result.get("permanent"):
            state = JobState.FAILED
            error = str(result.get("error", "permanent failure"))
        else:
            state = JobState.DEGRADED
            degradation = result.get("degradation") or {}
            error = str(
                degradation.get("reason")
                or result.get("error")
                or "degraded without detail"
            )
        final = job.advance(
            state, self._wall(), attempts=attempts, result=result, error=error
        )
        self._journal(final)
        event = self.events.get(job.id)
        if event is not None:
            event.set()

    def _merge_phases(self, phases: Mapping[str, Any]) -> None:
        for path, cell in phases.items():
            existing = self.metrics.spans.get(path)
            count = int(cell.get("count", 0))
            total = float(cell.get("total_s", 0.0))
            if existing is None:
                self.metrics.spans[path] = [count, total]
            else:
                existing[0] += count
                existing[1] += total

    # ------------------------------------------------------------------ #
    # Probes

    def healthz(self) -> dict[str, Any]:
        by_state: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
        return {
            "status": "draining" if self.draining else "ok",
            "queue_depth": self.queue.qsize(),
            "running": len(self._running),
            "jobs": by_state,
            "resumed": self.resumed,
            "coalesced": self.coalesced,
            "admission": self.admission.counters(),
            "retries": dict(sorted(self.supervisor.counters.items())),
            "breakers": {
                "open": self.breakers.open_count,
                "states": self.breakers.states(),
            },
            "journal": {
                **self.journal.info(),
                "replay": {
                    "lines": self.replay_stats.lines,
                    "applied": self.replay_stats.applied,
                    "torn": self.replay_stats.torn,
                },
            },
            "phases": {
                path: {"count": count, "total_s": round(total, 6)}
                for path, (count, total) in sorted(self.metrics.spans.items())
            },
        }

    def readyz(self) -> tuple[int, dict[str, Any]]:
        if self.draining:
            return 503, {"ready": False, "reason": "draining"}
        return 200, {"ready": True}


# ---------------------------------------------------------------------- #
# The HTTP front


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response_bytes(
    status: int, body: Mapping[str, Any], headers: Mapping[str, str] | None = None
) -> bytes:
    payload = json.dumps(body, separators=(",", ":")).encode()
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + payload


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> tuple[str, str, bytes] | tuple[None, int, str]:
    """Parse one HTTP/1.1 request; returns (method, target, body) or
    (None, status, reason) when the request itself is malformed."""
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        return None, 400, "request line too long"
    if not request_line:
        return None, 400, "empty request"
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        return None, 400, "malformed request line"
    method, target = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None, 400, "malformed Content-Length"
    if content_length < 0:
        return None, 400, "malformed Content-Length"
    if content_length > max_body:
        return None, 413, f"body exceeds {max_body} bytes"
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            return None, 400, "body shorter than Content-Length"
    return method, target, body


async def _handle_analyze(
    service: AnalysisService, query: Mapping[str, list[str]], body: bytes
) -> tuple[int, dict[str, Any], dict[str, str]]:
    try:
        data = json.loads(body.decode() or "{}")
        if not isinstance(data, dict):
            raise ProtocolError("request body must be a JSON object")
        request = AnalyzeRequest.from_json(data)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        return 400, {"error": f"malformed JSON body: {error}"}, {}
    except ProtocolError as error:
        return 400, {"error": str(error)}, {}
    decision, job, coalesced = service.submit(request)
    if isinstance(decision, Rejected):
        return decision.status, {"error": decision.reason}, {}
    if isinstance(decision, Shed):
        return (
            503,
            {"error": decision.reason, "retry_after_s": decision.retry_after},
            {"Retry-After": str(decision.retry_after)},
        )
    assert job is not None
    wait_s = 0.0
    if "wait" in query:
        raw = (query["wait"] or ["0"])[0]
        try:
            wait_s = min(max(float(raw), 0.0), MAX_WAIT_S)
        except ValueError:
            wait_s = MAX_WAIT_S if raw in ("true", "yes", "") else 0.0
    if wait_s > 0.0:
        waited = await service.wait_for(job.id, wait_s)
        if waited is not None:
            job = waited
    status = 200 if job.state.terminal else 202
    payload = job.public_json()
    payload["href"] = f"/v1/jobs/{job.id}"
    if coalesced:
        payload["coalesced"] = True
    return status, payload, {}


def make_handler(
    service: AnalysisService,
) -> Callable[[asyncio.StreamReader, asyncio.StreamWriter], Awaitable[None]]:
    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await _read_request(reader, service.config.max_body_bytes)
            if parsed[0] is None:
                _, status, reason = parsed
                writer.write(_response_bytes(int(status), {"error": str(reason)}))
            else:
                method, target, body = parsed
                split = urlsplit(str(target))
                path = split.path
                query = parse_qs(split.query)
                status, payload, headers = await _route(
                    service, str(method), path, query, bytes(body)
                )
                writer.write(_response_bytes(status, payload, headers))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as error:  # noqa: BLE001 — connection fault boundary
            try:
                writer.write(
                    _response_bytes(
                        500, {"error": f"{type(error).__qualname__}: {error}"}
                    )
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    return handle


async def _route(
    service: AnalysisService,
    method: str,
    path: str,
    query: Mapping[str, list[str]],
    body: bytes,
) -> tuple[int, dict[str, Any], dict[str, str]]:
    if path == "/v1/analyze":
        if method != "POST":
            return 405, {"error": "use POST"}, {}
        return await _handle_analyze(service, query, body)
    if path.startswith("/v1/jobs/"):
        if method != "GET":
            return 405, {"error": "use GET"}, {}
        job = service.jobs.get(path[len("/v1/jobs/") :])
        if job is None:
            return 404, {"error": "no such job"}, {}
        return 200, job.public_json(), {}
    if path == "/healthz":
        return 200, service.healthz(), {}
    if path == "/readyz":
        status, payload = service.readyz()
        return status, payload, {}
    return 404, {"error": f"no such route: {path}"}, {}


# ---------------------------------------------------------------------- #
# CLI entry


async def _serve(config: ServiceConfig) -> int:
    service = AnalysisService(config)
    await service.start()
    server = await asyncio.start_server(
        make_handler(service), config.host, config.port
    )
    bound = server.sockets[0].getsockname()
    print(f"listening on http://{bound[0]}:{bound[1]}", flush=True)
    if service.resumed:
        print(f"resumed {service.resumed} journaled job(s)", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    hooked: list[signal.Signals] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            hooked.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        await stop.wait()
        print("shutting down: draining queue", flush=True)
        server.close()
        await server.wait_closed()
        summary = await service.shutdown()
        print(
            "shutdown complete: "
            f"drained={bool(summary['drained'])} "
            f"checkpointed={summary['checkpointed']} "
            f"workers_killed={summary['workers_killed']}",
            flush=True,
        )
    finally:
        for signum in hooked:
            loop.remove_signal_handler(signum)
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    """``repro-conflicts serve`` — boot the analysis service."""
    parser = argparse.ArgumentParser(
        prog="repro-conflicts serve",
        description="Serve grammar analyses over HTTP with supervision, "
        "admission control, and crash-safe resume.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8777, help="0 picks an ephemeral port"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--journal", default="service-journal.jsonl")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--drain-timeout", type=float, default=10.0)
    parser.add_argument("--breaker-threshold", type=int, default=3)
    parser.add_argument("--breaker-cooldown", type=float, default=30.0)
    parser.add_argument(
        "--global-time-budget",
        type=float,
        default=None,
        help="shed all new work this many seconds after boot",
    )
    parser.add_argument("--hang-timeout", type=float, default=5.0)
    parser.add_argument("--retry-attempts", type=int, default=3)
    parser.add_argument("--fsync-journal", action="store_true")
    args = parser.parse_args(argv)
    # Faults travel by environment so chaos tests can poison a server
    # subprocess; malformed specs should fail loudly at boot, not later.
    install_from_env()
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        journal_path=args.journal,
        cache_dir=args.cache_dir,
        drain_timeout=args.drain_timeout,
        fsync_journal=args.fsync_journal,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        admission=AdmissionConfig(
            max_queue=args.queue_limit,
            global_time_budget=args.global_time_budget,
        ),
        supervisor=replace(
            SupervisorConfig(),
            hang_timeout=args.hang_timeout,
            retry=replace(SupervisorConfig().retry, max_attempts=args.retry_attempts),
        ),
    )
    try:
        return asyncio.run(_serve(config))
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr, flush=True)
        return 130


__all__ = [
    "AnalysisService",
    "ServiceConfig",
    "make_handler",
    "serve_main",
]
