"""Content-addressed on-disk cache for LALR automatons.

Automaton construction — the LR(0) collection plus the lookahead
fixpoint — dominates start-up cost for the larger corpus grammars
(~0.3 s for Java.1), and it is repeated by every corpus sweep, every
fuzz iteration that re-examines a surviving grammar, and every CLI
invocation. This cache keys the serialized full-automaton format
(:mod:`repro.automaton.serialize`) on a **content hash of the grammar
itself**, so:

* any edit to the grammar — productions, start symbol, precedence —
  changes the key and forces a rebuild (no staleness by construction);
* renaming a grammar file or moving it between machines still hits,
  because the key ignores names and paths;
* bumping ``FULL_FORMAT_VERSION`` invalidates every entry at once.

The fingerprint hashes the grammar's canonical DSL emission
(:func:`repro.grammar.emit.dump_grammar`), which normalises whitespace
and comments while round-tripping production order, the start symbol,
and precedence declarations — exactly the inputs automaton construction
depends on.

Writes are atomic (temp file + :func:`os.replace`) so a crashed or
concurrent writer can never leave a half-written entry; unreadable or
corrupt entries are treated as misses and rebuilt. Hits and misses are
mirrored to the metrics layer (``cache.hit`` / ``cache.miss``) when
profiling is active.

Usage::

    from repro.perf.cache import AutomatonCache, build_lalr_cached

    cache = AutomatonCache("~/.cache/repro")
    automaton = build_lalr_cached(grammar, cache)   # builds, then caches
    automaton = build_lalr_cached(grammar, cache)   # decodes (~5x faster)
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.analysis import (
    ANALYSIS_VERSION,
    AmbiguityVerdict,
    ConflictAmbiguity,
    analyze_conflicts,
)
from repro.automaton.conflicts import Conflict
from repro.automaton.lalr import LALRAutomaton, build_lalr
from repro.automaton.serialize import (
    FULL_FORMAT_VERSION,
    dump_automaton,
    load_automaton,
)
from repro.grammar import Grammar
from repro.grammar.emit import dump_grammar
from repro.perf import metrics

#: Default cache directory; overridable via the ``REPRO_CACHE_DIR``
#: environment variable (checked by :func:`default_cache_dir`).
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro" / "automatons"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/...``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override)
    return DEFAULT_CACHE_DIR


def grammar_fingerprint(grammar: Grammar, algorithm: str = "lalr") -> str:
    """A content hash identifying *grammar* for caching purposes.

    Two grammars share a fingerprint iff their canonical DSL emissions
    match (same productions in the same order, same start symbol, same
    precedence declarations) **and** the same table construction is
    requested — the minimal/canonical LR(1) automatons of one grammar
    are distinct cache entries from its LALR automaton. The grammar's
    *name* is deliberately excluded — it is diagnostic metadata and does
    not affect the automaton. The serialization format version and the
    ambiguity-analysis version are folded in so format or walk-semantics
    changes self-invalidate old entries (including memoized verdicts).
    """
    canonical = dump_grammar(grammar)
    payload = (
        f"repro.automaton/{FULL_FORMAT_VERSION}"
        f"/a{ANALYSIS_VERSION}/{algorithm}\n{canonical}".encode()
    )
    return hashlib.sha256(payload).hexdigest()


#: Quarantined corrupt entries kept per cache directory (oldest pruned).
MAX_QUARANTINED = 8


class AutomatonCache:
    """Directory of serialized automatons keyed by grammar fingerprint.

    Safe for concurrent multi-process use (the service's worker pool
    shares one directory): writes land under unique temp names and are
    published with :func:`os.replace`, so two workers racing to store
    the same fingerprint both succeed — last writer wins with identical
    content, and a reader never observes a torn entry. Any filesystem
    race (directory swept away, replace denied) degrades to a benign
    miss instead of failing the analysis. Corrupt entries are moved to a
    ``*.corrupt-*`` quarantine (bounded, oldest evicted) so a poisoned
    file cannot be re-parsed on every request, and eviction/clearing
    never mistakes quarantine files for live entries.
    """

    def __init__(self, directory: str | os.PathLike[str] | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.write_failures = 0

    # ------------------------------------------------------------------ #

    def _path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def _atomic_write(self, path: Path, text: str) -> bool:
        """Publish *text* at *path* via a unique temp name + ``os.replace``.

        Returns ``False`` (benign failure, counted) instead of raising on
        OS-level races: a concurrently removed directory or a denied
        replace must cost a rebuild next time, never the current run.
        """
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
        except OSError:
            self.write_failures += 1
            metrics.count("cache.write_failed")
            return False
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except OSError:
            self.write_failures += 1
            metrics.count("cache.write_failed")
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return False
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return True

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is not re-parsed every read.

        The quarantine name carries the pid so concurrent quarantiners
        cannot collide; the set is bounded by :data:`MAX_QUARANTINED`
        (oldest evicted first). Every step tolerates concurrent movers.
        """
        target = path.with_name(f"{path.name}.corrupt-{os.getpid()}")
        suffix = 0
        try:
            while target.exists():
                suffix += 1
                target = path.with_name(f"{path.name}.corrupt-{os.getpid()}.{suffix}")
            os.replace(path, target)
        except OSError:
            return
        self.quarantined += 1
        metrics.count("cache.quarantined")
        try:
            backlog = sorted(
                self.directory.glob("*.corrupt-*"),
                key=lambda entry: entry.stat().st_mtime,
            )
        except OSError:
            return
        for stale in backlog[: max(0, len(backlog) - MAX_QUARANTINED)]:
            try:
                stale.unlink()
            except OSError:
                pass

    def get(self, grammar: Grammar, algorithm: str = "lalr") -> LALRAutomaton | None:
        """The cached automaton for *grammar*, or ``None`` on a miss.

        Corrupt, truncated, or unreadable entries count as misses; the
        offending file is quarantined (renamed aside) so it is rebuilt
        once instead of re-parsed on every request. An entry whose
        recorded construction algorithm disagrees with the requested one
        (hash collision or hand-edited file) is also a miss.
        """
        path = self._path_for(grammar_fingerprint(grammar, algorithm))
        try:
            text = path.read_text()
        except OSError:
            self._miss()
            return None
        try:
            with metrics.span("cache/decode"):
                automaton = load_automaton(text)
        except (ValueError, KeyError, IndexError, TypeError):
            self._quarantine(path)
            self._miss()
            return None
        if automaton.algorithm != algorithm:
            self._miss()
            return None
        # The cached automaton carries its own reloaded Grammar; swap in
        # the caller's instance so identity-based consumers (reports,
        # registries) see the object they passed.  Safe because the
        # fingerprint guarantees the two emit identical DSL text.
        if dump_grammar(automaton.grammar) == dump_grammar(grammar):
            automaton.grammar = grammar
            automaton.lr0.grammar = grammar
        self.hits += 1
        metrics.count("cache.hit")
        return automaton

    def put(self, grammar: Grammar, automaton: LALRAutomaton) -> Path:
        """Store *automaton* under *grammar*'s fingerprint (atomically).

        Concurrent writers of the same fingerprint serialize identical
        content, so whichever ``os.replace`` lands last is as good as the
        first; an OS-level race is absorbed as a benign non-write.
        """
        path = self._path_for(grammar_fingerprint(grammar, automaton.algorithm))
        with metrics.span("cache/encode"):
            text = dump_automaton(automaton)
        self._atomic_write(path, text)
        return path

    def get_verdicts(
        self, grammar: Grammar, automaton: LALRAutomaton
    ) -> dict[Conflict, ConflictAmbiguity] | None:
        """Memoized ambiguity verdicts for *automaton*, or ``None``.

        The verdicts ride inside the cached automaton document as an
        optional ``"ambiguity"`` block — unknown to (and ignored by) the
        serialization readers, so a verdict-bearing entry stays loadable
        by any v3-aware decoder. A block from a different analysis
        version, or one whose conflicts disagree with the automaton's
        (hash collision, hand-edited file), is a miss.
        """
        path = self._path_for(grammar_fingerprint(grammar, automaton.algorithm))
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        block = document.get("ambiguity") if isinstance(document, dict) else None
        if not isinstance(block, dict):
            return None
        if block.get("analysis_version") != ANALYSIS_VERSION:
            return None
        entries = block.get("verdicts")
        conflicts = automaton.tables.conflicts
        if not isinstance(entries, list) or len(entries) != len(conflicts):
            return None
        terminals = {t.name: t for t in automaton.grammar.terminals}
        verdicts: dict[Conflict, ConflictAmbiguity] = {}
        try:
            for conflict, entry in zip(conflicts, entries):
                if (
                    entry["state"] != conflict.state_id
                    or entry["terminal"] != conflict.terminal.name
                ):
                    return None
                witness = entry["witness"]
                verdicts[conflict] = ConflictAmbiguity(
                    verdict=AmbiguityVerdict(entry["verdict"]),
                    witness=(
                        tuple(terminals[name] for name in witness)
                        if witness is not None
                        else None
                    ),
                    detail=entry["detail"],
                    nodes=entry["nodes"],
                )
        except (KeyError, TypeError, ValueError):
            return None
        metrics.count("cache.verdicts.hit")
        return verdicts

    def put_verdicts(
        self,
        grammar: Grammar,
        automaton: LALRAutomaton,
        verdicts: dict[Conflict, ConflictAmbiguity],
    ) -> Path | None:
        """Attach *verdicts* to the cached entry for *automaton*.

        Requires a complete verdict map (one per reported conflict);
        partial maps are not stored. When no cache entry exists yet the
        automaton itself is serialized first, so verdict memoization
        works even for runs that built the automaton uncached.
        """
        conflicts = automaton.tables.conflicts
        if any(conflict not in verdicts for conflict in conflicts):
            return None
        path = self._path_for(grammar_fingerprint(grammar, automaton.algorithm))
        try:
            document = json.loads(path.read_text())
            if not isinstance(document, dict):
                raise ValueError("corrupt cache entry")
        except (OSError, ValueError):
            # Missing, corrupt, or half-replaced by a concurrent writer:
            # re-serialize the automaton we already hold. If even the
            # re-read fails (writes disabled), skip memoization benignly.
            self.put(grammar, automaton)
            try:
                document = json.loads(path.read_text())
                if not isinstance(document, dict):
                    raise ValueError("corrupt cache entry")
            except (OSError, ValueError):
                return None
        document["ambiguity"] = {
            "analysis_version": ANALYSIS_VERSION,
            "verdicts": [
                {
                    "state": conflict.state_id,
                    "terminal": conflict.terminal.name,
                    "verdict": verdicts[conflict].verdict.value,
                    "witness": (
                        [t.name for t in verdicts[conflict].witness]
                        if verdicts[conflict].witness is not None
                        else None
                    ),
                    "detail": verdicts[conflict].detail,
                    "nodes": verdicts[conflict].nodes,
                }
                for conflict in conflicts
            ],
        }
        text = json.dumps(document, separators=(",", ":"))
        self._atomic_write(path, text)
        return path

    def clear(self) -> int:
        """Delete every cache entry (and quarantine file); returns the
        number of live entries removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for entry in self.directory.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        for entry in self.directory.glob("*.corrupt-*"):
            try:
                entry.unlink()
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------ #

    def _miss(self) -> None:
        self.misses += 1
        metrics.count("cache.miss")

    def info(self) -> dict[str, int]:
        """Hit/miss/quarantine counters and the entries on disk."""
        entries = quarantined = 0
        if self.directory.is_dir():
            entries = sum(1 for _ in self.directory.glob("*.json"))
            quarantined = sum(1 for _ in self.directory.glob("*.corrupt-*"))
        return {
            "entries": entries,
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": quarantined,
            "write_failures": self.write_failures,
        }


def build_automaton_cached(
    grammar: Grammar,
    cache: AutomatonCache | None,
    algorithm: str | None = None,
) -> LALRAutomaton:
    """:func:`~repro.automaton.ielr.build_automaton` through an optional cache.

    With ``cache=None`` this is exactly ``build_automaton`` — callers
    can thread an optional cache without branching. *algorithm* defaults
    to the grammar's own ``table_algorithm``. On a miss the freshly
    built automaton (tables forced, so conflicts are captured) is stored
    before being returned.
    """
    from repro.automaton.ielr import build_automaton
    from repro.grammar import normalize_algorithm

    algorithm = normalize_algorithm(
        algorithm if algorithm is not None else grammar.table_algorithm
    )
    if cache is None:
        return build_automaton(grammar, algorithm)
    cached = cache.get(grammar, algorithm)
    if cached is not None:
        return cached
    automaton = build_automaton(grammar, algorithm)
    cache.put(grammar, automaton)
    return automaton


def analyze_conflicts_cached(
    automaton: LALRAutomaton,
    cache: AutomatonCache | None,
    **options,
) -> dict[Conflict, ConflictAmbiguity]:
    """:func:`repro.analysis.analyze_conflicts` through an optional cache.

    With ``cache=None`` — or with any non-default walk *options*, which
    would make memoized verdicts incomparable — this is exactly
    ``analyze_conflicts``. Otherwise verdicts are read from (and written
    back to) the ``"ambiguity"`` block of the grammar's cache entry.
    """
    if cache is None or options:
        return analyze_conflicts(automaton, **options)
    cached = cache.get_verdicts(automaton.grammar, automaton)
    if cached is not None:
        return cached
    verdicts = analyze_conflicts(automaton)
    try:
        cache.put_verdicts(automaton.grammar, automaton, verdicts)
    except OSError:
        pass  # a read-only cache directory must not fail the analysis
    return verdicts


def build_lalr_cached(
    grammar: Grammar, cache: AutomatonCache | None
) -> LALRAutomaton:
    """:func:`~repro.automaton.lalr.build_lalr` through an optional cache.

    The LALR-only spelling of :func:`build_automaton_cached`, kept for
    callers that always want the paper's construction regardless of the
    grammar's ``%algorithm`` directive.
    """
    if cache is None:
        return build_lalr(grammar)
    cached = cache.get(grammar)
    if cached is not None:
        return cached
    automaton = build_lalr(grammar)
    cache.put(grammar, automaton)
    return automaton
