"""Opt-in parallel per-conflict explanation (process pool).

Conflicts are embarrassingly parallel: each explanation touches the
automaton read-only and produces an independent
:class:`~repro.core.finder.FinderReport`. This module fans the conflict
list of one grammar out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges the results **in conflict order**, so the output is
deterministic and — because formatted reports carry no timing — byte-
identical to a serial run's.

Design notes:

* Workers receive the automaton as the serialized full-automaton payload
  (:func:`repro.automaton.serialize.dump_automaton`) through the pool
  initializer, decoded once per worker — not per task, and never through
  pickling the live object graph.
* Tasks are conflict *indices* (tiny); only the finished report crosses
  the process boundary coming back. :class:`~repro.grammar.Symbol` and
  :class:`~repro.core.derivation.Derivation` define ``__reduce__`` so
  interning, cached hashes, and the ``DOT`` sentinel survive the trip.
* The per-grammar *cumulative* search budget applies **per worker**: a
  run with ``jobs=N`` may spend up to ``N x cumulative_limit`` of search
  time in the worst case. This errs on the side of finding more unifying
  counterexamples; serial-equivalent accounting would need a shared
  clock across processes for no user-visible benefit.
* The budget-escalating retry pass (``retry_timed_out``) runs in the
  *parent* over the merged report list, reusing the serial finder's
  retry logic verbatim.
* When profiling is active in the parent, each task also ships back its
  worker-side metrics delta, which the parent merges — span totals and
  counters therefore aggregate CPU time across workers (wall-clock
  speedup shows up as ``explain`` span total exceeding elapsed time).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.automaton.lalr import LALRAutomaton, build_lalr
from repro.core.finder import (
    CounterexampleFinder,
    FinderReport,
    FinderSummary,
    aggregate_reports,
)
from repro.grammar import Grammar
from repro.perf import metrics

# Per-process worker state, populated by the pool initializer.
_WORKER_FINDER: CounterexampleFinder | None = None
_WORKER_COLLECT: bool = False


def _init_worker(
    payload: str, finder_kwargs: dict[str, Any], collect: bool
) -> None:
    """Pool initializer: decode the automaton, build this worker's finder."""
    global _WORKER_FINDER, _WORKER_COLLECT
    from repro.automaton.serialize import load_automaton

    automaton = load_automaton(payload)
    _WORKER_FINDER = CounterexampleFinder(automaton, **finder_kwargs)
    _WORKER_COLLECT = collect


def _explain_index(index: int) -> tuple[FinderReport, dict[str, Any] | None]:
    """Explain conflict *index*; returns the report and a metrics delta."""
    assert _WORKER_FINDER is not None, "worker initializer did not run"
    conflict = _WORKER_FINDER.conflicts[index]
    if _WORKER_COLLECT:
        with metrics.collecting() as collector:
            report = _WORKER_FINDER.explain(conflict)
        return report, collector.to_json()
    return _WORKER_FINDER.explain(conflict), None


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means the CPU count."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    return jobs


def explain_all_parallel(
    source: Grammar | LALRAutomaton,
    jobs: int | None = None,
    **finder_kwargs: Any,
) -> FinderSummary:
    """Parallel drop-in for :meth:`CounterexampleFinder.explain_all`.

    Args:
        source: A grammar or a prebuilt automaton.
        jobs: Worker process count; ``None``/``0`` uses the CPU count,
            ``1`` falls back to the serial finder in-process (no pool).
        **finder_kwargs: Forwarded to :class:`CounterexampleFinder` in
            every worker (``time_limit``, ``verify``, ...). The
            ``token`` cancellation hook is parent-side only and not
            supported here; ``retry_timed_out`` runs in the parent.

    Returns:
        A :class:`FinderSummary` whose ``reports`` are in conflict order,
        aggregated by the same :func:`aggregate_reports` as the serial
        path.
    """
    if "token" in finder_kwargs and finder_kwargs["token"] is not None:
        raise ValueError(
            "cooperative cancellation tokens do not cross process "
            "boundaries; use the serial finder for cancellable runs"
        )
    finder_kwargs.pop("token", None)
    jobs = resolve_jobs(jobs)
    # A bool or a RetryPolicy — preserved as-is for the parent finder.
    retry = finder_kwargs.pop("retry_timed_out", False)

    automaton = source if isinstance(source, LALRAutomaton) else build_lalr(source)
    conflicts = automaton.conflicts
    if jobs == 1 or len(conflicts) <= 1:
        return CounterexampleFinder(
            automaton, retry_timed_out=retry, **finder_kwargs
        ).explain_all()

    from repro.automaton.serialize import dump_automaton

    with metrics.span("parallel/encode"):
        payload = dump_automaton(automaton)
    collector = metrics.active()

    reports: list[FinderReport] = []
    with metrics.span("parallel/pool"):
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(conflicts)),
            initializer=_init_worker,
            initargs=(payload, finder_kwargs, collector is not None),
        ) as pool:
            # ``map`` preserves submission order: reports come back in
            # conflict order no matter which worker finishes first.
            for report, delta in pool.map(_explain_index, range(len(conflicts))):
                reports.append(report)
                if collector is not None and delta is not None:
                    collector.merge(metrics.MetricsCollector.from_json(delta))
    metrics.count("parallel.tasks", len(reports))

    retried = upgraded = 0
    if retry:
        # Parent-side retry pass, sharing the serial finder's logic. The
        # parent finder starts with the budget already spent by workers
        # (their per-report search times), mirroring serial accounting.
        parent = CounterexampleFinder(
            automaton, retry_timed_out=retry, **finder_kwargs
        )
        parent._unifying_budget_spent = sum(
            report.stats.elapsed for report in reports if report.stats is not None
        )
        retried, upgraded = parent._retry_pass(reports)

    return aggregate_reports(
        automaton.grammar.name, reports, retried=retried, upgraded=upgraded
    )
