"""Deterministic benchmark runner and regression gate (``python -m repro.perf.bench``).

Three subcommands:

``run``
    Execute the benchmark suite — per corpus grammar, automaton
    construction plus a full finder pass, repeated ``--repeats`` times —
    and write a schema-versioned JSON report of per-grammar, per-phase
    **medians** (medians, not means: one GC pause or scheduler hiccup
    must not move the committed baseline). Phase timings come straight
    from the metrics layer's span tree, so the benchmark measures
    exactly what ``--profile`` reports.

``compare``
    Diff a current report against a committed baseline. A phase fails
    the gate only when it regressed by more than ``--threshold`` (a
    *ratio*, default 2.0 — CI runners are noisy; small drifts are not
    regressions) **and** by more than ``--min-delta`` seconds (ratios of
    microsecond phases are meaningless). Timings are normalised by each
    report's calibration constant first, so a baseline recorded on a
    fast machine does not fail every run on a slow one.

``cache-check``
    The automaton-cache acceptance gate: measures an in-process cold
    build vs a cached load of a large grammar and fails unless the
    speedup is at least ``--min-speedup`` (default 2.0).

The default grammar set is the *fast* corpus subset — every conflict
resolves well under a second, so results are stable and a CI run takes
seconds, not minutes. ``--all`` runs the whole corpus (the nightly job
does); heavy grammars get the reduced Table-1 budgets either way.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any

SCHEMA = "repro.perf.bench/1"

#: Corpus grammars whose finder pass is comfortably sub-second per
#: conflict: stable timings, suitable for the per-PR CI gate.
FAST_GRAMMARS = [
    "figure1",
    "figure3",
    "figure7",
    "abcd",
    "simp2",
    "xi",
    "eqn",
    "SQL.1",
    "SQL.2",
    "C.2",
    "Java.3",
    "stackexc01",
    "stackovf01",
    "nonlalr01",
    "nonlalr02",
    "nonlalr03-genuine",
]

#: Span paths promoted into the report (missing ones are skipped).
PHASES = [
    "automaton",
    "automaton/lr0",
    "automaton/lookaheads",
    "analysis",
    "analysis/sr",
    "analysis/walk",
    "tables",
    "explain",
    "explain/lasg",
    "explain/search",
    "explain/verify",
    "explain/nonunifying",
]

#: Counters promoted into the report.
COUNTERS = [
    "automaton.states",
    "automaton.items",
    "automaton.conflicts",
    "search.configurations.explored",
    "lasg.vertices.materialized",
    "lasg.vertices.estimated_full",
    "lasg.successors.hit",
    "lasg.successors.miss",
]


def calibrate(rounds: int = 60_000) -> float:
    """Seconds for a fixed CPU-bound workload on this machine.

    Used to normalise timings across machines in ``compare``: what
    matters is how a phase moved *relative to the host's speed*, not the
    absolute number a faster or slower runner produces.
    """
    digest = b"repro.perf.bench calibration"
    start = time.perf_counter()
    for _ in range(rounds):
        digest = hashlib.sha256(digest).digest()
    return time.perf_counter() - start


def _bench_grammar(
    name: str, repeats: int, time_limit: float, cumulative_limit: float
) -> dict[str, Any]:
    from repro.core.finder import CounterexampleFinder
    from repro.corpus import registry
    from repro.perf import metrics

    grammar = registry.load(name)
    phase_samples: dict[str, list[float]] = {}
    totals: list[float] = []
    counters: dict[str, int] = {}
    conflicts = 0
    for _ in range(repeats):
        with metrics.collecting() as collector:
            started = time.perf_counter()
            from repro.automaton.lalr import build_lalr

            automaton = build_lalr(grammar)
            finder = CounterexampleFinder(
                automaton,
                time_limit=time_limit,
                cumulative_limit=cumulative_limit,
            )
            summary = finder.explain_all()
            totals.append(time.perf_counter() - started)
        conflicts = summary.num_conflicts
        for phase in PHASES:
            total = collector.span_total(phase)
            if collector.span_count(phase):
                phase_samples.setdefault(phase, []).append(total)
        # Counters are deterministic; the last repeat's values stand.
        counters = {
            key: collector.counters[key]
            for key in COUNTERS
            if key in collector.counters
        }
    # Cache-entry footprint: what an AutomatonCache entry for this
    # grammar costs on disk, flat (v2) vs compacted (v3) encoding.
    # Sizes are deterministic, so they ride on the last repeat.
    from repro.automaton.serialize import dump_automaton

    cache_entry_bytes = {
        "flat": len(dump_automaton(automaton, compact=False).encode("utf-8")),
        "compact": len(dump_automaton(automaton, compact=True).encode("utf-8")),
    }
    # Static ambiguity verdicts: deterministic (node-budget-only walks),
    # timed in their own collection so finder totals stay comparable
    # against pre-analysis baselines.
    from repro.analysis import analyze_conflicts

    with metrics.collecting() as analysis_collector:
        verdicts = analyze_conflicts(automaton)
    ambiguity_verdicts = {"unambiguous": 0, "ambiguous": 0, "inconclusive": 0}
    for verdict in verdicts.values():
        ambiguity_verdicts[verdict.verdict.value] += 1
    for phase in ("analysis/sr", "analysis/walk"):
        if analysis_collector.span_count(phase):
            phase_samples.setdefault(phase, []).append(
                analysis_collector.span_total(phase)
            )
    return {
        "conflicts": conflicts,
        "ambiguity_verdicts": ambiguity_verdicts,
        "cache_entry_bytes": cache_entry_bytes,
        "total_s": round(statistics.median(totals), 6),
        "phases": {
            phase: round(statistics.median(samples), 6)
            for phase, samples in sorted(phase_samples.items())
        },
        "counters": counters,
    }


def run_suite(
    grammars: list[str],
    repeats: int = 3,
    time_limit: float = 1.0,
    cumulative_limit: float = 30.0,
) -> dict[str, Any]:
    """Run the suite and return the (JSON-ready) report dictionary."""
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "repeats": repeats,
        "time_limit": time_limit,
        "cumulative_limit": cumulative_limit,
        "calibration_s": round(calibrate(), 6),
        "grammars": {},
    }
    for name in grammars:
        report["grammars"][name] = _bench_grammar(
            name, repeats, time_limit, cumulative_limit
        )
    return report


def merge_reports(reports: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold sharded ``run --shard k/M`` reports into one suite report.

    Settings must agree across shards; grammar sets must be disjoint.
    The merged calibration is the mean of the shard calibrations — each
    shard's timings were taken at its own machine speed, so no single
    shard's constant is more correct than another's.
    """
    if not reports:
        raise ValueError("no bench reports to merge")
    for report in reports:
        if report.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported bench schema {report.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
    head = reports[0]
    for key in ("repeats", "time_limit", "cumulative_limit"):
        values = {report.get(key) for report in reports}
        if len(values) != 1:
            raise ValueError(f"shard reports disagree on {key}: {sorted(values)}")
    merged: dict[str, Any] = {
        "schema": SCHEMA,
        "repeats": head["repeats"],
        "time_limit": head["time_limit"],
        "cumulative_limit": head["cumulative_limit"],
        "calibration_s": round(
            statistics.mean(r.get("calibration_s", 0.0) for r in reports), 6
        ),
        "grammars": {},
    }
    for report in reports:
        for name, entry in report.get("grammars", {}).items():
            if name in merged["grammars"]:
                raise ValueError(f"grammar {name!r} appears in multiple shards")
            merged["grammars"][name] = entry
    merged["grammars"] = dict(sorted(merged["grammars"].items()))
    return merged


# ---------------------------------------------------------------------- #
# compare


def compare_reports(
    baseline: dict[str, Any],
    current: dict[str, Any],
    threshold: float = 2.0,
    min_delta: float = 0.05,
) -> tuple[list[str], list[str]]:
    """Regressions and informational lines between two reports.

    Returns ``(failures, lines)``: *failures* is non-empty when some
    phase regressed beyond both the ratio threshold and the absolute
    floor; *lines* is a human-readable table of every comparison.
    """
    for report in (baseline, current):
        if report.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported bench schema {report.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
    # Normalise to the baseline machine's speed.
    scale = baseline.get("calibration_s", 1.0) / max(
        current.get("calibration_s", 1.0), 1e-9
    )
    failures: list[str] = []
    lines: list[str] = [
        f"calibration: baseline={baseline.get('calibration_s')}s "
        f"current={current.get('calibration_s')}s scale={scale:.2f}",
        f"{'grammar':14s} {'phase':22s} {'base':>9s} {'curr':>9s} {'norm':>9s} ratio",
    ]
    for name, base_entry in sorted(baseline.get("grammars", {}).items()):
        curr_entry = current.get("grammars", {}).get(name)
        if curr_entry is None:
            lines.append(f"{name:14s} (missing from current report)")
            continue
        pairs = [("total", base_entry["total_s"], curr_entry["total_s"])]
        pairs += [
            (phase, base_value, curr_entry["phases"].get(phase))
            for phase, base_value in base_entry.get("phases", {}).items()
        ]
        for phase, base_value, curr_value in pairs:
            if curr_value is None:
                continue
            normalised = curr_value * scale
            ratio = normalised / base_value if base_value > 0 else float("inf")
            flag = ""
            if ratio > threshold and normalised - base_value > min_delta:
                flag = "  << REGRESSION"
                failures.append(
                    f"{name}/{phase}: {base_value:.4f}s -> {normalised:.4f}s "
                    f"(x{ratio:.2f}, threshold x{threshold})"
                )
            lines.append(
                f"{name:14s} {phase:22s} {base_value:9.4f} {curr_value:9.4f} "
                f"{normalised:9.4f} x{ratio:.2f}{flag}"
            )
    return failures, lines


# ---------------------------------------------------------------------- #
# improved


def assert_improved(
    baseline: dict[str, Any],
    current: dict[str, Any],
    targets: list[tuple[str, str]],
    min_ratio: float = 1.5,
) -> tuple[list[str], list[str]]:
    """Check that each ``(grammar, phase)`` target got *faster* by ≥ ratio.

    The inverse gate of :func:`compare_reports`: where ``compare`` fails
    on regressions anywhere, ``improved`` fails unless specific phases
    beat the baseline by at least ``min_ratio`` (calibration-normalised).
    Used to lock an optimisation's win into CI so it cannot silently
    erode back.
    """
    for report in (baseline, current):
        if report.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported bench schema {report.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
    scale = baseline.get("calibration_s", 1.0) / max(
        current.get("calibration_s", 1.0), 1e-9
    )
    failures: list[str] = []
    lines: list[str] = [
        f"calibration: baseline={baseline.get('calibration_s')}s "
        f"current={current.get('calibration_s')}s scale={scale:.2f}",
    ]
    for grammar, phase in targets:
        base_entry = baseline.get("grammars", {}).get(grammar)
        curr_entry = current.get("grammars", {}).get(grammar)
        if base_entry is None or curr_entry is None:
            failures.append(f"{grammar}: missing from a report")
            continue
        base_value = (
            base_entry["total_s"]
            if phase == "total"
            else base_entry.get("phases", {}).get(phase)
        )
        curr_value = (
            curr_entry["total_s"]
            if phase == "total"
            else curr_entry.get("phases", {}).get(phase)
        )
        if base_value is None or curr_value is None:
            failures.append(f"{grammar}/{phase}: missing from a report")
            continue
        normalised = curr_value * scale
        ratio = base_value / max(normalised, 1e-9)
        ok = ratio >= min_ratio
        lines.append(
            f"{grammar:14s} {phase:22s} {base_value:.4f}s -> {normalised:.4f}s "
            f"speedup x{ratio:.2f} (required x{min_ratio}) "
            f"{'OK' if ok else 'FAIL'}"
        )
        if not ok:
            failures.append(
                f"{grammar}/{phase}: only x{ratio:.2f} faster than baseline "
                f"(required x{min_ratio})"
            )
    return failures, lines


# ---------------------------------------------------------------------- #
# cache-check


def cache_check(grammar_name: str = "Java.1", min_speedup: float = 2.0) -> int:
    """Cold-build vs cached-load gate; returns a process exit code."""
    import tempfile

    from repro.automaton.lalr import build_lalr
    from repro.corpus import registry
    from repro.perf.cache import AutomatonCache, build_lalr_cached

    grammar = registry.load(grammar_name)
    with tempfile.TemporaryDirectory() as tmp:
        cache = AutomatonCache(tmp)
        build_lalr_cached(grammar, cache)  # populate

        start = time.perf_counter()
        automaton = build_lalr(grammar)
        _ = automaton.tables
        build_s = time.perf_counter() - start

        start = time.perf_counter()
        cached = build_lalr_cached(grammar, cache)
        load_s = time.perf_counter() - start

        assert cache.hits >= 1 and len(cached.states) == len(automaton.states)
    speedup = build_s / max(load_s, 1e-9)
    status = "OK" if speedup >= min_speedup else "FAIL"
    print(
        f"cache-check [{grammar_name}]: build={build_s:.3f}s "
        f"cached={load_s:.3f}s speedup=x{speedup:.1f} "
        f"(required x{min_speedup}) {status}"
    )
    return 0 if speedup >= min_speedup else 1


# ---------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="Deterministic benchmark runner and regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run the suite and write a JSON report")
    run_p.add_argument("--out", type=Path, required=True, help="output JSON path")
    run_p.add_argument("--repeats", type=int, default=3)
    run_p.add_argument("--time-limit", type=float, default=1.0)
    run_p.add_argument("--cumulative-limit", type=float, default=30.0)
    run_p.add_argument(
        "--grammars", nargs="*", default=None, help="override the grammar set"
    )
    run_p.add_argument(
        "--all", action="store_true", help="benchmark the whole corpus"
    )
    run_p.add_argument(
        "--shard",
        default=None,
        metavar="k/M",
        help="run only grammars[k-1::M]; merge the per-shard reports "
        "with the merge subcommand",
    )

    mrg_p = sub.add_parser("merge", help="merge sharded run reports into one")
    mrg_p.add_argument("reports", nargs="+", type=Path)
    mrg_p.add_argument("--out", type=Path, required=True)

    cmp_p = sub.add_parser("compare", help="gate a report against a baseline")
    cmp_p.add_argument("baseline", type=Path)
    cmp_p.add_argument("current", type=Path)
    cmp_p.add_argument("--threshold", type=float, default=2.0)
    cmp_p.add_argument("--min-delta", type=float, default=0.05)

    imp_p = sub.add_parser(
        "improved", help="assert specific phases beat a baseline by ≥ ratio"
    )
    imp_p.add_argument("baseline", type=Path)
    imp_p.add_argument("current", type=Path)
    imp_p.add_argument("--min-ratio", type=float, default=1.5)
    imp_p.add_argument(
        "--target",
        action="append",
        default=None,
        metavar="GRAMMAR:PHASE",
        help="grammar:phase pair that must have improved (repeatable); "
        "default: C.2:explain/lasg Java.3:explain/lasg",
    )

    chk_p = sub.add_parser("cache-check", help="automaton-cache speedup gate")
    chk_p.add_argument("--grammar", default="Java.1")
    chk_p.add_argument("--min-speedup", type=float, default=2.0)

    args = parser.parse_args(argv)

    if args.command == "run":
        if args.all:
            from repro.corpus import registry

            grammars = [spec.name for spec in registry.all_specs()]
        else:
            grammars = args.grammars or FAST_GRAMMARS
        if args.shard:
            from repro.campaign.units import parse_shard

            k, m = parse_shard(args.shard)
            grammars = grammars[k - 1 :: m]
        report = run_suite(
            grammars,
            repeats=args.repeats,
            time_limit=args.time_limit,
            cumulative_limit=args.cumulative_limit,
        )
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.out} ({len(report['grammars'])} grammars)")
        return 0

    if args.command == "merge":
        try:
            merged = merge_reports(
                [json.loads(path.read_text()) for path in args.reports]
            )
        except ValueError as error:
            print(f"merge error: {error}", file=sys.stderr)
            return 2
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(merged, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.out} ({len(merged['grammars'])} grammars)")
        return 0

    if args.command == "compare":
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
        failures, lines = compare_reports(
            baseline, current, threshold=args.threshold, min_delta=args.min_delta
        )
        print("\n".join(lines))
        if failures:
            print("\nbenchmark regressions detected:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("\nno regressions beyond threshold")
        return 0

    if args.command == "improved":
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
        raw_targets = args.target or ["C.2:explain/lasg", "Java.3:explain/lasg"]
        targets = [
            (entry.split(":", 1)[0], entry.split(":", 1)[1]) for entry in raw_targets
        ]
        failures, lines = assert_improved(
            baseline, current, targets, min_ratio=args.min_ratio
        )
        print("\n".join(lines))
        if failures:
            print("\nrequired improvements not met:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("\nall required improvements hold")
        return 0

    return cache_check(grammar_name=args.grammar, min_speedup=args.min_speedup)


if __name__ == "__main__":
    raise SystemExit(main())
