"""Lightweight tracing/metrics for the explanation pipeline's hot paths.

The paper's headline result is about *speed* (§7, Table 1), so the
pipeline needs a way to answer "where did the time go" without paying for
the answer when nobody asks. This module provides:

* **phase spans** — named, nestable wall-clock regions recorded against a
  monotonic clock (``time.perf_counter``). Nested spans aggregate under a
  slash-joined path (``automaton/lookaheads``), one ``(count, total)``
  cell per path;
* **counters** — named monotone tallies (states built, configurations
  expanded, cache hits);
* a **disabled mode with near-zero overhead**: when no collector is
  active, :func:`span` returns a shared no-op context manager and
  :func:`count` is a single global load and a ``None`` check. Hot loops
  therefore never guard their instrumentation; they just call it.

Collection is opt-in and process-local: the CLI's ``--profile`` /
``--profile-json`` flags and the benchmark runner
(:mod:`repro.perf.bench`) activate a collector around one run and read it
back out. Collectors are plain data — they can be serialized
(:meth:`MetricsCollector.to_json`), reloaded, and merged
(:meth:`MetricsCollector.merge`), which is how parallel workers'
measurements could be folded into a parent report.

The module is deliberately dependency-free (it imports nothing from the
rest of ``repro``), so any layer — ``repro.automaton``, ``repro.core``,
``repro.parsing`` — may import it without creating cycles.

Not thread-safe: the active collector is a module global and span stacks
assume one thread. Parallel explanation uses *processes* (each with its
own module state), so this is not a practical restriction.
"""

from __future__ import annotations

import time
from typing import Any, Callable

SCHEMA = "repro.perf.metrics/1"

Clock = Callable[[], float]


class _NullSpan:
    """The shared no-op span returned while collection is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: pushes its name on enter, aggregates on exit."""

    __slots__ = ("_collector", "_name", "_started")

    def __init__(self, collector: "MetricsCollector", name: str) -> None:
        self._collector = collector
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._collector._stack.append(self._name)
        self._started = self._collector._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        collector = self._collector
        elapsed = collector._clock() - self._started
        path = "/".join(collector._stack)
        collector._stack.pop()
        cell = collector.spans.get(path)
        if cell is None:
            collector.spans[path] = [1, elapsed]
        else:
            cell[0] += 1
            cell[1] += elapsed


class MetricsCollector:
    """Aggregated spans and counters for one profiled run.

    Attributes:
        spans: ``path -> [count, total_seconds]``; the path is the
            slash-joined stack of active span names at exit time.
        counters: ``name -> tally``.
    """

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self._clock = clock
        self.spans: dict[str, list] = {}
        self.counters: dict[str, int] = {}
        self._stack: list[str] = []

    # ------------------------------------------------------------------ #
    # Recording

    def span(self, name: str) -> _Span:
        """A context manager timing one region under *name*."""
        return _Span(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name*."""
        self.counters[name] = self.counters.get(name, 0) + n

    # ------------------------------------------------------------------ #
    # Reading

    def span_total(self, path: str) -> float:
        """Total seconds recorded under *path* (0.0 when never entered)."""
        cell = self.spans.get(path)
        return cell[1] if cell is not None else 0.0

    def span_count(self, path: str) -> int:
        cell = self.spans.get(path)
        return cell[0] if cell is not None else 0

    def merge(self, other: "MetricsCollector") -> None:
        """Fold *other*'s spans and counters into this collector."""
        for path, (count, total) in other.spans.items():
            cell = self.spans.get(path)
            if cell is None:
                self.spans[path] = [count, total]
            else:
                cell[0] += count
                cell[1] += total
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    # ------------------------------------------------------------------ #
    # Serialization

    def to_json(self) -> dict[str, Any]:
        """A JSON-compatible snapshot (schema-versioned)."""
        return {
            "schema": SCHEMA,
            "spans": {
                path: {"count": count, "total_s": total}
                for path, (count, total) in sorted(self.spans.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "MetricsCollector":
        """Inverse of :meth:`to_json`."""
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported metrics schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        collector = cls()
        for path, cell in data.get("spans", {}).items():
            collector.spans[path] = [int(cell["count"]), float(cell["total_s"])]
        for name, value in data.get("counters", {}).items():
            collector.counters[name] = int(value)
        return collector

    def hotspots(self, n: int = 5) -> list[tuple[str, float, float]]:
        """Top-*n* spans by **exclusive** time, descending.

        Exclusive time is a span's total minus the totals of its direct
        child spans — the time spent in the phase *itself*, which is what
        a regression hunt needs (``explain`` always dominates inclusively
        because everything nests under it). Returns ``(path,
        exclusive_s, total_s)`` triples; spans whose exclusive time
        rounds to zero are skipped.
        """
        exclusive: dict[str, float] = {}
        for path, (_count, total) in self.spans.items():
            exclusive[path] = exclusive.get(path, 0.0) + total
            if "/" in path:
                parent = path.rsplit("/", 1)[0]
                exclusive[parent] = exclusive.get(parent, 0.0) - total
        ranked = sorted(
            (
                (path, max(seconds, 0.0), self.spans[path][1])
                for path, seconds in exclusive.items()
                if seconds > 1e-9
            ),
            key=lambda entry: entry[1],
            reverse=True,
        )
        return ranked[:n]

    def render(self) -> str:
        """A human-readable profile: spans as an indented tree, counters."""
        lines = ["phase spans (count, total):"]
        if not self.spans:
            lines.append("  (none recorded)")
        for path in sorted(self.spans):
            count, total = self.spans[path]
            depth = path.count("/")
            name = path.rsplit("/", 1)[-1]
            lines.append(f"  {'  ' * depth}{name:<24} {count:>7}x {total:>9.4f}s")
        lines.append("counters:")
        if not self.counters:
            lines.append("  (none recorded)")
        for name in sorted(self.counters):
            lines.append(f"  {name:<32} {self.counters[name]:>12}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# The module-level switchboard the instrumented code talks to.

_active: MetricsCollector | None = None


def enable(collector: MetricsCollector | None = None) -> MetricsCollector:
    """Activate *collector* (or a fresh one); returns the active collector."""
    global _active
    _active = collector if collector is not None else MetricsCollector()
    return _active


def disable() -> MetricsCollector | None:
    """Deactivate collection; returns the collector that was active."""
    global _active
    collector, _active = _active, None
    return collector


def active() -> MetricsCollector | None:
    """The currently active collector, or ``None``."""
    return _active


def span(name: str):
    """A span on the active collector, or the shared no-op when disabled."""
    collector = _active
    if collector is None:
        return _NULL_SPAN
    return collector.span(name)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the active collector; no-op when disabled."""
    collector = _active
    if collector is not None:
        collector.counters[name] = collector.counters.get(name, 0) + n


class collecting:
    """Context manager: activate a collector for a region, then restore.

    Usage::

        with collecting() as collector:
            ...instrumented work...
        print(collector.render())

    Nesting is supported — the previously active collector (if any) is
    restored on exit, so a profiled sub-region inside a profiled run does
    not silently steal the outer run's measurements.
    """

    def __init__(self, collector: MetricsCollector | None = None) -> None:
        self._collector = collector if collector is not None else MetricsCollector()
        self._previous: MetricsCollector | None = None

    def __enter__(self) -> MetricsCollector:
        global _active
        self._previous = _active
        _active = self._collector
        return self._collector

    def __exit__(self, *exc_info: object) -> None:
        global _active
        _active = self._previous


__all__ = [
    "MetricsCollector",
    "SCHEMA",
    "active",
    "collecting",
    "count",
    "disable",
    "enable",
    "span",
]
