"""Performance layer: tracing/metrics, the automaton cache, parallel
explanation, and the benchmark-regression runner.

Submodules (imported on demand — only :mod:`repro.perf.metrics` is
re-exported here, because the instrumented packages import it during
their own module initialisation and the heavier submodules import *them*
back):

* :mod:`repro.perf.metrics` — phase spans and counters with a near-zero
  disabled mode; the instrumentation layer everything else reads.
* :mod:`repro.perf.cache` — content-addressed (grammar-hash keyed)
  automaton cache so repeated runs skip LALR reconstruction.
* :mod:`repro.perf.parallel` — opt-in process-pool per-conflict
  explanation with a deterministic merge (the CLI's ``--jobs``).
* :mod:`repro.perf.bench` — the deterministic benchmark runner behind
  ``python -m repro.perf.bench`` and the CI regression gate.

See ``docs/PERFORMANCE.md`` for the user-facing guide.
"""

from repro.perf.metrics import (
    MetricsCollector,
    active,
    collecting,
    count,
    disable,
    enable,
    span,
)

__all__ = [
    "MetricsCollector",
    "active",
    "collecting",
    "count",
    "disable",
    "enable",
    "span",
]
