"""SR-automaton: the nondeterministic shift/reduce tables behind a walk.

The deterministic parse tables (:mod:`repro.automaton.tables`) resolve or
report nondeterminism; for ambiguity *detection* the interesting object
is the automaton **before** any resolution — every shift edge and every
reduce item with its raw LALR lookahead mask, side by side. Quaglia's
SR-automata are exactly this view: a nondeterministic machine whose runs
are all bottom-up parses of the grammar, walked in pairs to decide
whether a conflict can produce two distinct parses of one sentence.

:class:`SRAutomaton` extracts that view once per automaton, reusing the
structures the rest of the library already maintains:

* shift edges and reduce-goto edges come from the array-backed adjacency
  (:attr:`~repro.automaton.lr0.LR0Automaton.arrays`);
* reduce applicability is a single ``mask & bit`` test over the bitset
  lookaheads (:attr:`~repro.automaton.lalr.LALRAutomaton.lookahead_masks`);
* context expansion (walking *below* a suffix stack) uses the predecessor
  arrays plus the LR(0) invariant that every state has a unique entry
  symbol, so the states beneath any suffix form a regular language the
  walk can enumerate lazily.

Acceptance is uniform: the augmented production ``START' -> S $`` makes
end-of-input an ordinary shift edge, so "both sides accept" is "both
sides can shift ``$``".
"""

from __future__ import annotations

from repro.automaton.lalr import LALRAutomaton
from repro.grammar import END_OF_INPUT, Production, Symbol
from repro.perf import metrics


class SRAutomaton:
    """Per-state nondeterministic actions of an LR automaton.

    Attributes:
        automaton: The underlying (conflict-bearing) automaton.
        shift_masks: Per state id, the bitmask of shiftable terminals —
            including ``$`` on the accepting state, so acceptance is an
            ordinary shift.
        reduces: Per state id, a tuple of ``(production, pop, goto
            symbol, lookahead mask)`` for every reduce item (the start
            production is excluded; its role is played by the ``$``
            shift).
        entry_symbols: Per state id, the unique symbol labelling every
            transition *into* the state (``None`` for the start state).
        predecessor_ids: Per state id, the ids of states with an edge
            into it — always on the entry symbol.
    """

    def __init__(self, automaton: LALRAutomaton) -> None:
        with metrics.span("analysis/sr"):
            self.automaton = automaton
            table = automaton.terminal_table
            self.end_bit = table.bit_of(END_OF_INPUT)
            self.full_mask = table.mask_of(
                terminal for terminal in automaton.grammar.terminals
            ) | self.end_bit
            self._arrays = automaton.lr0.arrays
            states = automaton.states
            masks = automaton.lookahead_masks

            shift_masks: list[int] = []
            reduces: list[tuple[tuple[Production, int, Symbol, int], ...]] = []
            entry_symbols: list[Symbol | None] = []
            predecessor_ids: list[tuple[int, ...]] = []
            for state in states:
                shift_masks.append(
                    table.mask_of(
                        symbol
                        for symbol in state.transitions
                        if symbol.is_terminal
                    )
                )
                state_reduces: list[tuple[Production, int, Symbol, int]] = []
                for item in state.items:
                    if not item.at_end or item.production.index == 0:
                        continue
                    production = item.production
                    state_reduces.append(
                        (
                            production,
                            len(production.rhs),
                            production.lhs,
                            masks[(state.id, item)],
                        )
                    )
                reduces.append(tuple(state_reduces))
                # Every transition into a state is labelled by the symbol
                # its kernel items just moved over — unique per state.
                entry: Symbol | None = None
                for item in state.items:
                    if item.dot > 0:
                        entry = item.production.rhs[item.dot - 1]
                        break
                entry_symbols.append(entry)
            for state in states:
                entry = entry_symbols[state.id]
                predecessor_ids.append(
                    self._arrays.predecessor_ids(state.id, entry)
                    if entry is not None
                    else ()
                )
            shift_targets: list[dict[int, int]] = []
            for state in states:
                targets: dict[int, int] = {}
                for symbol in state.transitions:
                    if symbol.is_terminal:
                        targets[table.bit_of(symbol)] = self._arrays.goto_id(
                            state.id, symbol
                        )
                shift_targets.append(targets)
            self.shift_masks = shift_masks
            self.shift_targets = shift_targets
            self.reduces = reduces
            self.entry_symbols = entry_symbols
            self.predecessor_ids = predecessor_ids
            metrics.count("analysis.sr.states", len(states))

    # ------------------------------------------------------------------ #

    def goto_id(self, state_id: int, symbol: Symbol) -> int:
        """Target of the *symbol* edge out of *state_id* (``-1`` if none)."""
        return self._arrays.goto_id(state_id, symbol)

    def terminal_bit(self, terminal) -> int:
        return self.automaton.terminal_bit(terminal)

    def iter_mask(self, mask: int):
        """The terminals of *mask*, in table order."""
        return self.automaton.terminal_table.iter_mask(mask)
