"""Static ambiguity analysis: SR-automata walks with per-conflict verdicts.

The counterexample finder explains *why* a conflict exists; this package
decides *whether it matters* — walking Quaglia-style SR-automata (the
nondeterministic shift/reduce view of the LR automaton before any
resolution) with paired cursors to prove each conflict ``unambiguous``,
``ambiguous`` (with an independently-validatable witness sentence), or
``inconclusive`` under a :mod:`repro.robust` budget.

See ``docs/AMBIGUITY.md`` for construction, budgets, and semantics.
"""

from repro.analysis.sr import SRAutomaton
from repro.analysis.walk import (
    DEFAULT_MAX_CLOSURE,
    DEFAULT_MAX_NODES,
    DEFAULT_MAX_STACK,
    AmbiguityVerdict,
    ConflictAmbiguity,
    analyze_conflicts,
    annotate_ambiguity,
    walk_conflict,
)

#: Version of the walk semantics, folded into cache fingerprints so
#: memoized verdicts from an older walker are clean misses.
ANALYSIS_VERSION = 1

__all__ = [
    "ANALYSIS_VERSION",
    "AmbiguityVerdict",
    "ConflictAmbiguity",
    "DEFAULT_MAX_CLOSURE",
    "DEFAULT_MAX_NODES",
    "DEFAULT_MAX_STACK",
    "SRAutomaton",
    "analyze_conflicts",
    "annotate_ambiguity",
    "walk_conflict",
]
