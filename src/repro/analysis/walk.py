"""Bounded pair walks over the SR-automaton: per-conflict ambiguity verdicts.

A parsing conflict says the deterministic tables could not pick a single
action; it does *not* say the grammar is ambiguous.  This module decides
— per conflict — which of three worlds we are in, by walking the
nondeterministic SR view (:class:`~repro.analysis.sr.SRAutomaton`) with
*two* cursors at once, both consuming the same terminals:

``ambiguous``
    The walk found a sentence with two distinct bottom-up parses: both
    cursors took different actions at the conflict point yet reach
    acceptance (a joint shift of ``$``) on the same input.  The witness
    sentence is emitted so :mod:`repro.verify.validate` can confirm the
    two derivations independently.

``unambiguous``
    The walk space is finite and exhausts without either cursor pair
    reaching joint acceptance: in *every* context the two actions lead
    to at most one surviving parse.  This is sound because the walk
    starts from the bare conflict state and expands contexts *below* it
    nondeterministically via the predecessor arrays — all viable
    prefixes reaching the conflict are covered, and LALR lookahead masks
    only over-approximate the true follows, so gating reduces on them
    never prunes a real parse.

``inconclusive``
    The node budget (:mod:`repro.robust`) or a structural cap (stack
    depth, closure size) was hit first.  Nothing is claimed.

The walk state is a *suffix stack* of automaton states — the portion of
the parse stack above the deepest state the walk has committed to.  When
a reduction needs to pop below the suffix, the walk expands downward:
the bottom state's unique entry symbol and predecessor ids enumerate
every way the suffix can be extended, and each expansion prepends the
same state to both cursors, preserving the shared context.  Collected
entry symbols spell the viable prefix consumed before the conflict,
which concretizes (via shortest expansions) into the witness prefix.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.analysis.sr import SRAutomaton
from repro.automaton.conflicts import Conflict
from repro.automaton.lalr import LALRAutomaton
from repro.grammar import END_OF_INPUT, Production, Symbol, Terminal
from repro.perf import metrics
from repro.robust.budget import Budget
from repro.robust.errors import BudgetExhausted, Cancelled, SearchTimeout

#: Default per-conflict node budget for the pair walk.
DEFAULT_MAX_NODES = 4_000
#: Maximum tracked suffix-stack depth before a walk branch is truncated.
DEFAULT_MAX_STACK = 64
#: Maximum closure steps (reduce-chain exploration) per walk node.
DEFAULT_MAX_CLOSURE = 512


class AmbiguityVerdict(enum.Enum):
    """Outcome of a bounded SR pair walk for one conflict."""

    UNAMBIGUOUS = "unambiguous"
    AMBIGUOUS = "ambiguous"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class ConflictAmbiguity:
    """Per-conflict ambiguity verdict with optional witness sentence.

    Attributes:
        verdict: The walk's conclusion.
        witness: For ``ambiguous`` verdicts, a sentence (terminal
            sequence, without ``$``) with two distinct derivations —
            checkable independently by the Earley-based validator.
        detail: Human-readable one-line justification.
        nodes: Walk configurations explored before concluding.
    """

    verdict: AmbiguityVerdict
    witness: tuple[Terminal, ...] | None = None
    detail: str = ""
    nodes: int = 0

    def describe(self) -> str:
        """One-line rendering used by reports and diagnostics."""
        if self.verdict is AmbiguityVerdict.AMBIGUOUS:
            sentence = " ".join(t.name for t in self.witness or ())
            return f"proved ambiguous — witness: {sentence}" if sentence else (
                "proved ambiguous — witness: <empty sentence>"
            )
        if self.verdict is AmbiguityVerdict.UNAMBIGUOUS:
            return f"proved unambiguous — {self.detail}"
        return f"inconclusive — {self.detail}"


# Walk-node kinds: before the two cursors diverge the node tracks one
# suffix stack; afterwards it tracks the pair, sharing the bottom state.
_PRE = 0
_PAIR = 1

# Parent-edge kinds for witness reconstruction.
_TOK = "tok"
_CTX = "ctx"

#: Sentinel yielded by successor generators when the current node can
#: jointly shift ``$`` — acceptance on both cursors at once.
_ACCEPT = (None, None)


@dataclass
class _Walk:
    """One bounded pair walk for one conflict."""

    sr: SRAutomaton
    conflict: Conflict
    budget: Budget
    max_stack: int = DEFAULT_MAX_STACK
    max_closure: int = DEFAULT_MAX_CLOSURE
    nodes: int = 0
    truncated: bool = False
    parents: dict = field(default_factory=dict)

    def run(self) -> ConflictAmbiguity:
        sr = self.sr
        t_bit = sr.terminal_bit(self.conflict.terminal)
        root = (_PRE, (self.conflict.state_id,))
        queue: deque[tuple] = deque([root])
        seen = {root}
        self.parents[root] = None
        rejected_witnesses = 0
        try:
            while queue:
                node = queue.popleft()
                self.nodes += 1
                self.budget.charge()
                self.budget.poll("ambiguity")
                for succ, edge in self._successors(node, t_bit):
                    if succ is None:
                        witness = self._witness(node)
                        if witness is not None:
                            return ConflictAmbiguity(
                                verdict=AmbiguityVerdict.AMBIGUOUS,
                                witness=witness,
                                detail=(
                                    "two distinct derivations reach acceptance"
                                ),
                                nodes=self.nodes,
                            )
                        # The accept path crosses a nonproductive context
                        # symbol — unrealizable as a sentence.  Keep
                        # searching; the exhausted walk can no longer
                        # claim unambiguity, only inconclusive.
                        rejected_witnesses += 1
                        self.truncated = True
                        continue
                    if succ in seen:
                        continue
                    seen.add(succ)
                    self.parents[succ] = (node, edge)
                    queue.append(succ)
                    # Enqueues are charged too: one node's successor
                    # cross-product can be huge, and an uncharged queue
                    # would let the walk outgrow its budget unboundedly.
                    self.budget.charge()
                    self.budget.poll("ambiguity")
        except (BudgetExhausted, SearchTimeout, Cancelled) as error:
            return ConflictAmbiguity(
                verdict=AmbiguityVerdict.INCONCLUSIVE,
                detail=(
                    f"walk budget exhausted after {self.nodes} configurations"
                    f" ({error.__class__.__name__})"
                ),
                nodes=self.nodes,
            )
        if self.truncated:
            caps = (
                f"stack depth {self.max_stack} / closure {self.max_closure}"
                if rejected_witnesses == 0
                else "accept path crossed a nonproductive context symbol"
            )
            return ConflictAmbiguity(
                verdict=AmbiguityVerdict.INCONCLUSIVE,
                detail=f"walk truncated ({caps}) after {self.nodes} configurations",
                nodes=self.nodes,
            )
        return ConflictAmbiguity(
            verdict=AmbiguityVerdict.UNAMBIGUOUS,
            detail=(
                "every SR pair-walk dies or diverges; "
                f"{self.nodes} configurations explored"
            ),
            nodes=self.nodes,
        )

    # ------------------------------------------------------------------ #
    # Successor generation

    def _successors(
        self, node: tuple, t_bit: int
    ) -> Iterator[tuple[Any, Any]]:
        if node[0] == _PRE:
            yield from self._pre_successors(node, t_bit)
        else:
            yield from self._pair_successors(node)

    def _pre_successors(
        self, node: tuple, t_bit: int
    ) -> Iterator[tuple[Any, Any]]:
        """Diverge: cursor A takes the reduce, cursor B the rival action."""
        stack = node[1]
        conflict = self.conflict
        moves_a, under_a = self._forced_reduce(
            stack, conflict.reduce_item.production, t_bit
        )
        if conflict.is_shift_reduce:
            moves_b, under_b = self._forced_shift(stack, t_bit)
        else:
            moves_b, under_b = self._forced_reduce(
                stack, conflict.other_item.production, t_bit
            )
        if moves_a and moves_b:
            if t_bit == self.sr.end_bit:
                yield _ACCEPT
            else:
                for stack_a in moves_a:
                    for stack_b in moves_b:
                        yield (
                            (_PAIR, stack_a, stack_b),
                            (_TOK, conflict.terminal),
                        )
        if under_a or under_b:
            yield from self._expansions(node)

    def _pair_successors(self, node: tuple) -> Iterator[tuple[Any, Any]]:
        """Advance both cursors over one shared terminal."""
        sr = self.sr
        _, stack_a, stack_b = node
        if stack_a == stack_b:
            # Converged: both cursors behave identically from here on, so
            # only diagonal successors matter — any completion to $ works.
            moves, underflow = self._closure_moves(stack_a, sr.full_mask)
            if sr.end_bit in moves:
                yield _ACCEPT
            for bit in sorted(moves):
                terminal = self._terminal_of(bit)
                for stack in moves[bit]:
                    yield ((_PAIR, stack, stack), (_TOK, terminal))
            if underflow:
                yield from self._expansions(node)
            return
        moves_a, under_a = self._closure_moves(stack_a, sr.full_mask)
        moves_b, under_b = self._closure_moves(stack_b, sr.full_mask)
        common = moves_a.keys() & moves_b.keys()
        if sr.end_bit in common:
            yield _ACCEPT
        for bit in sorted(common):
            terminal = self._terminal_of(bit)
            for new_a in moves_a[bit]:
                for new_b in moves_b[bit]:
                    yield ((_PAIR, new_a, new_b), (_TOK, terminal))
        if under_a or under_b:
            yield from self._expansions(node)

    def _expansions(self, node: tuple) -> Iterator[tuple[Any, Any]]:
        """Extend the shared context one state below the suffix bottom."""
        sr = self.sr
        bottom = node[1][0]
        entry = sr.entry_symbols[bottom]
        if entry is None:
            return  # start state: nothing below, by construction.
        if len(node[1]) >= self.max_stack:
            self.truncated = True
            return
        for predecessor in sr.predecessor_ids[bottom]:
            if node[0] == _PRE:
                succ = (_PRE, (predecessor, *node[1]))
            else:
                succ = (
                    _PAIR,
                    (predecessor, *node[1]),
                    (predecessor, *node[2]),
                )
            yield succ, (_CTX, entry)

    # ------------------------------------------------------------------ #
    # Single-cursor moves

    def _forced_reduce(
        self, stack: tuple[int, ...], production: Production, t_bit: int
    ) -> tuple[list[tuple[int, ...]], bool]:
        """Apply *production*, then close until *t_bit* can be shifted.

        Returns the post-shift stacks and whether any step needed to pop
        below the tracked suffix.
        """
        pop = len(production.rhs)
        if pop >= len(stack):
            return [], True
        base = stack[:-pop] if pop else stack
        target = self.sr.goto_id(base[-1], production.lhs)
        if target < 0:
            return [], False
        reduced = (*base, target)
        if len(reduced) > self.max_stack:
            self.truncated = True
            return [], False
        moves, underflow = self._closure_moves(reduced, t_bit)
        return moves.get(t_bit, []), underflow

    def _forced_shift(
        self, stack: tuple[int, ...], t_bit: int
    ) -> tuple[list[tuple[int, ...]], bool]:
        """Shift the conflict terminal directly off the top state."""
        top = stack[-1]
        if not self.sr.shift_masks[top] & t_bit:
            return [], False
        target = self.sr.shift_targets[top][t_bit]
        shifted = (*stack, target)
        if len(shifted) > self.max_stack:
            self.truncated = True
            return [], False
        return [shifted], False

    def _closure_moves(
        self, stack: tuple[int, ...], allowed: int
    ) -> tuple[dict[int, list[tuple[int, ...]]], bool]:
        """All one-terminal moves from *stack*, chasing reduce chains.

        Explores every sequence of reductions (gated by the LALR
        lookahead masks intersected with *allowed*) and records, per
        terminal bit, the stacks reachable by then shifting that
        terminal.  Reports underflow when some chain would pop below the
        suffix; the caller turns that into a context expansion.
        """
        sr = self.sr
        moves: dict[int, list[tuple[int, ...]]] = {}
        emitted: set[tuple[int, tuple[int, ...]]] = set()
        agenda: list[tuple[tuple[int, ...], int]] = [(stack, allowed)]
        visited = {(stack, allowed)}
        underflow = False
        steps = 0
        while agenda:
            steps += 1
            if steps > self.max_closure:
                self.truncated = True
                break
            current, mask = agenda.pop()
            top = current[-1]
            shiftable = sr.shift_masks[top] & mask
            if shiftable:
                targets = sr.shift_targets[top]
                remaining = shiftable
                while remaining:
                    low = remaining & -remaining
                    shifted = (*current, targets[low])
                    if len(shifted) > self.max_stack:
                        self.truncated = True
                    elif (low, shifted) not in emitted:
                        emitted.add((low, shifted))
                        moves.setdefault(low, []).append(shifted)
                    remaining ^= low
            for production, pop, lhs, la_mask in sr.reduces[top]:
                gated = la_mask & mask
                if not gated:
                    continue
                if pop >= len(current):
                    underflow = True
                    continue
                base = current[:-pop] if pop else current
                target = sr.goto_id(base[-1], lhs)
                if target < 0:
                    continue
                reduced = (*base, target)
                if len(reduced) > self.max_stack:
                    self.truncated = True
                    continue
                key = (reduced, gated)
                if key not in visited:
                    visited.add(key)
                    agenda.append(key)
        for stacks in moves.values():
            stacks.sort()
        return moves, underflow

    # ------------------------------------------------------------------ #
    # Witness reconstruction

    def _terminal_of(self, bit: int) -> Terminal:
        for terminal in self.sr.iter_mask(bit):
            return terminal
        raise AssertionError(f"no terminal for bit {bit:#x}")

    def _witness(self, node: tuple) -> tuple[Terminal, ...] | None:
        """Concretize the accept path into a sentence, or ``None``.

        Walking node→root yields the consumed terminals newest-first
        (reversed below) and the context entry symbols deepest-expansion
        first — which *is* sentence-prefix order, since later expansions
        sit further below the conflict state.  A nonproductive context
        nonterminal makes the path unrealizable.
        """
        tokens: list[Terminal] = []
        context: list[Symbol] = []
        cursor = node
        while True:
            parent = self.parents[cursor]
            if parent is None:
                break
            cursor, (kind, payload) = parent
            if kind == _TOK:
                tokens.append(payload)
            else:
                context.append(payload)
        tokens.reverse()
        analysis = self.sr.automaton.analysis
        sentence: list[Terminal] = []
        for symbol in context:
            if symbol.is_terminal:
                if symbol != END_OF_INPUT:
                    sentence.append(symbol)  # type: ignore[arg-type]
                continue
            try:
                sentence.extend(analysis.shortest_expansion(symbol))
            except ValueError:
                return None
        sentence.extend(token for token in tokens if token != END_OF_INPUT)
        return tuple(sentence)


# ---------------------------------------------------------------------- #
# Public entry points


def walk_conflict(
    sr: SRAutomaton,
    conflict: Conflict,
    *,
    budget: Budget | None = None,
    max_stack: int = DEFAULT_MAX_STACK,
    max_closure: int = DEFAULT_MAX_CLOSURE,
) -> ConflictAmbiguity:
    """Run one bounded pair walk and return the conflict's verdict."""
    if budget is None:
        budget = Budget(max_nodes=DEFAULT_MAX_NODES, stage="ambiguity")
    walk = _Walk(
        sr=sr,
        conflict=conflict,
        budget=budget,
        max_stack=max_stack,
        max_closure=max_closure,
    )
    return walk.run()


def analyze_conflicts(
    automaton: LALRAutomaton,
    *,
    budget: Budget | None = None,
    max_nodes: int = DEFAULT_MAX_NODES,
    max_stack: int = DEFAULT_MAX_STACK,
    max_closure: int = DEFAULT_MAX_CLOSURE,
) -> dict[Conflict, ConflictAmbiguity]:
    """Walk every reported conflict of *automaton*, yielding verdicts.

    Without an explicit *budget* each conflict gets a fresh node-only
    budget of *max_nodes* — deterministic across machines, so golden
    verdicts can be pinned.  A shared external *budget* (e.g. from the
    CLI's ``--time-limit``) makes later conflicts cheaply inconclusive
    once it is spent, which is the degradation the stress job asserts.
    """
    conflicts = automaton.tables.conflicts
    if not conflicts:
        return {}
    sr = SRAutomaton(automaton)
    with metrics.span("analysis/walk"):
        verdicts: dict[Conflict, ConflictAmbiguity] = {}
        for conflict in conflicts:
            conflict_budget = (
                budget
                if budget is not None
                else Budget(max_nodes=max_nodes, stage="ambiguity")
            )
            verdicts[conflict] = walk_conflict(
                sr,
                conflict,
                budget=conflict_budget,
                max_stack=max_stack,
                max_closure=max_closure,
            )
        for verdict in verdicts.values():
            metrics.count(f"analysis.verdict.{verdict.verdict.value}")
        return verdicts


def annotate_ambiguity(
    reports,
    automaton: LALRAutomaton,
    **options,
) -> dict[Conflict, ConflictAmbiguity]:
    """Attach ambiguity verdicts to finder reports, in place.

    Mirrors :func:`repro.automaton.ielr.annotate_provenance`: each
    report whose conflict received a verdict gets its ``ambiguity``
    field set; the mapping is returned for aggregate counting.
    """
    mapping = analyze_conflicts(automaton, **options)
    for report in reports:
        ambiguity = mapping.get(report.conflict)
        if ambiguity is not None:
            report.ambiguity = ambiguity
    return mapping
