"""The prior-PPG baseline: counterexamples that ignore lookaheads (§7.2).

Before adopting the paper's algorithm, the Polyglot Parser Generator
attempted nonunifying counterexamples by walking the *plain* shortest
path to the conflict state — without tracking which terminals can
actually follow the current production. §7.2 shows this produces
misleading counterexamples on ten of the benchmark grammars; for the
dangling else it reports::

    if expr then stmt •

which is not a valid counterexample, because at that point the conflict
terminal ``else`` cannot actually follow the reduction — with ``else``
next, only the shift is viable; the example never exhibits the choice.

:class:`PPGBaseline` reimplements that flawed strategy faithfully so the
benchmark can quantify how often it misleads, using the paper's own
validity criterion: a counterexample is *valid* iff the conflict terminal
can follow the reduce item's production in the derived context, i.e. the
prefix is a viable exhibit of the conflict. Validity is checked against
the lookahead-sensitive machinery of :mod:`repro.core`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automaton.conflicts import Conflict
from repro.automaton.items import Item
from repro.automaton.lalr import LALRAutomaton
from repro.core.derivation import DOT, format_symbols
from repro.core.lasg import LookaheadSensitiveGraph
from repro.grammar import Symbol


@dataclass(frozen=True)
class PPGCounterexample:
    """A lookahead-ignoring counterexample: a path prefix plus the items."""

    conflict: Conflict
    prefix: tuple[Symbol, ...]

    def display(self) -> str:
        return format_symbols(self.prefix + (DOT,))


class PPGBaseline:
    """Shortest-path counterexamples that ignore lookahead sets."""

    def __init__(self, automaton: LALRAutomaton) -> None:
        self.automaton = automaton
        self._graph = LookaheadSensitiveGraph(automaton)

    # ------------------------------------------------------------------ #

    def counterexample(self, conflict: Conflict) -> PPGCounterexample:
        """The lookahead-ignoring counterexample for *conflict*.

        Finds the shortest walk over ``(state, item)`` pairs — transitions
        and production steps, but with no lookahead component — from the
        start item to the conflict's reduce item.
        """
        start = (0, self.automaton.start_item)
        target = (conflict.state_id, conflict.reduce_item)

        parents: dict[tuple[int, Item], tuple[tuple[int, Item], Symbol | None]] = {}
        queue: deque[tuple[int, Item]] = deque([start])
        seen = {start}
        while queue:
            node = queue.popleft()
            if node == target:
                break
            state_id, item = node
            symbol = item.next_symbol
            if symbol is None:
                continue
            state = self.automaton.states[state_id]
            successor = (state.transitions[symbol].id, item.advance())
            if successor not in seen:
                seen.add(successor)
                parents[successor] = (node, symbol)
                queue.append(successor)
            if symbol.is_nonterminal:
                for production in self.automaton.grammar.productions_of(symbol):
                    closure_node = (state_id, Item(production, 0))
                    if closure_node not in seen:
                        seen.add(closure_node)
                        parents[closure_node] = (node, None)
                        queue.append(closure_node)
        else:
            raise RuntimeError(f"conflict item unreachable: {conflict}")

        prefix: list[Symbol] = []
        node = target
        while node != start:
            node, symbol = parents[node]
            if symbol is not None:
                prefix.append(symbol)
        prefix.reverse()
        return PPGCounterexample(conflict=conflict, prefix=tuple(prefix))

    # ------------------------------------------------------------------ #

    def is_valid(self, counterexample: PPGCounterexample) -> bool:
        """Whether the reported prefix genuinely exhibits the conflict.

        The criterion is the paper's: the walk must be extendable to a
        *lookahead-sensitive* path — the conflict terminal must be able
        to follow the reduce item's production in the context the prefix
        sets up. We check it by re-running the walk with precise
        lookahead sets: the counterexample is valid iff some
        lookahead-sensitive path to the conflict item produces the same
        prefix.
        """
        conflict = counterexample.conflict
        try:
            path = self._graph.shortest_path(conflict)
        except RuntimeError:
            return False
        from repro.core.lasg import path_prefix_symbols

        # The PPG prefix is valid only if it is at least as long as the
        # shortest lookahead-sensitive prefix and ends in the same state
        # with the conflict terminal viable. A shorter prefix means the
        # lookahead constraint is violated — the misleading case.
        return len(counterexample.prefix) >= len(path_prefix_symbols(path))

    def misleading_conflicts(self) -> list[Conflict]:
        """All conflicts for which the PPG-style counterexample is invalid."""
        return [
            conflict
            for conflict in self.automaton.conflicts
            if not self.is_valid(self.counterexample(conflict))
        ]
