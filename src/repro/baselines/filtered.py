"""Conflict-guided grammar filtering for the enumeration baseline.

§7.3 closes with: "This result suggests that grammar filtering would be a
useful addition to our approach." Grammar filtering (Basten & Vinju 2010)
shrinks the search space of an enumeration-based ambiguity detector by
excluding parts of the grammar that provably cannot participate in the
ambiguity under investigation.

:class:`FilteredBruteForce` implements the conflict-guided form of that
idea on top of :class:`~repro.baselines.bruteforce.BruteForceDetector`:

1. collect the *candidate unifying nonterminals* for a conflict — the
   left-hand sides of items on any backward path from the conflict items
   (exactly the ``reaching_pairs`` set the counterexample machinery
   already maintains);
2. enumerate sentences of each candidate (innermost first, i.e. smallest
   backward-reachability set), rather than of the start symbol;
3. stop at the first genuinely ambiguous sentence.

Compared with the blind detector this skips every derivation that never
touches the conflict, which is most of a realistic grammar.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.automaton.conflicts import Conflict
from repro.automaton.lalr import LALRAutomaton
from repro.baselines.bruteforce import BruteForceResult
from repro.grammar import Grammar, GrammarAnalysis, Nonterminal, Symbol
from repro.parsing.earley import EarleyParser


@dataclass
class FilteredResult:
    """Outcome of a conflict-guided filtered enumeration."""

    conflict: Conflict
    ambiguous: bool
    nonterminal: Nonterminal | None
    witness: tuple[Symbol, ...] | None
    sentences_checked: int
    elapsed: float

    def __str__(self) -> str:
        if self.ambiguous:
            text = " ".join(str(s) for s in self.witness or ())
            return f"<filtered: {self.nonterminal} derives {text!r} ambiguously>"
        return f"<filtered: no witness ({self.sentences_checked} sentences)>"


class FilteredBruteForce:
    """Enumeration-based detection, restricted to one conflict's region."""

    def __init__(
        self,
        automaton: LALRAutomaton,
        max_length: int = 12,
        max_forms: int = 100_000,
        time_limit: float = 30.0,
    ) -> None:
        self.automaton = automaton
        self.grammar = automaton.grammar
        self.analysis = GrammarAnalysis(self.grammar)
        self.earley = EarleyParser(self.grammar)
        self.max_length = max_length
        self.max_forms = max_forms
        self.time_limit = time_limit

    # ------------------------------------------------------------------ #

    def candidate_nonterminals(self, conflict: Conflict) -> list[Nonterminal]:
        """Nonterminals that could be the unifying nonterminal, innermost first.

        A nonterminal qualifies when it is the left-hand side of some item
        on a backward path to the conflict's reduce item. Candidates are
        ordered by the size of their own backward-reachability sets, a
        proxy for "innermost".
        """
        state = self.automaton.states[conflict.state_id]
        pairs = self.automaton.lookups.reaching_pairs(state, conflict.reduce_item)
        candidates: set[Nonterminal] = set()
        for _, item in pairs:
            lhs = item.production.lhs
            if lhs != self.grammar.augmented_start:
                candidates.add(lhs)  # type: ignore[arg-type]

        def weight(nonterminal: Nonterminal) -> int:
            return sum(
                1
                for _, item in pairs
                if item.production.lhs == nonterminal
            )

        return sorted(candidates, key=lambda n: (weight(n), str(n)))

    def run(self, conflict: Conflict) -> FilteredResult:
        """Enumerate sentences of each candidate until ambiguity is found."""
        started = time.monotonic()
        deadline = started + self.time_limit
        checked = 0

        from collections import deque

        for nonterminal in self.candidate_nonterminals(conflict):
            initial: tuple[Symbol, ...] = (nonterminal,)
            queue: deque[tuple[Symbol, ...]] = deque([initial])
            seen = {initial}
            forms = 0
            while queue:
                if forms >= self.max_forms or time.monotonic() > deadline:
                    break
                form = queue.popleft()
                forms += 1
                pivot = next(
                    (
                        (index, symbol)
                        for index, symbol in enumerate(form)
                        if symbol.is_nonterminal
                    ),
                    None,
                )
                if pivot is None:
                    checked += 1
                    if len(self.earley.derivations(nonterminal, form, limit=2)) >= 2:
                        return FilteredResult(
                            conflict=conflict,
                            ambiguous=True,
                            nonterminal=nonterminal,
                            witness=form,
                            sentences_checked=checked,
                            elapsed=time.monotonic() - started,
                        )
                    continue
                index, symbol = pivot
                assert isinstance(symbol, Nonterminal)
                for production in self.grammar.productions_of(symbol):
                    successor = form[:index] + production.rhs + form[index + 1 :]
                    minimum = sum(
                        self.analysis.min_yield_length(s) for s in successor
                    )
                    if minimum > self.max_length:
                        continue
                    if successor not in seen:
                        seen.add(successor)
                        queue.append(successor)
            if time.monotonic() > deadline:
                break

        return FilteredResult(
            conflict=conflict,
            ambiguous=False,
            nonterminal=None,
            witness=None,
            sentences_checked=checked,
            elapsed=time.monotonic() - started,
        )
