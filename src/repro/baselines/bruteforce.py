"""Brute-force ambiguity detection by sentence enumeration.

This is the baseline family the paper compares against (§7.3, §8):
AMBER enumerates derivable strings and checks for duplicates; DMS uses an
iterative-deepening search over grammar rules; CFGAnalyzer checks, for
increasing length bounds, whether some string admits two derivations.

:class:`BruteForceDetector` implements the accurate-but-slow approach in
its strongest practical form:

* breadth-first enumeration of *sentential forms* by leftmost expansion,
  deduplicated, up to a length/step budget;
* for every all-terminal sentence produced, counting distinct derivations
  via the Earley oracle; a sentence with two derivations is returned as
  an ambiguity witness.

Like the originals, it terminates only when it finds an ambiguity or
exhausts its budget — on unambiguous grammars it can only say
"no ambiguity up to the bound". Unlike the paper's tool, it knows nothing
about the conflicts it should explain, which is exactly the comparison
§7.3 draws: our conflict-driven search answers *per conflict* in
milliseconds, while enumeration explodes with grammar size.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.grammar import Grammar, GrammarAnalysis, Nonterminal, Symbol, Terminal
from repro.parsing.earley import EarleyParser
from repro.parsing.tree import ParseTree


@dataclass
class BruteForceResult:
    """Outcome of a brute-force ambiguity hunt."""

    ambiguous: bool
    witness: tuple[Terminal, ...] | None
    parses: tuple[ParseTree, ...]
    sentences_checked: int
    forms_expanded: int
    elapsed: float
    exhausted: bool  # budget exhausted without a verdict

    def __str__(self) -> str:
        if self.ambiguous:
            text = " ".join(str(t) for t in self.witness or ())
            return f"<ambiguous: {text!r} ({self.sentences_checked} sentences checked)>"
        state = "exhausted" if self.exhausted else "complete"
        return f"<no ambiguity found; {state} after {self.sentences_checked} sentences>"


class BruteForceDetector:
    """AMBER-style ambiguity detection by bounded enumeration."""

    def __init__(
        self,
        grammar: Grammar,
        max_length: int = 12,
        max_forms: int = 200_000,
        time_limit: float = 60.0,
    ) -> None:
        """
        Args:
            grammar: The grammar to test.
            max_length: Maximum sentence length considered.
            max_forms: Budget on sentential forms expanded.
            time_limit: Wall-clock budget in seconds.
        """
        self.grammar = grammar
        self.analysis = GrammarAnalysis(grammar)
        self.earley = EarleyParser(grammar)
        self.max_length = max_length
        self.max_forms = max_forms
        self.time_limit = time_limit

    # ------------------------------------------------------------------ #

    def run(self) -> BruteForceResult:
        """Enumerate sentences breadth-first until an ambiguity is found."""
        started = time.monotonic()
        deadline = started + self.time_limit
        start = self.grammar.start

        initial: tuple[Symbol, ...] = (start,)
        queue: deque[tuple[Symbol, ...]] = deque([initial])
        seen: set[tuple[Symbol, ...]] = {initial}
        sentences_checked = 0
        forms_expanded = 0
        exhausted = False

        while queue:
            if forms_expanded >= self.max_forms or time.monotonic() > deadline:
                exhausted = True
                break
            form = queue.popleft()
            forms_expanded += 1

            pivot = self._leftmost_nonterminal(form)
            if pivot is None:
                # All-terminal sentence: check for two derivations.
                sentences_checked += 1
                parses = self.earley.derivations(start, form, limit=2)
                if len(parses) >= 2:
                    return BruteForceResult(
                        ambiguous=True,
                        witness=form,  # type: ignore[arg-type]
                        parses=tuple(parses),
                        sentences_checked=sentences_checked,
                        forms_expanded=forms_expanded,
                        elapsed=time.monotonic() - started,
                        exhausted=False,
                    )
                continue

            index, nonterminal = pivot
            for production in self.grammar.productions_of(nonterminal):
                successor = form[:index] + production.rhs + form[index + 1 :]
                if self._min_length(successor) > self.max_length:
                    continue
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)

        return BruteForceResult(
            ambiguous=False,
            witness=None,
            parses=(),
            sentences_checked=sentences_checked,
            forms_expanded=forms_expanded,
            elapsed=time.monotonic() - started,
            exhausted=exhausted or bool(queue),
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _leftmost_nonterminal(
        form: tuple[Symbol, ...]
    ) -> tuple[int, Nonterminal] | None:
        for index, symbol in enumerate(form):
            if symbol.is_nonterminal:
                assert isinstance(symbol, Nonterminal)
                return index, symbol
        return None

    def _min_length(self, form: tuple[Symbol, ...]) -> float:
        """Lower bound on the terminal length derivable from *form*."""
        return sum(self.analysis.min_yield_length(symbol) for symbol in form)


def find_ambiguity(
    grammar: Grammar,
    max_length: int = 12,
    time_limit: float = 60.0,
) -> BruteForceResult:
    """Convenience wrapper around :class:`BruteForceDetector`."""
    return BruteForceDetector(
        grammar, max_length=max_length, time_limit=time_limit
    ).run()
