"""The CUP2 baseline: report only the shortest path to the conflict state.

CUP2 (§8) reports the plain shortest path of parser *states* leading to
the conflict state — no items, no lookaheads, no completion. This is the
weakest of the related tools and serves as the floor in the effectiveness
comparison: it is fast but, like prior PPG, its reports can be
misleading, and they never explain what happens *after* the conflict
point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.automaton.conflicts import Conflict
from repro.automaton.lalr import LALRAutomaton
from repro.grammar import Symbol


@dataclass(frozen=True)
class CUP2Report:
    """The shortest state path to a conflict state."""

    conflict: Conflict
    states: tuple[int, ...]
    symbols: tuple[Symbol, ...]

    def display(self) -> str:
        text = " ".join(str(s) for s in self.symbols)
        return f"shortest path to state #{self.conflict.state_id}: {text}"


class CUP2Baseline:
    """Shortest state-path reports, CUP2-style."""

    def __init__(self, automaton: LALRAutomaton) -> None:
        self.automaton = automaton

    def report(self, conflict: Conflict) -> CUP2Report:
        """Breadth-first shortest path from state 0 to the conflict state."""
        target = conflict.state_id
        parents: dict[int, tuple[int, Symbol]] = {}
        queue = deque([0])
        seen = {0}
        while queue:
            state_id = queue.popleft()
            if state_id == target:
                break
            for symbol, successor in self.automaton.states[state_id].transitions.items():
                if successor.id not in seen:
                    seen.add(successor.id)
                    parents[successor.id] = (state_id, symbol)
                    queue.append(successor.id)
        else:
            raise RuntimeError(f"conflict state {target} unreachable")

        states = [target]
        symbols: list[Symbol] = []
        current = target
        while current != 0:
            current, symbol = parents[current]
            states.append(current)
            symbols.append(symbol)
        states.reverse()
        symbols.reverse()
        return CUP2Report(
            conflict=conflict, states=tuple(states), symbols=tuple(symbols)
        )
