"""Baselines the paper compares against: enumeration, prior PPG, CUP2."""

from repro.baselines.bruteforce import (
    BruteForceDetector,
    BruteForceResult,
    find_ambiguity,
)
from repro.baselines.cup2 import CUP2Baseline, CUP2Report
from repro.baselines.filtered import FilteredBruteForce, FilteredResult
from repro.baselines.ppg import PPGBaseline, PPGCounterexample

__all__ = [
    "BruteForceDetector",
    "BruteForceResult",
    "CUP2Baseline",
    "CUP2Report",
    "FilteredBruteForce",
    "FilteredResult",
    "PPGBaseline",
    "PPGCounterexample",
    "find_ambiguity",
]
