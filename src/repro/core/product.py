"""The product parser (paper §5.1), stated directly.

The unifying search of :mod:`repro.core.search` simulates two parser
copies via rich configurations; this module exposes the underlying
*product parser* — states are pairs of items, with joint transitions,
one-sided production steps, and one-sided reductions — in its plain form.
It exists for tests, documentation, and exploratory use: the invariants
of the search (e.g. "a joint transition exists iff both items move on the
same symbol") are validated against this definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.automaton.items import Item
from repro.automaton.lalr import LALRAutomaton
from repro.grammar import Nonterminal, Symbol

#: A product-parser state: a pair of (state id, item) positions.
ProductState = tuple[tuple[int, Item], tuple[int, Item]]


@dataclass(frozen=True)
class ProductAction:
    """One action of the product parser.

    ``kind`` is ``"transition"`` (joint, on ``symbol``),
    ``"prod1"``/``"prod2"`` (production step on one side), or
    ``"reduce1"``/``"reduce2"`` (reduction on one side).
    """

    kind: str
    symbol: Symbol | None
    target: ProductState | None


class ProductParser:
    """Explicit product-parser actions over an LALR automaton."""

    def __init__(self, automaton: LALRAutomaton) -> None:
        self.automaton = automaton
        self.grammar = automaton.grammar
        # Hoisted once: actions() is consulted per explored product state.
        self._arrays = automaton.lr0.arrays

    def actions(self, state: ProductState) -> Iterator[ProductAction]:
        """All actions available in a product state."""
        (state1, item1), (state2, item2) = state

        # Joint transition (Figure 6(a)).
        symbol = item1.next_symbol
        if symbol is not None and symbol == item2.next_symbol:
            arrays = self._arrays
            code = arrays.code.get(symbol)
            if code is not None:
                stride, goto_flat = arrays.stride, arrays.goto_flat
                target1 = goto_flat[state1 * stride + code]
                target2 = goto_flat[state2 * stride + code]
                if target1 >= 0 and target2 >= 0:
                    yield ProductAction(
                        "transition",
                        symbol,
                        (
                            (target1, item1.advance()),
                            (target2, item2.advance()),
                        ),
                    )

        # One-sided production steps (Figure 6(b)).
        for kind, (state_id, item), other in (
            ("prod1", (state1, item1), (state2, item2)),
            ("prod2", (state2, item2), (state1, item1)),
        ):
            next_symbol = item.next_symbol
            if next_symbol is None or not next_symbol.is_nonterminal:
                continue
            assert isinstance(next_symbol, Nonterminal)
            for production in self.grammar.productions_of(next_symbol):
                fresh = (state_id, Item(production, 0))
                if kind == "prod1":
                    yield ProductAction("prod1", None, (fresh, other))
                else:
                    yield ProductAction("prod2", None, (other, fresh))

        # One-sided reductions are stack operations; the product parser
        # only reports their availability (targets depend on the stack).
        if item1.at_end:
            yield ProductAction("reduce1", None, None)
        if item2.at_end:
            yield ProductAction("reduce2", None, None)

    def joint_transition_symbols(self, state: ProductState) -> frozenset[Symbol]:
        """Symbols on which both sides of *state* can move."""
        return frozenset(
            action.symbol
            for action in self.actions(state)
            if action.kind == "transition" and action.symbol is not None
        )
