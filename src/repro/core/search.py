"""The outward unifying-counterexample search (§5.2, §5.4).

The search starts from the conflict items themselves — not from the start
state — and grows configurations outward with the successor moves of
:mod:`repro.core.configurations`. Configurations are explored in order of
increasing cost (a Dijkstra-style priority queue with duplicate
suppression), which is how the paper postpones unproductive repeated
production steps (§5.4, third observation).

Success is a configuration whose two item sequences have the form
``[? -> … • A …, ? -> … A • …]`` with a single derivation of the same
nonterminal ``A`` on both sides: ``A`` is the unifying nonterminal and
the two derivations prove the ambiguity.

The search is

* **sound**: an accepted configuration's two derivations derive the same
  sentential form by construction (all prepended/appended symbols are
  shared between the parsers);
* **complete** for ambiguous grammars when given unlimited time and
  ``allowed_prepend_states=None``; restricting reverse transitions to the
  shortest lookahead-sensitive path (the default, §6) trades completeness
  for speed;
* **non-terminating** on some unambiguous grammars — callers must bound
  it with ``time_limit``/``max_configurations``.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.automaton.conflicts import Conflict
from repro.automaton.lalr import LALRAutomaton
from repro.core.configurations import (
    Configuration,
    SuccessorGenerator,
    initial_configuration,
)
from repro.core.counterexample import Counterexample
from repro.grammar import Nonterminal
from repro.perf import metrics
from repro.robust.budget import Budget
from repro.robust.errors import BudgetExhausted, SearchTimeout
from repro.robust.faults import fire


@dataclass
class SearchStats:
    """Instrumentation for benchmarks and the ablation study."""

    explored: int = 0
    enqueued: int = 0
    elapsed: float = 0.0
    timed_out: bool = False
    exhausted: bool = False
    #: Why the search stopped early, when it did ("timeout", "budget").
    stopped_reason: str | None = None


@dataclass
class SearchResult:
    """Outcome of one unifying search."""

    counterexample: Counterexample | None
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def succeeded(self) -> bool:
        return self.counterexample is not None


class UnifyingSearch:
    """Cost-ordered outward search for a unifying counterexample."""

    def __init__(
        self,
        automaton: LALRAutomaton,
        conflict: Conflict,
        allowed_prepend_states: frozenset[int] | None = None,
        time_limit: float = 5.0,
        max_configurations: int = 2_000_000,
        max_cost: float | None = 5_000.0,
        budget: Budget | None = None,
    ) -> None:
        """
        Args:
            automaton: The LALR automaton.
            conflict: The conflict to explain.
            allowed_prepend_states: Restrict reverse transitions to these
                states (pass the shortest lookahead-sensitive path states;
                ``None`` = full search, the paper's ``-extendedsearch``).
            time_limit: Wall-clock budget in seconds (paper default: 5 s).
            max_configurations: Hard cap on explored configurations.
            max_cost: Configurations beyond this cost are not expanded; a
                search that drains the frontier under this ceiling reports
                ``exhausted`` — "eligible configurations ran out" (§6).
                Pass ``None`` for the unbounded semi-decision procedure.
            budget: A prebuilt :class:`~repro.robust.budget.Budget`; when
                given it overrides ``time_limit``/``max_configurations``
                (the finder passes one so cancellation and the cumulative
                budget are shared across stages).
        """
        self.automaton = automaton
        self.conflict = conflict
        self.generator = SuccessorGenerator(
            automaton, conflict, allowed_prepend_states
        )
        self.time_limit = time_limit
        self.max_configurations = max_configurations
        self.max_cost = max_cost
        self.budget = budget

    # ------------------------------------------------------------------ #

    def run(self) -> SearchResult:
        """Run the search to acceptance, exhaustion, or timeout.

        Budget overruns never escape: a deadline expiry or configuration
        cap is folded into ``stats.timed_out``/``stats.stopped_reason``
        (cancellation, which must stop the whole run, does propagate).
        """
        fire("search")
        stats = SearchStats()
        started = time.monotonic()
        budget = self.budget or Budget(
            time_limit=self.time_limit,
            max_nodes=self.max_configurations,
            stage="search",
        )
        budget.start()

        counter = 0
        initial = initial_configuration(self.conflict)
        frontier: list[tuple[float, int, Configuration]] = [(0.0, counter, initial)]
        best_cost: dict[tuple, float] = {initial.key(): 0.0}

        # Loop-local bindings: this loop runs once per explored
        # configuration (tens of thousands per conflict on grammars like
        # SQL.1), so global and attribute loads are paid for up front.
        heappop = heapq.heappop
        heappush = heapq.heappush
        best_cost_get = best_cost.get
        successors_of = self.generator.successors
        max_cost = self.max_cost
        infinity = float("inf")

        while frontier:
            stats.explored += 1
            budget.charge()
            try:
                budget.poll("search")
            except SearchTimeout:
                stats.timed_out = True
                stats.stopped_reason = "timeout"
                break
            except BudgetExhausted:
                # Preserve the historical accounting: hitting the
                # configuration cap counts as a timeout in Table 1.
                stats.timed_out = True
                stats.stopped_reason = "budget"
                break

            cost, _, config = heappop(frontier)
            if cost > best_cost_get(config.key(), infinity):
                continue  # stale queue entry

            accepted = self._accept(config)
            if accepted is not None:
                stats.elapsed = time.monotonic() - started
                self._record_stats(stats)
                accepted = Counterexample(
                    conflict=accepted.conflict,
                    unifying=True,
                    nonterminal=accepted.nonterminal,
                    derivation1=accepted.derivation1,
                    derivation2=accepted.derivation2,
                    search_cost=cost,
                )
                return SearchResult(accepted, stats)

            for _label, delta, successor in successors_of(config):
                new_cost = cost + delta
                if max_cost is not None and new_cost > max_cost:
                    continue
                key = successor.key()
                if new_cost < best_cost_get(key, infinity):
                    best_cost[key] = new_cost
                    counter += 1
                    stats.enqueued += 1
                    heappush(frontier, (new_cost, counter, successor))
        else:
            stats.exhausted = True

        stats.elapsed = time.monotonic() - started
        self._record_stats(stats)
        return SearchResult(None, stats)

    @staticmethod
    def _record_stats(stats: SearchStats) -> None:
        """Mirror the run's totals into the metrics layer (when active)."""
        if metrics.active() is None:
            return
        metrics.count("search.configurations.explored", stats.explored)
        metrics.count("search.configurations.enqueued", stats.enqueued)
        if stats.timed_out:
            metrics.count("search.timeouts")

    # ------------------------------------------------------------------ #

    def _accept(self, config: Configuration) -> Counterexample | None:
        """Check the acceptance form of §5.4 and build the counterexample."""
        if not (config.complete1 and config.complete2):
            return None
        if len(config.derivs1) != 1 or len(config.derivs2) != 1:
            return None
        if len(config.items1) != 2 or len(config.items2) != 2:
            return None
        derivation1 = config.derivs1[0]
        derivation2 = config.derivs2[0]
        if derivation1.children is None or derivation2.children is None:
            return None
        if derivation1.symbol != derivation2.symbol:
            return None
        if derivation1 == derivation2:
            return None  # not two distinct parses
        nonterminal = derivation1.symbol
        assert isinstance(nonterminal, Nonterminal)
        return Counterexample(
            conflict=self.conflict,
            unifying=True,
            nonterminal=nonterminal,
            derivation1=derivation1,
            derivation2=derivation2,
        )
