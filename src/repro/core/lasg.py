"""The lookahead-sensitive graph and its shortest paths (paper §4).

A vertex is a triple ``(state, item, L)`` where ``L`` is a *precise*
lookahead set — the terminals that actually can follow the current
production in this context. Edges:

* **transition**: mirrors a parser transition, preserving ``L``;
* **production step**: enters a production of the nonterminal after the
  dot, replacing ``L`` by ``follow_L(item)``, the paper's precise follow
  set (``first_of_sequence`` of the rest of the production, with ``L``
  when that rest is nullable).

A *shortest lookahead-sensitive path* from the start vertex
``(s0, START' -> . S $, {$})`` to a conflict vertex — the conflict state
and reduce item, with the conflict terminal in ``L`` — provides the prefix
of a counterexample that genuinely carries the conflict terminal as
legitimate lookahead. (The shortest path in the plain state graph often
does not; see the dangling-else discussion in §4.)

As in the paper's implementation, the search is restricted to parser
states that can reach the conflict item backward, which keeps the graph
small; vertices are materialised lazily during the breadth-first search.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.automaton.conflicts import Conflict
from repro.automaton.items import Item
from repro.automaton.lalr import LALRAutomaton
from repro.grammar import END_OF_INPUT, Nonterminal, Symbol, Terminal
from repro.robust.budget import Budget
from repro.robust.errors import PathNotFoundError
from repro.robust.faults import fire


@dataclass(frozen=True, slots=True)
class LASGVertex:
    """A vertex ``(state, item, precise lookahead set)``."""

    state_id: int
    item: Item
    lookahead: frozenset[Terminal]

    def __str__(self) -> str:
        las = ", ".join(sorted(str(t) for t in self.lookahead))
        return f"({self.state_id}, {self.item}, {{{las}}})"


@dataclass(frozen=True, slots=True)
class LASGEdge:
    """An edge of the lookahead-sensitive graph.

    ``symbol`` is the transition symbol, or ``None`` for a production step
    (rendered ``[prod]`` as in the paper's Figure 5).
    """

    source: LASGVertex
    symbol: Symbol | None
    target: LASGVertex

    @property
    def is_production_step(self) -> bool:
        return self.symbol is None

    def __str__(self) -> str:
        label = "[prod]" if self.symbol is None else str(self.symbol)
        return f"{self.source} --{label}--> {self.target}"


class LookaheadSensitiveGraph:
    """Lazy lookahead-sensitive graph over an LALR automaton."""

    def __init__(self, automaton: LALRAutomaton) -> None:
        self.automaton = automaton
        self.analysis = automaton.analysis
        self.grammar = automaton.grammar

    # ------------------------------------------------------------------ #

    @property
    def start_vertex(self) -> LASGVertex:
        """``(s0, START' -> . S $, {$})``."""
        return LASGVertex(0, self.automaton.start_item, frozenset({END_OF_INPUT}))

    def successors(self, vertex: LASGVertex) -> Iterator[LASGEdge]:
        """All outgoing edges of *vertex*, created on demand."""
        item = vertex.item
        symbol = item.next_symbol
        if symbol is None:
            return
        # Transition edge.
        state = self.automaton.states[vertex.state_id]
        target_state = state.transitions[symbol]
        yield LASGEdge(
            vertex,
            symbol,
            LASGVertex(target_state.id, item.advance(), vertex.lookahead),
        )
        # Production-step edges.
        if symbol.is_nonterminal:
            assert isinstance(symbol, Nonterminal)
            follow = self.analysis.precise_follow(
                item.production, item.dot, vertex.lookahead
            )
            for production in self.grammar.productions_of(symbol):
                yield LASGEdge(
                    vertex,
                    None,
                    LASGVertex(vertex.state_id, Item(production, 0), follow),
                )

    # ------------------------------------------------------------------ #

    def shortest_path(
        self, conflict: Conflict, budget: Budget | None = None
    ) -> list[LASGEdge]:
        """Shortest lookahead-sensitive path to the conflict reduce item.

        The target is any vertex at the conflict state whose item is the
        conflict's reduce item and whose precise lookahead set contains
        the conflict terminal (the reduce item is used because no
        lookahead information exists for the shift item — footnote 4).

        Returns the edge list from the start vertex; the transition-edge
        symbols along it form the counterexample prefix. Raises
        :class:`~repro.robust.errors.PathNotFoundError` if no path exists
        (which would indicate a bug: LALR conflicts are always reachable)
        and the budget's structured errors when *budget* runs out.
        """
        fire("lasg")
        target_state = self.automaton.states[conflict.state_id]
        target_item = conflict.reduce_item
        terminal = conflict.terminal

        # Restrict to (state, item) pairs that can reach the conflict item
        # (§6 describes a state-level restriction; the pair-level one is a
        # strictly stronger, equally sound prune).
        allowed_pairs = self.automaton.lookups.reaching_pairs(
            target_state, target_item
        )

        start = self.start_vertex
        if (start.state_id, start.item) not in allowed_pairs:
            raise PathNotFoundError(
                f"start state cannot reach conflict item {target_item} "
                f"in state {conflict.state_id}",
                stage="lasg",
                conflict=str(conflict),
                state_id=conflict.state_id,
            )

        parents: dict[LASGVertex, LASGEdge] = {}
        queue: deque[LASGVertex] = deque([start])
        seen: set[LASGVertex] = {start}

        while queue:
            if budget is not None:
                budget.charge()
                budget.poll("lasg")
            vertex = queue.popleft()
            if (
                vertex.state_id == conflict.state_id
                and vertex.item == target_item
                and terminal in vertex.lookahead
            ):
                return self._reconstruct(parents, vertex)
            for edge in self.successors(vertex):
                successor = edge.target
                if (successor.state_id, successor.item) not in allowed_pairs:
                    continue
                if successor in seen:
                    continue
                seen.add(successor)
                parents[successor] = edge
                queue.append(successor)

        raise PathNotFoundError(
            f"no lookahead-sensitive path to conflict {conflict} — "
            "the automaton and its lookahead sets disagree",
            stage="lasg",
            conflict=str(conflict),
            state_id=conflict.state_id,
        )

    @staticmethod
    def _reconstruct(
        parents: dict[LASGVertex, LASGEdge], vertex: LASGVertex
    ) -> list[LASGEdge]:
        path: list[LASGEdge] = []
        current = vertex
        while current in parents:
            edge = parents[current]
            path.append(edge)
            current = edge.source
        path.reverse()
        return path


def path_states(path: list[LASGEdge]) -> frozenset[int]:
    """The parser states visited by a lookahead-sensitive path."""
    states = {edge.source.state_id for edge in path}
    if path:
        states.add(path[-1].target.state_id)
    return frozenset(states)


def path_prefix_symbols(path: list[LASGEdge]) -> tuple[Symbol, ...]:
    """The transition symbols along a path: the counterexample prefix."""
    return tuple(edge.symbol for edge in path if edge.symbol is not None)
