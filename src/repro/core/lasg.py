"""The lookahead-sensitive graph and its shortest paths (paper §4).

A vertex is a triple ``(state, item, L)`` where ``L`` is a *precise*
lookahead set — the terminals that actually can follow the current
production in this context. Edges:

* **transition**: mirrors a parser transition, preserving ``L``;
* **production step**: enters a production of the nonterminal after the
  dot, replacing ``L`` by ``follow_L(item)``, the paper's precise follow
  set (``first_of_sequence`` of the rest of the production, with ``L``
  when that rest is nullable).

A *shortest lookahead-sensitive path* from the start vertex
``(s0, START' -> . S $, {$})`` to a conflict vertex — the conflict state
and reduce item, with the conflict terminal in ``L`` — provides the prefix
of a counterexample that genuinely carries the conflict terminal as
legitimate lookahead. (The shortest path in the plain state graph often
does not; see the dangling-else discussion in §4.)

As in the paper's implementation, the search is restricted to parser
states that can reach the conflict item backward, which keeps the graph
small; vertices are materialised lazily during the breadth-first search.

Hot-path representation
-----------------------

The graph is never materialised as objects during the search. A BFS
vertex is the plain tuple ``(state_id, item, lookahead_mask)`` — the
lookahead is an int bitmask over the automaton's
:class:`~repro.automaton.bitset.TerminalTable` — and two memo layers are
shared across all the conflicts explained against one graph instance
(one :class:`~repro.core.finder.CounterexampleFinder` lifetime):

* a *skeleton* per ``(state_id, item)``: the goto target, the advanced
  item, and (for nonterminal dots) the production-step items plus the
  precomputed ``(FIRST(β) mask, β nullable)`` follow parts. This is
  conflict- and lookahead-independent, so it is a plain dict bounded by
  the automaton's own size;
* a bounded LRU over fully-expanded vertex successor lists keyed by the
  full ``(state_id, item, mask)`` triple — conflicts of one automaton
  revisit the same vertices near the start state constantly. Bounded
  (mirroring ``lookups.reaching_pairs``) because distinct masks can in
  principle multiply without limit on a long-lived graph; hits, misses
  and evictions are exposed via :meth:`LookaheadSensitiveGraph.cache_info`
  and the ``lasg.successors.*`` metrics counters.

``lasg.vertices.materialized`` counts the vertices the BFS actually
created; ``lasg.vertices.estimated_full`` records the size estimate of
the *whole* graph (items × distinct lookahead sets), recorded once per
graph so profiles show how much work laziness avoided.

:class:`LASGVertex`/:class:`LASGEdge` objects are only built for the
final reconstructed path and by the public :meth:`successors` API.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Iterator

from repro.automaton.conflicts import Conflict
from repro.automaton.items import Item
from repro.automaton.lalr import LALRAutomaton
from repro.grammar import END_OF_INPUT, Nonterminal, Symbol, Terminal
from repro.perf import metrics
from repro.robust.budget import Budget
from repro.robust.errors import PathNotFoundError
from repro.robust.faults import fire


@dataclass(frozen=True, slots=True)
class LASGVertex:
    """A vertex ``(state, item, precise lookahead set)``."""

    state_id: int
    item: Item
    lookahead: frozenset[Terminal]

    def __str__(self) -> str:
        las = ", ".join(sorted(str(t) for t in self.lookahead))
        return f"({self.state_id}, {self.item}, {{{las}}})"


@dataclass(frozen=True, slots=True)
class LASGEdge:
    """An edge of the lookahead-sensitive graph.

    ``symbol`` is the transition symbol, or ``None`` for a production step
    (rendered ``[prod]`` as in the paper's Figure 5).
    """

    source: LASGVertex
    symbol: Symbol | None
    target: LASGVertex

    @property
    def is_production_step(self) -> bool:
        return self.symbol is None

    def __str__(self) -> str:
        label = "[prod]" if self.symbol is None else str(self.symbol)
        return f"{self.source} --{label}--> {self.target}"


class LookaheadSensitiveGraph:
    """Lazy lookahead-sensitive graph over an LALR automaton.

    One instance is meant to live exactly as long as one
    :class:`~repro.core.finder.CounterexampleFinder`: its memo tables
    are shared across that finder's conflicts and released with it.
    """

    def __init__(
        self, automaton: LALRAutomaton, max_cache_entries: int = 32_768
    ) -> None:
        if max_cache_entries < 1:
            raise ValueError("max_cache_entries must be positive")
        self.automaton = automaton
        self.analysis = automaton.analysis
        self.grammar = automaton.grammar
        self.max_cache_entries = max_cache_entries
        #: (state_id, item) -> (goto_target_id, advanced_item,
        #: step_items, first_mask, nullable) | None for reduce items.
        #: Conflict-independent, bounded by the automaton size.
        self._skeletons: dict[
            tuple[int, Item],
            tuple[int, Item, tuple[Item, ...], int, bool] | None,
        ] = {}
        #: Bounded LRU over expanded successor lists, keyed by the full
        #: vertex triple; shared across this graph's conflicts.
        self._successor_cache: OrderedDict[
            tuple[int, Item, int],
            tuple[tuple[tuple[int, Item, int], Symbol | None], ...],
        ] = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._estimate_recorded = False

    # ------------------------------------------------------------------ #

    @property
    def start_vertex(self) -> LASGVertex:
        """``(s0, START' -> . S $, {$})``."""
        return LASGVertex(0, self.automaton.start_item, frozenset({END_OF_INPUT}))

    def successors(self, vertex: LASGVertex) -> Iterator[LASGEdge]:
        """All outgoing edges of *vertex*, created on demand.

        Object-level API (tests, tooling, the paper's definitions in
        executable form). :meth:`shortest_path` expands the same edges —
        in the same order — through the tuple-level fast path instead.
        """
        item = vertex.item
        symbol = item.next_symbol
        if symbol is None:
            return
        # Transition edge.
        state = self.automaton.states[vertex.state_id]
        target_state = state.transitions[symbol]
        yield LASGEdge(
            vertex,
            symbol,
            LASGVertex(target_state.id, item.advance(), vertex.lookahead),
        )
        # Production-step edges.
        if symbol.is_nonterminal:
            assert isinstance(symbol, Nonterminal)
            follow = self.analysis.precise_follow(
                item.production, item.dot, vertex.lookahead
            )
            for production in self.grammar.productions_of(symbol):
                yield LASGEdge(
                    vertex,
                    None,
                    LASGVertex(vertex.state_id, Item(production, 0), follow),
                )

    # ------------------------------------------------------------------ #
    # Tuple-level lazy expansion (the hot path)

    def _skeleton(
        self, state_id: int, item: Item
    ) -> tuple[int, Item, tuple[Item, ...], int, bool] | None:
        """Lookahead-independent expansion data for ``(state_id, item)``."""
        key = (state_id, item)
        try:
            return self._skeletons[key]
        except KeyError:
            pass
        symbol = item.next_symbol
        if symbol is None:
            skeleton = None
        else:
            target_id = self.automaton.states[state_id].transitions[symbol].id
            if symbol.is_nonterminal:
                assert isinstance(symbol, Nonterminal)
                first_mask, nullable = self.automaton.follow_parts(
                    item.production, item.dot
                )
                step_items = tuple(
                    Item(production, 0)
                    for production in self.grammar.productions_of(symbol)
                )
            else:
                first_mask, nullable, step_items = 0, False, ()
            skeleton = (target_id, item.advance(), step_items, first_mask, nullable)
        self._skeletons[key] = skeleton
        return skeleton

    def _expand(
        self, state_id: int, item: Item, mask: int
    ) -> tuple[tuple[tuple[int, Item, int], Symbol | None], ...]:
        """Successor ``((state_id, item, mask), symbol)`` pairs of a vertex.

        Same edges, same order, as :meth:`successors`: the transition
        edge first, then production steps in declaration order — BFS
        tie-breaking (and therefore which of several equally-short paths
        a report shows) depends on this order staying fixed. Memoized in
        the bounded cross-conflict LRU.
        """
        cache_key = (state_id, item, mask)
        cache = self._successor_cache
        cached = cache.get(cache_key)
        if cached is not None:
            cache.move_to_end(cache_key)
            self._cache_hits += 1
            metrics.count("lasg.successors.hit")
            return cached
        self._cache_misses += 1
        metrics.count("lasg.successors.miss")
        skeleton = self._skeleton(state_id, item)
        if skeleton is None:
            expanded: tuple = ()
        else:
            target_id, advanced, step_items, first_mask, nullable = skeleton
            symbol = item.next_symbol
            edges = [((target_id, advanced, mask), symbol)]
            if step_items:
                follow = first_mask | mask if nullable else first_mask
                edges.extend(
                    ((state_id, step_item, follow), None)
                    for step_item in step_items
                )
            expanded = tuple(edges)
        cache[cache_key] = expanded
        if len(cache) > self.max_cache_entries:
            cache.popitem(last=False)
            self._cache_evictions += 1
            metrics.count("lasg.successors.evicted")
        return expanded

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/eviction counters and size of the successor LRU."""
        return {
            "entries": len(self._successor_cache),
            "max_entries": self.max_cache_entries,
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "evictions": self._cache_evictions,
            "skeletons": len(self._skeletons),
        }

    def clear_successor_cache(self) -> None:
        """Drop the memoized successor lists (counters kept)."""
        self._successor_cache.clear()

    def _record_estimate(self) -> None:
        """Record the whole-graph size estimate once per graph instance.

        The eager construction this module replaced would materialise up
        to ``(state, item) pairs × distinct lookahead sets`` vertices;
        comparing that against ``lasg.vertices.materialized`` in a
        profile shows what laziness saved.
        """
        if self._estimate_recorded:
            return
        self._estimate_recorded = True
        masks = self.automaton.lookahead_masks
        distinct_masks = len(set(masks.values())) or 1
        metrics.count("lasg.vertices.estimated_full", len(masks) * distinct_masks)

    # ------------------------------------------------------------------ #

    def shortest_path(
        self, conflict: Conflict, budget: Budget | None = None
    ) -> list[LASGEdge]:
        """Shortest lookahead-sensitive path to the conflict reduce item.

        The target is any vertex at the conflict state whose item is the
        conflict's reduce item and whose precise lookahead set contains
        the conflict terminal (the reduce item is used because no
        lookahead information exists for the shift item — footnote 4).

        Returns the edge list from the start vertex; the transition-edge
        symbols along it form the counterexample prefix. Raises
        :class:`~repro.robust.errors.PathNotFoundError` if no path exists
        (which would indicate a bug: LALR conflicts are always reachable)
        and the budget's structured errors when *budget* runs out.
        """
        fire("lasg")
        self._record_estimate()
        automaton = self.automaton
        target_state = automaton.states[conflict.state_id]
        target_item = conflict.reduce_item
        target_state_id = conflict.state_id
        terminal_bit = automaton.terminal_bit(conflict.terminal)

        # Restrict to (state, item) pairs that can reach the conflict item
        # (§6 describes a state-level restriction; the pair-level one is a
        # strictly stronger, equally sound prune).
        allowed_pairs = automaton.lookups.reaching_pairs(target_state, target_item)

        start_item = automaton.start_item
        if (0, start_item) not in allowed_pairs:
            raise PathNotFoundError(
                f"start state cannot reach conflict item {target_item} "
                f"in state {conflict.state_id}",
                stage="lasg",
                conflict=str(conflict),
                state_id=conflict.state_id,
            )

        start_key = (0, start_item, automaton.terminal_bit(END_OF_INPUT))
        #: vertex key -> (parent key, edge symbol or None)
        parents: dict[
            tuple[int, Item, int], tuple[tuple[int, Item, int], Symbol | None]
        ] = {}
        queue: deque[tuple[int, Item, int]] = deque([start_key])
        seen: set[tuple[int, Item, int]] = {start_key}
        expand = self._expand
        materialized = 1

        while queue:
            if budget is not None:
                budget.charge()
                budget.poll("lasg")
            key = queue.popleft()
            state_id, item, mask = key
            if (
                state_id == target_state_id
                and item == target_item
                and mask & terminal_bit
            ):
                metrics.count("lasg.vertices.materialized", materialized)
                return self._reconstruct(parents, key)
            for successor, _symbol in expand(state_id, item, mask):
                if successor in seen:
                    continue
                if (successor[0], successor[1]) not in allowed_pairs:
                    continue
                seen.add(successor)
                materialized += 1
                parents[successor] = (key, _symbol)
                queue.append(successor)

        metrics.count("lasg.vertices.materialized", materialized)
        raise PathNotFoundError(
            f"no lookahead-sensitive path to conflict {conflict} — "
            "the automaton and its lookahead sets disagree",
            stage="lasg",
            conflict=str(conflict),
            state_id=conflict.state_id,
        )

    def _reconstruct(
        self,
        parents: dict[
            tuple[int, Item, int], tuple[tuple[int, Item, int], Symbol | None]
        ],
        key: tuple[int, Item, int],
    ) -> list[LASGEdge]:
        """Materialise the edge objects for the discovered path only."""
        chain: list[tuple[tuple[int, Item, int], Symbol | None, tuple[int, Item, int]]]
        chain = []
        current = key
        while current in parents:
            parent_key, symbol = parents[current]
            chain.append((parent_key, symbol, current))
            current = parent_key
        chain.reverse()
        view = self.automaton.terminal_table.view
        vertices: dict[tuple[int, Item, int], LASGVertex] = {}

        def vertex_of(k: tuple[int, Item, int]) -> LASGVertex:
            vertex = vertices.get(k)
            if vertex is None:
                vertex = vertices[k] = LASGVertex(k[0], k[1], view(k[2]))
            return vertex

        return [
            LASGEdge(vertex_of(source), symbol, vertex_of(target))
            for source, symbol, target in chain
        ]


def path_states(path: list[LASGEdge]) -> frozenset[int]:
    """The parser states visited by a lookahead-sensitive path."""
    states = {edge.source.state_id for edge in path}
    if path:
        states.add(path[-1].target.state_id)
    return frozenset(states)


def path_prefix_symbols(path: list[LASGEdge]) -> tuple[Symbol, ...]:
    """The transition symbols along a path: the counterexample prefix."""
    return tuple(edge.symbol for edge in path if edge.symbol is not None)
