"""Search configurations for the unifying-counterexample search (§5.3).

A :class:`Configuration` carries, for each of the two simulated parsers,

* a sequence of **state-items** — ``(state id, item)`` pairs forming a
  path of transition and production-step edges in the parser, with
  completed productions already folded away (paper Figure 8); and
* a sequence of **partial derivations** aligned with the transition edges
  of that path, containing exactly one conflict-dot marker until the fold
  that completes the conflict item absorbs it.

Parser 1 owns the conflict's reduce item; parser 2 owns the shift item
(or the second reduce item). The invariant maintained throughout is that
the *heads* of the two sequences lie in the same parser state: the input
prefix up to the conflict point is common to both parses.

:class:`SuccessorGenerator` implements the successor configurations of
Figure 10:

* joint forward **transition** (10a) — both parsers consume a symbol;
* forward **production step** on one parser (10b);
* joint **reverse transition** (10c) — prepend one symbol to the common
  prefix, constrained during stage 1 to items whose lookahead sets
  contain the conflict terminal;
* **reverse production step** on one parser (10d, 10e);
* **reduction** on one parser (10f) — fold the last ``len(rhs)+1``
  state-items and wrap the matching derivations into a node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.automaton.conflicts import Conflict
from repro.automaton.items import Item
from repro.automaton.lalr import LALRAutomaton
from repro.core.derivation import DOT, Derivation, dleaf
from repro.grammar import Nonterminal, Production, Symbol

#: A position in the parser: (state id, item).
StateItem = tuple[int, Item]

# Action costs (used by the Dijkstra-style search in repro.core.search).
# Production steps are deliberately expensive relative to transitions and
# reductions: §5.4's third observation notes that production steps can be
# taken repeatedly within one state (e.g. left-recursive items), so the
# search "imposes different costs on different kinds of actions" to
# postpone such expansions. The same ratio is used by GNU Bison's
# implementation of this algorithm.
COST_TRANSITION = 1.0
COST_PRODUCTION_STEP = 50.0
COST_REVERSE_TRANSITION = 1.0
COST_REVERSE_PRODUCTION_STEP = 50.0
COST_REDUCTION = 1.0


@dataclass(frozen=True, slots=True)
class Configuration:
    """One search state of the product-parser simulation.

    ``conflict1``/``conflict2`` are the positions of the original conflict
    items within ``items1``/``items2`` (they shift right as symbols are
    prepended), or ``-1`` once the reduction folding that item has been
    performed — which is exactly the completion of stage 1 (stage 2 for
    the second parser).
    """

    items1: tuple[StateItem, ...]
    items2: tuple[StateItem, ...]
    derivs1: tuple[Derivation, ...]
    derivs2: tuple[Derivation, ...]
    conflict1: int = 0
    conflict2: int = 0
    shifted: bool = False

    @property
    def complete1(self) -> bool:
        """Stage 1 done: the conflict reduce item has been folded."""
        return self.conflict1 < 0

    @property
    def complete2(self) -> bool:
        """Stage 2 done: the other conflict item has been folded."""
        return self.conflict2 < 0

    def key(self) -> tuple:
        """Deduplication key: derivations are determined by the cheapest path."""
        return (
            self.items1,
            self.items2,
            self.conflict1,
            self.conflict2,
            self.shifted,
        )

    def head_state(self) -> int:
        return self.items1[0][0]

    def __str__(self) -> str:
        def side(items: tuple[StateItem, ...], derivs: tuple[Derivation, ...]) -> str:
            item_text = " ; ".join(f"{s}:{itm}" for s, itm in items)
            deriv_text = " ".join(d.render() for d in derivs)
            return f"[{item_text}] / [{deriv_text}]"

        return (
            f"Config(1: {side(self.items1, self.derivs1)}\n"
            f"       2: {side(self.items2, self.derivs2)}\n"
            f"       complete1={self.complete1} complete2={self.complete2} "
            f"shifted={self.shifted})"
        )


def initial_configuration(conflict: Conflict) -> Configuration:
    """The paper's Figure 8(b): singleton item sequences, dot-only derivations."""
    return Configuration(
        items1=((conflict.state_id, conflict.reduce_item),),
        items2=((conflict.state_id, conflict.other_item),),
        derivs1=(DOT,),
        derivs2=(DOT,),
    )


class SuccessorGenerator:
    """Computes successor configurations over a given automaton and conflict."""

    def __init__(
        self,
        automaton: LALRAutomaton,
        conflict: Conflict,
        allowed_prepend_states: frozenset[int] | None = None,
    ) -> None:
        """
        Args:
            automaton: The LALR automaton.
            conflict: The conflict being explained.
            allowed_prepend_states: States usable as reverse-transition
                targets; ``None`` allows every state (the paper's
                ``-extendedsearch``), otherwise pass the states of the
                shortest lookahead-sensitive path (§6 tradeoff).
        """
        self.automaton = automaton
        self.analysis = automaton.analysis
        self.grammar = automaton.grammar
        self.lookups = automaton.lookups
        self.conflict = conflict
        self.allowed_prepend_states = allowed_prepend_states
        # Hot-path state, hoisted once per conflict: the successor methods
        # run for every explored configuration, so attribute chains,
        # Symbol-keyed dict probes, and set-based lookahead membership
        # tests are replaced by flat arrays and int masks.
        self._states = automaton.lr0.states
        self._arrays = automaton.lr0.arrays
        self._masks = automaton.lookahead_masks
        self._terminal_bit = automaton.terminal_bit(conflict.terminal)
        #: (production index, dot) -> FIRST symbols of rhs[dot:] + nullable.
        self._tail_first: dict[tuple[int, int], tuple[frozenset[Symbol], bool]] = {}

    def _first_of_tail(self, production: Production, dot: int):
        """Memoized ``first_symbols_of_sequence(production.rhs[dot:])``."""
        key = (production.index, dot)
        cached = self._tail_first.get(key)
        if cached is None:
            cached = self.analysis.first_symbols_of_sequence(production.rhs[dot:])
            self._tail_first[key] = cached
        return cached

    # ------------------------------------------------------------------ #

    def successors(
        self, config: Configuration
    ) -> Iterator[tuple[str, float, Configuration]]:
        """Yield ``(action label, cost, successor)`` triples."""
        yield from self._reductions(config)
        yield from self._forward_transitions(config)
        yield from self._forward_production_steps(config)
        yield from self._reverse_moves(config)

    # ------------------------------------------------------------------ #
    # Reductions (Figure 10(f))

    def _reductions(
        self, config: Configuration
    ) -> Iterator[tuple[str, float, Configuration]]:
        for parser in (1, 2):
            items = config.items1 if parser == 1 else config.items2
            state_id, item = items[-1]
            if not item.at_end:
                continue
            arity = len(item.production.rhs)
            if len(items) < arity + 2:
                continue  # needs reverse moves first
            # Stage discipline: before the conflict terminal has been
            # shifted, a reduction is only valid if the conflict terminal
            # is in the reduce item's lookahead set (it is the next input
            # symbol at that point).
            if not config.shifted:
                if not self._masks[(state_id, item)] & self._terminal_bit:
                    continue
            successor = self._reduce(config, parser)
            if successor is not None:
                yield (f"reduce{parser}", COST_REDUCTION, successor)

    def _reduce(self, config: Configuration, parser: int) -> Configuration | None:
        items = config.items1 if parser == 1 else config.items2
        derivs = config.derivs1 if parser == 1 else config.derivs2
        conflict_index = config.conflict1 if parser == 1 else config.conflict2

        state_id, item = items[-1]
        production = item.production
        arity = len(production.rhs)

        parent_state_id, parent_item = items[-(arity + 2)]
        if parent_item.next_symbol != production.lhs:
            return None
        goto_id = self._arrays.goto_id(parent_state_id, production.lhs)
        if goto_id < 0:
            return None

        new_items = items[: -(arity + 1)] + ((goto_id, parent_item.advance()),)

        # Does this fold remove the original conflict item? The fold pops
        # the last `arity + 1` entries (the production's dot-walk), so it
        # covers the conflict item iff its index lies in that range. This
        # is exactly the completion of the paper's stage 1 (stage 2 for
        # parser 2).
        covers_conflict = conflict_index >= len(items) - (arity + 1)

        # Fold the derivations: take entries from the end until `arity`
        # non-dot derivations are collected; the dot marker lands among
        # them when the folded production spans the conflict point.
        cut = len(derivs)
        collected = 0
        while collected < arity:
            cut -= 1
            if not derivs[cut].is_dot:
                collected += 1
        children = list(derivs[cut:])

        if covers_conflict and not any(child.is_dot for child in children):
            # The conflict item's dot sits at the left boundary of the
            # collected span (dot position 0, e.g. an epsilon reduce item
            # or a shift item with nothing before its dot); pull the
            # top-level dot marker into the node so the conflict point
            # stays visible inside the derivation.
            if cut > 0 and derivs[cut - 1].is_dot:
                cut -= 1
                children.insert(0, DOT)

        node = Derivation(production.lhs, tuple(children), production)
        new_derivs = derivs[:cut] + (node,)

        new_conflict_index = -1 if covers_conflict else conflict_index
        if parser == 1:
            return Configuration(
                new_items,
                config.items2,
                new_derivs,
                config.derivs2,
                new_conflict_index,
                config.conflict2,
                config.shifted,
            )
        return Configuration(
            config.items1,
            new_items,
            config.derivs1,
            new_derivs,
            config.conflict1,
            new_conflict_index,
            config.shifted,
        )

    # ------------------------------------------------------------------ #
    # Joint forward transitions (Figure 10(a))

    def _forward_transitions(
        self, config: Configuration
    ) -> Iterator[tuple[str, float, Configuration]]:
        state1, item1 = config.items1[-1]
        state2, item2 = config.items2[-1]
        symbol = item1.next_symbol
        if symbol is None or symbol != item2.next_symbol:
            return
        if not config.shifted and symbol != self.conflict.terminal:
            # The first symbol after the conflict point must be the
            # conflict terminal, otherwise the example would not exhibit
            # this conflict.
            return
        arrays = self._arrays
        code = arrays.code.get(symbol)
        if code is None:
            return
        stride, goto_flat = arrays.stride, arrays.goto_flat
        target1 = goto_flat[state1 * stride + code]
        target2 = goto_flat[state2 * stride + code]
        if target1 < 0 or target2 < 0:
            return
        leaf = dleaf(symbol)
        yield (
            "transition",
            COST_TRANSITION,
            Configuration(
                config.items1 + ((target1, item1.advance()),),
                config.items2 + ((target2, item2.advance()),),
                config.derivs1 + (leaf,),
                config.derivs2 + (leaf,),
                config.conflict1,
                config.conflict2,
                True,
            ),
        )

    # ------------------------------------------------------------------ #
    # Forward production steps (Figure 10(b))

    def _forward_production_steps(
        self, config: Configuration
    ) -> Iterator[tuple[str, float, Configuration]]:
        for parser in (1, 2):
            items = config.items1 if parser == 1 else config.items2
            other_items = config.items2 if parser == 1 else config.items1
            state_id, item = items[-1]
            symbol = item.next_symbol
            if symbol is None or not symbol.is_nonterminal:
                continue
            assert isinstance(symbol, Nonterminal)
            viable = self._viable_next_symbols(config, other_items)
            for production in self.grammar.productions_of(symbol):
                if not self._step_is_matchable(production, viable):
                    continue
                new_entry = (state_id, Item(production, 0))
                if parser == 1:
                    successor = Configuration(
                        items + (new_entry,),
                        config.items2,
                        config.derivs1,
                        config.derivs2,
                        config.conflict1,
                        config.conflict2,
                        config.shifted,
                    )
                else:
                    successor = Configuration(
                        config.items1,
                        items + (new_entry,),
                        config.derivs1,
                        config.derivs2,
                        config.conflict1,
                        config.conflict2,
                        config.shifted,
                    )
                yield (f"prod{parser}", COST_PRODUCTION_STEP, successor)

    def _viable_next_symbols(
        self, config: Configuration, other_items: tuple[StateItem, ...]
    ) -> frozenset[Symbol] | None:
        """Symbols the *other* parser could accept on the next joint transition.

        ``None`` means unconstrained (the other parser is about to reduce
        into an unknown context). Before the conflict terminal has been
        shifted, the next joint transition must be on it, so the set is
        exactly the conflict terminal.
        """
        if not config.shifted:
            return frozenset({self.conflict.terminal})
        _, other_item = other_items[-1]
        if other_item.at_end:
            return None
        symbols, nullable = self._first_of_tail(other_item.production, other_item.dot)
        if nullable:
            return None  # the other parser may finish this production entirely
        return symbols

    def _step_is_matchable(
        self, production: Production, viable: frozenset[Symbol] | None
    ) -> bool:
        """Whether stepping into *production* can lead to a matchable transition.

        The step is useful only if the production can begin with a symbol
        the other parser may accept, or can vanish entirely (nullable),
        letting its parent continue.
        """
        if viable is None:
            return True
        first, nullable = self._first_of_tail(production, 0)
        return nullable or not viable.isdisjoint(first)

    # ------------------------------------------------------------------ #
    # Reverse moves (Figure 10(c)-(e))

    def _needs_prepend(self, items: tuple[StateItem, ...]) -> bool:
        _, item = items[-1]
        return item.at_end and len(items) < len(item.production.rhs) + 2

    def _reverse_moves(
        self, config: Configuration
    ) -> Iterator[tuple[str, float, Configuration]]:
        needs1 = self._needs_prepend(config.items1)
        needs2 = self._needs_prepend(config.items2)
        if not (needs1 or needs2):
            return

        head_state_id, head1 = config.items1[0]
        _, head2 = config.items2[0]
        head_state = self.automaton.states[head_state_id]

        # Reverse production steps lift a dot-0 head to its parent item in
        # the same state (Figure 10(d)/(e)).
        for parser, head in ((1, head1), (2, head2)):
            if not head.at_start:
                continue
            for parent in self.lookups.reverse_production_steps(head_state, head):
                if not self._reverse_step_allowed(parser, head_state_id, parent, config):
                    continue
                entry = (head_state_id, parent)
                if parser == 1:
                    successor = Configuration(
                        (entry,) + config.items1,
                        config.items2,
                        config.derivs1,
                        config.derivs2,
                        config.conflict1 + 1 if config.conflict1 >= 0 else -1,
                        config.conflict2,
                        config.shifted,
                    )
                else:
                    successor = Configuration(
                        config.items1,
                        (entry,) + config.items2,
                        config.derivs1,
                        config.derivs2,
                        config.conflict1,
                        config.conflict2 + 1 if config.conflict2 >= 0 else -1,
                        config.shifted,
                    )
                yield (f"revprod{parser}", COST_REVERSE_PRODUCTION_STEP, successor)

        # Joint reverse transitions prepend one symbol to the common
        # prefix (Figure 10(c)). Both heads must have the dot past 0; all
        # dot>0 items of a state share the same previous symbol, so the
        # two heads agree on the symbol automatically.
        if head1.at_start or head2.at_start:
            return
        symbol = head1.previous_symbol
        assert symbol is not None and symbol == head2.previous_symbol
        retreat1 = head1.retreat()
        retreat2 = head2.retreat()
        leaf = dleaf(symbol)
        masks = self._masks
        terminal_bit = self._terminal_bit
        check1 = not config.complete1
        check2 = not config.complete2 and not self.conflict.is_shift_reduce
        item_sets = self.lookups.item_sets
        for pred_id in self._arrays.predecessor_ids(head_state_id, symbol):
            if (
                self.allowed_prepend_states is not None
                and pred_id not in self.allowed_prepend_states
            ):
                continue
            item_set = item_sets[pred_id]
            if retreat1 not in item_set or retreat2 not in item_set:
                continue
            if check1 and not masks[(pred_id, retreat1)] & terminal_bit:
                continue
            if check2 and not masks[(pred_id, retreat2)] & terminal_bit:
                continue
            yield (
                "revtransition",
                COST_REVERSE_TRANSITION,
                Configuration(
                    ((pred_id, retreat1),) + config.items1,
                    ((pred_id, retreat2),) + config.items2,
                    (leaf,) + config.derivs1,
                    (leaf,) + config.derivs2,
                    config.conflict1 + 1 if config.conflict1 >= 0 else -1,
                    config.conflict2 + 1 if config.conflict2 >= 0 else -1,
                    config.shifted,
                ),
            )

    def _reverse_step_allowed(
        self,
        parser: int,
        state_id: int,
        parent: Item,
        config: Configuration,
    ) -> bool:
        """Stage-1 lookahead discipline for reverse production steps.

        While the conflict item of *parser* is not yet completed, the
        parent item chosen must allow the conflict terminal to follow the
        completed production (its precise follow set must contain it).
        Parser 2's side is only constrained for reduce/reduce conflicts —
        a shift item carries the conflict terminal itself.
        """
        if parser == 1 and config.complete1:
            return True
        if parser == 2 and (config.complete2 or self.conflict.is_shift_reduce):
            return True
        # precise_follow = FIRST(β) ∪ (context if β nullable), evaluated
        # as masks via the automaton's memoized follow parts.
        first_mask, nullable = self.automaton.follow_parts(
            parent.production, parent.dot
        )
        if first_mask & self._terminal_bit:
            return True
        if not nullable:
            return False
        return bool(self._masks[(state_id, parent)] & self._terminal_bit)
