"""Constructing nonunifying counterexamples (paper §4).

The construction has three parts:

1. the **shortest lookahead-sensitive path** to the conflict reduce item
   (delegated to :mod:`repro.core.lasg`) — its transition symbols are the
   counterexample prefix, and its production steps determine the
   derivation spine;
2. **completion**: the productions left open along the path are closed so
   that the conflict terminal appears immediately after the dot — the
   symbol after a dot is either the conflict terminal itself, a
   nonterminal expanded minimally into a string *beginning with* the
   conflict terminal, or a nullable nonterminal derived to epsilon;
3. the **shift-item derivation** (Figure 5(b)): a backward walk from the
   conflict's other item over the *same* state sequence, using reverse
   transitions and reverse production steps, until it anchors at the
   start item; replaying it forward gives the second derivation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.automaton.conflicts import Conflict
from repro.automaton.items import Item
from repro.automaton.lalr import LALRAutomaton
from repro.core.counterexample import Counterexample
from repro.core.derivation import DOT, Derivation, dleaf, dnode
from repro.core.lasg import LASGEdge, LookaheadSensitiveGraph
from repro.grammar import Nonterminal, Production, Symbol, Terminal
from repro.robust.budget import Budget
from repro.robust.errors import ExplanationError, PathNotFoundError
from repro.robust.faults import fire


class CompletionError(ExplanationError):
    """The conflict terminal could not be placed after the dot.

    On a lookahead-sensitive path this indicates an internal inconsistency
    for the reduce side; for the other side of a reduce/reduce conflict it
    can happen legitimately, and the caller falls back to a plain
    completion (the sides of a nonunifying counterexample may diverge
    after the dot).
    """


@dataclass
class _Frame:
    """An open production during derivation reconstruction."""

    production: Production
    children: list[Derivation] = field(default_factory=list)

    def arity(self) -> int:
        """Number of right-hand-side symbols already derived."""
        return sum(1 for child in self.children if not child.is_dot)

    def remaining(self) -> tuple[Symbol, ...]:
        return self.production.rhs[self.arity() :]

    def close(self) -> Derivation:
        return dnode(self.production, self.children)


class NonunifyingBuilder:
    """Builds nonunifying counterexamples for an automaton's conflicts."""

    def __init__(
        self,
        automaton: LALRAutomaton,
        graph: LookaheadSensitiveGraph | None = None,
    ) -> None:
        """*graph* lets a caller share one lookahead-sensitive graph (and
        its cross-conflict memo tables) — the finder passes its own."""
        self.automaton = automaton
        self.analysis = automaton.analysis
        self.grammar = automaton.grammar
        self.graph = graph if graph is not None else LookaheadSensitiveGraph(automaton)

    # ------------------------------------------------------------------ #
    # Public API

    def build(
        self,
        conflict: Conflict,
        path: list[LASGEdge] | None = None,
        budget: Budget | None = None,
    ) -> Counterexample:
        """A nonunifying counterexample for *conflict*.

        *path* may carry a precomputed shortest lookahead-sensitive path
        (the unifying search also needs it, so the finder shares it);
        *budget* bounds the backward walk cooperatively.
        """
        fire("nonunifying")
        if path is None:
            path = self.graph.shortest_path(conflict, budget=budget)
        derivation1 = self._reduce_side(conflict, path)
        derivation2 = self._other_side(conflict, path, budget=budget)
        return Counterexample(
            conflict=conflict,
            unifying=False,
            nonterminal=self.grammar.start,
            derivation1=derivation1,
            derivation2=derivation2,
        )

    # ------------------------------------------------------------------ #
    # Reduce-item side: replay the path, then complete with the conflict
    # terminal after the dot.

    def _reduce_side(self, conflict: Conflict, path: list[LASGEdge]) -> Derivation:
        frames = [_Frame(self.grammar.start_production)]
        for edge in path:
            if edge.is_production_step:
                frames.append(_Frame(edge.target.item.production))
            else:
                assert edge.symbol is not None
                frames[-1].children.append(dleaf(edge.symbol))
        frames[-1].children.append(DOT)
        return self._complete(frames, conflict.terminal, force_terminal=True)

    # ------------------------------------------------------------------ #
    # Completion

    def _complete(
        self, frames: list[_Frame], terminal: Terminal, force_terminal: bool
    ) -> Derivation:
        """Close all open frames bottom-up.

        With *force_terminal*, the first symbol derived after the dot must
        be *terminal*: nullable symbols in the way are derived to epsilon
        and the first symbol that can start with *terminal* is expanded
        minimally; raises :class:`CompletionError` if impossible.
        """
        needs_terminal = force_terminal
        while True:
            frame = frames[-1]
            if needs_terminal:
                needs_terminal = not self._place_terminal(frame, terminal)
            else:
                for symbol in frame.remaining():
                    frame.children.append(dleaf(symbol))
            derivation = frame.close()
            frames.pop()
            if not frames:
                if needs_terminal:
                    raise CompletionError(
                        f"could not place conflict terminal {terminal} after the dot"
                    )
                return derivation
            frames[-1].children.append(derivation)

    def _place_terminal(self, frame: _Frame, terminal: Terminal) -> bool:
        """Try to make *terminal* the first leaf of *frame*'s remaining symbols.

        Returns ``True`` on success (the frame is then fully completed);
        ``False`` if every remaining symbol was nullable and was derived
        to epsilon (the terminal must come from an ancestor frame).
        """
        remaining = list(frame.remaining())
        for index, symbol in enumerate(remaining):
            if symbol == terminal:
                for rest in remaining[index:]:
                    frame.children.append(dleaf(rest))
                return True
            if symbol.is_nonterminal:
                assert isinstance(symbol, Nonterminal)
                if terminal in self.analysis.first[symbol]:
                    frame.children.append(self.derive_starting_with(symbol, terminal))
                    for rest in remaining[index + 1 :]:
                        frame.children.append(dleaf(rest))
                    return True
                if symbol in self.analysis.nullable:
                    frame.children.append(self.derive_epsilon(symbol))
                    continue
            raise CompletionError(
                f"symbol {symbol} can neither start with {terminal} nor derive ε"
            )
        return False

    def derive_starting_with(
        self, nonterminal: Nonterminal, terminal: Terminal
    ) -> Derivation:
        """A minimal derivation of *nonterminal* whose yield begins with *terminal*.

        Symbols not needed to reach the terminal are left unexpanded.
        """
        step = self.analysis.starter_production(nonterminal, terminal)
        if step is None:
            raise CompletionError(f"{terminal} not in FIRST({nonterminal})")
        production, position = step
        children: list[Derivation] = []
        for symbol in production.rhs[:position]:
            assert isinstance(symbol, Nonterminal)
            children.append(self.derive_epsilon(symbol))
        pivot = production.rhs[position]
        if pivot == terminal:
            children.append(dleaf(terminal))
        else:
            assert isinstance(pivot, Nonterminal)
            children.append(self.derive_starting_with(pivot, terminal))
        for symbol in production.rhs[position + 1 :]:
            children.append(dleaf(symbol))
        return dnode(production, children)

    def derive_epsilon(self, nonterminal: Nonterminal) -> Derivation:
        """A derivation of *nonterminal* to the empty string."""
        production = self.analysis.nullable_production(nonterminal)
        children = [
            self.derive_epsilon(symbol)  # type: ignore[arg-type]
            for symbol in production.rhs
        ]
        return dnode(production, children)

    # ------------------------------------------------------------------ #
    # The other side: backward walk over the path's state sequence
    # (Figure 5(b)), then forward replay.

    def _other_side(
        self,
        conflict: Conflict,
        path: list[LASGEdge],
        budget: Budget | None = None,
    ) -> Derivation:
        states, symbols = self._transition_sequence(path)
        operations = self._backward_walk(conflict, states, symbols, budget=budget)

        frames = [_Frame(self.grammar.start_production)]
        for kind, payload in operations:
            if kind == "step":
                frames.append(_Frame(payload))
            else:
                frames[-1].children.append(dleaf(payload))
        frames[-1].children.append(DOT)

        other = conflict.other_item
        if conflict.is_shift_reduce:
            # The shift item has the conflict terminal after its dot; append
            # the rest of the production and close everything plainly.
            for symbol in other.tail():
                frames[-1].children.append(dleaf(symbol))
            return self._complete(frames, conflict.terminal, force_terminal=False)
        # Reduce/reduce: try to place the conflict terminal, as on the
        # reduce side; this can fail for the second item, in which case the
        # sides legitimately diverge after the dot.
        snapshot = [
            _Frame(frame.production, list(frame.children)) for frame in frames
        ]
        try:
            return self._complete(frames, conflict.terminal, force_terminal=True)
        except CompletionError:
            return self._complete(snapshot, conflict.terminal, force_terminal=False)

    @staticmethod
    def _transition_sequence(
        path: list[LASGEdge],
    ) -> tuple[list[int], list[Symbol]]:
        """States at each input position and the symbols consumed between them."""
        states: list[int] = [0]
        symbols: list[Symbol] = []
        for edge in path:
            if not edge.is_production_step:
                assert edge.symbol is not None
                symbols.append(edge.symbol)
                states.append(edge.target.state_id)
        return states, symbols

    def _backward_walk(
        self,
        conflict: Conflict,
        states: list[int],
        symbols: list[Symbol],
        budget: Budget | None = None,
    ) -> list[tuple[str, object]]:
        """Find production steps/transitions reaching the other conflict item.

        Searches backward from ``(position m, other item)`` to
        ``(0, start item)`` over the path's state sequence, using reverse
        transitions (which must consume the recorded symbol) and reverse
        production steps (within the recorded state). Returns forward-order
        operations ``("step", production)`` / ``("shift", symbol)``.
        """
        lookups = self.automaton.lookups
        last_position = len(symbols)
        target = (0, self.automaton.start_item)
        origin = (last_position, conflict.other_item)

        parents: dict[tuple[int, Item], tuple[tuple[int, Item], str]] = {}
        queue: deque[tuple[int, Item]] = deque([origin])
        seen = {origin}
        while queue:
            if budget is not None:
                budget.charge()
                budget.poll("nonunifying")
            position, item = queue.popleft()
            if (position, item) == target:
                break
            if item.dot > 0:
                if position > 0 and item.previous_symbol == symbols[position - 1]:
                    retreated = item.retreat()
                    if retreated in lookups.item_sets[states[position - 1]]:
                        node = (position - 1, retreated)
                        if node not in seen:
                            seen.add(node)
                            parents[node] = ((position, item), "shift")
                            queue.append(node)
            else:
                state = self.automaton.states[states[position]]
                # Prefer parents with fewer symbols left after the dot:
                # those trailing symbols all end up in the counterexample,
                # so this keeps the reported example minimal (Figure 5(b)
                # uses the short if-production as the outer context).
                candidates = sorted(
                    lookups.reverse_production_steps(state, item),
                    key=lambda parent: len(parent.production.rhs) - parent.dot,
                )
                for parent_item in candidates:
                    node = (position, parent_item)
                    if node not in seen:
                        seen.add(node)
                        parents[node] = ((position, item), "step")
                        queue.append(node)
        else:
            raise PathNotFoundError(
                f"no backward walk from {conflict.other_item} over the "
                "lookahead-sensitive path's states — automaton inconsistency",
                stage="nonunifying",
                conflict=str(conflict),
                state_id=conflict.state_id,
            )

        # Read the chain forward from the start item.
        operations: list[tuple[str, object]] = []
        node = target
        while node != origin:
            (successor, kind) = parents[node]
            if kind == "step":
                # Forward direction: node is the parent item, successor the
                # dot-0 item entered by the production step.
                operations.append(("step", successor[1].production))
            else:
                operations.append(("shift", symbols[node[0]]))
            node = successor
        return operations

