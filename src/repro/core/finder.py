"""Top-level counterexample finder (paper §6 policy).

For each conflict:

1. compute the shortest lookahead-sensitive path to the conflict reduce
   item (needed both for the nonunifying construction and to restrict the
   unifying search's reverse transitions);
2. run the unifying search with a per-conflict time limit (default 5 s);
3. on success, optionally cross-check the counterexample with the
   independent Earley oracle (the sentential form must have >= 2 distinct
   derivations from the unifying nonterminal);
4. on failure or timeout, fall back to a nonunifying counterexample built
   from the path.

A cumulative budget (default 2 minutes) covers all unifying searches for
one grammar; once it is spent, remaining conflicts get nonunifying
counterexamples immediately, as in the paper's implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.automaton.conflicts import Conflict
from repro.automaton.lalr import LALRAutomaton, build_lalr
from repro.core.counterexample import Counterexample
from repro.core.lasg import LookaheadSensitiveGraph, path_states
from repro.core.nonunifying import NonunifyingBuilder
from repro.core.search import SearchStats, UnifyingSearch
from repro.grammar import Grammar
from repro.parsing.earley import DerivationBudgetExceeded, EarleyParser


@dataclass
class FinderReport:
    """Everything the finder knows about one conflict's explanation."""

    conflict: Conflict
    counterexample: Counterexample
    unifying_time: float
    timed_out: bool
    stats: SearchStats | None = None
    verified: bool | None = None


@dataclass
class FinderSummary:
    """Aggregate results for a grammar (the columns of Table 1)."""

    grammar_name: str
    num_conflicts: int = 0
    num_unifying: int = 0
    num_nonunifying: int = 0
    num_timeout: int = 0
    #: Conflicts answered nonunifying *without* running the unifying
    #: search because the cumulative budget was already spent — the
    #: parenthesised count in the paper's Table 1 (e.g. Java.2's "(983)").
    num_skipped_search: int = 0
    total_time: float = 0.0
    reports: list[FinderReport] = field(default_factory=list)

    @property
    def average_time(self) -> float:
        """Paper's "Average time": total over conflicts answered in time."""
        answered = self.num_unifying + self.num_nonunifying
        return self.total_time / answered if answered else float("nan")


class CounterexampleFinder:
    """Finds a counterexample for every conflict of a grammar."""

    def __init__(
        self,
        source: Grammar | LALRAutomaton,
        time_limit: float = 5.0,
        cumulative_limit: float = 120.0,
        extended_search: bool = False,
        verify: bool = True,
        max_configurations: int = 2_000_000,
        verify_step_budget: int | None = 1_000_000,
    ) -> None:
        """
        Args:
            source: A grammar or a prebuilt automaton.
            time_limit: Per-conflict unifying-search budget in seconds
                (the paper uses 5 s).
            cumulative_limit: Total unifying-search budget per grammar
                (the paper uses 2 minutes).
            extended_search: Do not restrict reverse transitions to the
                shortest lookahead-sensitive path (``-extendedsearch``).
            verify: Cross-check unifying counterexamples with the Earley
                oracle; unverifiable candidates are demoted to the
                nonunifying fallback.
            max_configurations: Hard cap per unifying search.
            verify_step_budget: Step cap for the Earley verification pass;
                a candidate whose ambiguity cannot be confirmed within the
                budget is demoted like any other unverifiable one. Highly
                ambiguous cyclic grammars otherwise make the exhaustive
                derivation count blow up.
        """
        if isinstance(source, LALRAutomaton):
            self.automaton = source
        else:
            self.automaton = build_lalr(source)
        self.grammar = self.automaton.grammar
        self.time_limit = time_limit
        self.cumulative_limit = cumulative_limit
        self.extended_search = extended_search
        self.verify = verify
        self.verify_step_budget = verify_step_budget
        self.max_configurations = max_configurations

        self.graph = LookaheadSensitiveGraph(self.automaton)
        self.nonunifying = NonunifyingBuilder(self.automaton)
        self._earley = EarleyParser(self.grammar)
        self._unifying_budget_spent = 0.0

    # ------------------------------------------------------------------ #

    @property
    def conflicts(self) -> list[Conflict]:
        return self.automaton.conflicts

    def explain(self, conflict: Conflict) -> FinderReport:
        """Produce a counterexample for one conflict."""
        started = time.monotonic()
        path = self.graph.shortest_path(conflict)

        budget_left = self.cumulative_limit - self._unifying_budget_spent
        stats: SearchStats | None = None
        timed_out = False
        counterexample: Counterexample | None = None
        verified: bool | None = None

        if budget_left > 0:
            allowed = None if self.extended_search else path_states(path)
            search = UnifyingSearch(
                self.automaton,
                conflict,
                allowed_prepend_states=allowed,
                time_limit=min(self.time_limit, budget_left),
                max_configurations=self.max_configurations,
            )
            result = search.run()
            stats = result.stats
            self._unifying_budget_spent += stats.elapsed
            timed_out = stats.timed_out
            if result.counterexample is not None:
                candidate = result.counterexample
                if self.verify:
                    verified = self._verify(candidate)
                    if verified:
                        counterexample = candidate
                else:
                    counterexample = candidate

        if counterexample is None:
            counterexample = self.nonunifying.build(conflict, path=path)
            if timed_out:
                counterexample = Counterexample(
                    conflict=counterexample.conflict,
                    unifying=False,
                    nonterminal=counterexample.nonterminal,
                    derivation1=counterexample.derivation1,
                    derivation2=counterexample.derivation2,
                    timed_out=True,
                )

        return FinderReport(
            conflict=conflict,
            counterexample=counterexample,
            unifying_time=time.monotonic() - started,
            timed_out=timed_out,
            stats=stats,
            verified=verified,
        )

    def explain_all(self) -> FinderSummary:
        """Explain every conflict; aggregates the Table 1 statistics."""
        summary = FinderSummary(grammar_name=self.grammar.name)
        for conflict in self.conflicts:
            report = self.explain(conflict)
            summary.reports.append(report)
            summary.num_conflicts += 1
            if report.counterexample.unifying:
                summary.num_unifying += 1
            elif report.timed_out:
                summary.num_timeout += 1
            else:
                summary.num_nonunifying += 1
                if report.stats is None:
                    summary.num_skipped_search += 1
            if not report.timed_out:
                summary.total_time += report.unifying_time
        return summary

    # ------------------------------------------------------------------ #

    def _verify(self, candidate: Counterexample) -> bool:
        """Independent validation of a unifying counterexample.

        Checks that both derivations yield the same sentential form and
        that the Earley oracle finds at least two derivations of it from
        the unifying nonterminal.
        """
        yield1 = candidate.example1_symbols()
        yield2 = candidate.example2_symbols()
        if yield1 != yield2:
            return False
        nonterminal = candidate.nonterminal
        assert nonterminal is not None
        try:
            return self._earley.is_ambiguous_form(
                nonterminal, yield1, step_budget=self.verify_step_budget
            )
        except DerivationBudgetExceeded:
            return False


def explain_conflicts(
    grammar: Grammar,
    time_limit: float = 5.0,
    cumulative_limit: float = 120.0,
    extended_search: bool = False,
) -> list[str]:
    """Convenience wrapper: formatted CUP-style reports for every conflict."""
    from repro.core.report import format_report

    finder = CounterexampleFinder(
        grammar,
        time_limit=time_limit,
        cumulative_limit=cumulative_limit,
        extended_search=extended_search,
    )
    summary = finder.explain_all()
    return [format_report(report) for report in summary.reports]
