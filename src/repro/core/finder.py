"""Top-level counterexample finder (paper §6 policy, fault-isolated).

For each conflict the finder walks a guarded pipeline:

1. compute the shortest lookahead-sensitive path to the conflict reduce
   item (needed both for the nonunifying construction and to restrict the
   unifying search's reverse transitions);
2. run the unifying search with a per-conflict time limit (default 5 s);
3. on success, optionally cross-check the counterexample with the
   independent Earley oracle (the sentential form must have >= 2 distinct
   derivations from the unifying nonterminal);
4. on failure or timeout, fall back to a nonunifying counterexample built
   from the path.

A cumulative budget (default 2 minutes) covers all unifying searches for
one grammar; once it is spent, remaining conflicts get nonunifying
counterexamples immediately, as in the paper's implementation.

Every stage runs inside :func:`repro.robust.degrade.run_guarded`, so a
stage failure — budget overrun, injected fault, or genuine bug — never
kills the run. Instead the conflict degrades down the three-rung ladder

    unifying → nonunifying → conflict stub

and the failure is recorded as a
:class:`~repro.robust.degrade.DegradedExplanation` on the report entry.
The *conflict stub* rung always succeeds: it reports the conflict state,
items, lookaheads, and whatever prefix was computed before the failure.
With ``retry_timed_out``, conflicts whose unifying search timed out are
re-searched afterwards with the leftover cumulative budget split among
them.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.walk import ConflictAmbiguity
from repro.automaton.conflicts import Conflict
from repro.automaton.ielr import ConflictProvenance
from repro.automaton.lalr import LALRAutomaton, build_lalr
from repro.core.counterexample import ConflictStub, Counterexample
from repro.core.lasg import (
    LASGEdge,
    LookaheadSensitiveGraph,
    path_prefix_symbols,
    path_states,
)
from repro.core.nonunifying import NonunifyingBuilder
from repro.core.search import SearchStats, UnifyingSearch
from repro.grammar import Grammar
from repro.parsing.earley import DerivationBudgetExceeded, EarleyParser
from repro.perf import metrics
from repro.robust.budget import Budget, CancellationToken
from repro.robust.degrade import (
    DegradedExplanation,
    Rung,
    Stage,
    degradation_from,
    run_guarded,
)
from repro.robust.errors import Cancelled
from repro.robust.faults import fire
from repro.robust.retry import NO_RETRY, RetryPolicy


@dataclass
class FinderReport:
    """Everything the finder knows about one conflict's explanation."""

    conflict: Conflict
    counterexample: Counterexample | None
    unifying_time: float
    timed_out: bool
    stats: SearchStats | None = None
    verified: bool | None = None
    #: The ladder rung the explanation landed on.
    rung: Rung = Rung.NONUNIFYING
    #: Present exactly when ``rung is Rung.STUB`` (``counterexample`` is
    #: then ``None``).
    stub: ConflictStub | None = None
    #: One entry per stage failure survived while explaining this
    #: conflict (fault injections, budget overruns, internal errors).
    degradations: list[DegradedExplanation] = field(default_factory=list)
    #: Whether a budget-escalating retry upgraded this report.
    retried: bool = False
    #: Provenance verdict (genuine LR(1) conflict vs LALR merge
    #: artifact), attached after the fact by
    #: :func:`repro.automaton.ielr.annotate_provenance`; ``None`` unless
    #: provenance analysis ran.
    provenance: ConflictProvenance | None = None
    #: Static ambiguity verdict from the SR pair walk, attached after
    #: the fact by :func:`repro.analysis.annotate_ambiguity`; ``None``
    #: unless ambiguity analysis ran.
    ambiguity: ConflictAmbiguity | None = None

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)


@dataclass
class FinderSummary:
    """Aggregate results for a grammar (the columns of Table 1)."""

    grammar_name: str
    num_conflicts: int = 0
    num_unifying: int = 0
    num_nonunifying: int = 0
    num_timeout: int = 0
    #: Conflicts answered nonunifying *without* running the unifying
    #: search because the cumulative budget was already spent — the
    #: parenthesised count in the paper's Table 1 (e.g. Java.2's "(983)").
    num_skipped_search: int = 0
    #: Conflicts that fell to the stub rung (no counterexample at all).
    num_stub: int = 0
    #: Conflicts with at least one recorded stage degradation.
    num_degraded: int = 0
    #: Timed-out conflicts re-searched by the retry pass, and how many of
    #: those retries found (and verified) a unifying counterexample.
    num_retried: int = 0
    num_retry_upgraded: int = 0
    degraded_by_stage: dict[str, int] = field(default_factory=dict)
    total_time: float = 0.0
    reports: list[FinderReport] = field(default_factory=list)

    @property
    def average_time(self) -> float:
        """Paper's "Average time": total over conflicts answered in time."""
        answered = self.num_unifying + self.num_nonunifying
        return self.total_time / answered if answered else float("nan")

    @property
    def complete(self) -> bool:
        """Every conflict has an entry at *some* ladder rung."""
        return all(
            report.counterexample is not None or report.stub is not None
            for report in self.reports
        )


def aggregate_reports(
    grammar_name: str,
    reports: list[FinderReport],
    retried: int = 0,
    upgraded: int = 0,
) -> FinderSummary:
    """Fold per-conflict reports into the Table 1 summary.

    Shared by the serial :meth:`CounterexampleFinder.explain_all` and the
    parallel merge in :mod:`repro.perf.parallel`, so both paths count
    rungs, degradations, and times identically.
    """
    summary = FinderSummary(grammar_name=grammar_name)
    summary.num_retried = retried
    summary.num_retry_upgraded = upgraded
    for report in reports:
        summary.reports.append(report)
        summary.num_conflicts += 1
        if report.degradations:
            summary.num_degraded += 1
            for degraded in report.degradations:
                stage = degraded.stage.value
                summary.degraded_by_stage[stage] = (
                    summary.degraded_by_stage.get(stage, 0) + 1
                )
        if report.rung is Rung.UNIFYING:
            summary.num_unifying += 1
        elif report.rung is Rung.STUB:
            summary.num_stub += 1
        elif report.timed_out:
            summary.num_timeout += 1
        else:
            summary.num_nonunifying += 1
            if report.stats is None:
                summary.num_skipped_search += 1
        if not report.timed_out:
            summary.total_time += report.unifying_time
    return summary


class CounterexampleFinder:
    """Finds an explanation for every conflict of a grammar — always."""

    def __init__(
        self,
        source: Grammar | LALRAutomaton,
        time_limit: float = 5.0,
        cumulative_limit: float = 120.0,
        extended_search: bool = False,
        verify: bool = True,
        max_configurations: int = 2_000_000,
        verify_step_budget: int | None = 1_000_000,
        retry_timed_out: bool | RetryPolicy = False,
        token: CancellationToken | None = None,
        stage_time_limit: float | None = None,
        retry_sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """
        Args:
            source: A grammar or a prebuilt automaton.
            time_limit: Per-conflict unifying-search budget in seconds
                (the paper uses 5 s); also bounds the LASG, nonunifying,
                and verification stages individually.
            cumulative_limit: Total unifying-search budget per grammar
                (the paper uses 2 minutes).
            extended_search: Do not restrict reverse transitions to the
                shortest lookahead-sensitive path (``-extendedsearch``).
            verify: Cross-check unifying counterexamples with the Earley
                oracle; unverifiable candidates are demoted to the
                nonunifying fallback.
            max_configurations: Hard cap per unifying search (also used as
                the node cap for the LASG and backward-walk stages).
            verify_step_budget: Step cap for the Earley verification pass;
                a candidate whose ambiguity cannot be confirmed within the
                budget is demoted like any other unverifiable one. Highly
                ambiguous cyclic grammars otherwise make the exhaustive
                derivation count blow up.
            retry_timed_out: After the main pass, re-search timed-out
                conflicts with the leftover cumulative budget split among
                them (budget escalation beyond ``time_limit``). ``True``
                selects one immediate retry round; passing a
                :class:`~repro.robust.retry.RetryPolicy` runs up to
                ``max_retries`` rounds with the policy's backoff between
                them (jitter is seeded, so runs stay deterministic).
            token: Cooperative cancellation; once cancelled, in-flight
                work stops and remaining conflicts get stub entries, so
                the summary stays complete.
            stage_time_limit: Wall-clock bound for the structural stages
                (LASG, nonunifying build, verification). Defaults to
                ``max(4 * time_limit, 10.0)``: bounded — a hung stage can
                no longer wedge the whole run — but generous, because the
                structural stages normally finish in milliseconds and
                shrinking the *search* budget to (near) zero is a
                legitimate "nonunifying only" mode that must not starve
                the stages it depends on.
        """
        if isinstance(source, LALRAutomaton):
            self.automaton = source
        else:
            self.automaton = build_lalr(source)
        self.grammar = self.automaton.grammar
        self.time_limit = time_limit
        self.cumulative_limit = cumulative_limit
        self.extended_search = extended_search
        self.verify = verify
        self.verify_step_budget = verify_step_budget
        self.max_configurations = max_configurations
        # Normalise the retry knob onto one RetryPolicy: the historical
        # ``True`` means exactly one immediate retry round.
        if isinstance(retry_timed_out, RetryPolicy):
            self.retry_policy = retry_timed_out
        elif retry_timed_out:
            self.retry_policy = RetryPolicy(
                max_attempts=2, base_delay=0.0, jitter=0.0
            )
        else:
            self.retry_policy = NO_RETRY
        self.retry_timed_out = self.retry_policy.max_retries > 0
        self._retry_sleep = retry_sleep
        self.token = token
        self.stage_time_limit = (
            stage_time_limit
            if stage_time_limit is not None
            else max(4 * time_limit, 10.0)
        )

        # One lookahead-sensitive graph per finder: its skeleton memo and
        # bounded successor LRU are shared across this finder's conflicts
        # (including the nonunifying builder's path computations) and are
        # released with the finder — nothing outlives it.
        self.graph = LookaheadSensitiveGraph(self.automaton)
        self.nonunifying = NonunifyingBuilder(self.automaton, graph=self.graph)
        self._earley = EarleyParser(self.grammar)
        self._unifying_budget_spent = 0.0

    # ------------------------------------------------------------------ #

    @property
    def conflicts(self) -> list[Conflict]:
        return self.automaton.conflicts

    def _stage_budget(self, stage: str) -> Budget:
        """A fresh budget for one structural stage."""
        return Budget(
            time_limit=self.stage_time_limit,
            max_nodes=self.max_configurations,
            token=self.token,
            stage=stage,
        )

    def explain(self, conflict: Conflict) -> FinderReport:
        """Produce an explanation for one conflict — at some ladder rung.

        Never raises except for :class:`~repro.robust.errors.Cancelled`
        (propagated so :meth:`explain_all` can finish the report with
        stubs) and ``KeyboardInterrupt``/``SystemExit``.
        """
        with metrics.span("explain"):
            return self._explain(conflict)

    def _explain(self, conflict: Conflict) -> FinderReport:
        started = time.monotonic()
        degradations: list[DegradedExplanation] = []

        # Rung 0 prerequisite: the shortest lookahead-sensitive path.
        path: list[LASGEdge] | None = None
        with metrics.span("lasg"):
            outcome = run_guarded(
                Stage.LASG,
                self.graph.shortest_path,
                conflict,
                budget=self._stage_budget("lasg"),
            )
        if outcome.ok:
            path = outcome.value
        else:
            assert outcome.degraded is not None
            degradations.append(outcome.degraded)

        stats: SearchStats | None = None
        timed_out = False
        counterexample: Counterexample | None = None
        verified: bool | None = None

        # Rung 1: the unifying search (skipped entirely once the
        # cumulative budget is spent, as in the paper).
        budget_left = self.cumulative_limit - self._unifying_budget_spent
        if path is not None and budget_left > 0:
            result, degraded = self._run_search(
                conflict, path, min(self.time_limit, budget_left)
            )
            if degraded is not None:
                degradations.append(degraded)
            if result is not None:
                stats = result.stats
                self._unifying_budget_spent += stats.elapsed
                timed_out = stats.timed_out
                if result.counterexample is not None:
                    candidate = result.counterexample
                    if self.verify:
                        with metrics.span("verify"):
                            verify_outcome = run_guarded(
                                Stage.VERIFY, self._verify, candidate
                            )
                        if verify_outcome.ok:
                            verified = verify_outcome.value
                        else:
                            assert verify_outcome.degraded is not None
                            degradations.append(verify_outcome.degraded)
                        if verified:
                            counterexample = candidate
                    else:
                        counterexample = candidate

        # Rung 2: the nonunifying fallback.
        if counterexample is None and path is not None:
            with metrics.span("nonunifying"):
                fallback = run_guarded(
                    Stage.NONUNIFYING,
                    self.nonunifying.build,
                    conflict,
                    path=path,
                    budget=self._stage_budget("nonunifying"),
                )
            if fallback.ok:
                counterexample = fallback.value
                if timed_out:
                    counterexample = Counterexample(
                        conflict=counterexample.conflict,
                        unifying=False,
                        nonterminal=counterexample.nonterminal,
                        derivation1=counterexample.derivation1,
                        derivation2=counterexample.derivation2,
                        timed_out=True,
                    )
            else:
                assert fallback.degraded is not None
                degradations.append(fallback.degraded)

        # Rung 3: the conflict stub — always succeeds.
        stub: ConflictStub | None = None
        if counterexample is None:
            stub = self._stub(conflict, path)
            rung = Rung.STUB
        elif counterexample.unifying:
            rung = Rung.UNIFYING
        else:
            rung = Rung.NONUNIFYING

        return FinderReport(
            conflict=conflict,
            counterexample=counterexample,
            unifying_time=time.monotonic() - started,
            timed_out=timed_out,
            stats=stats,
            verified=verified,
            rung=rung,
            stub=stub,
            degradations=degradations,
        )

    def _run_search(
        self, conflict: Conflict, path: list[LASGEdge], time_limit: float
    ):
        """Rung-1 search under guard; returns ``(result, degradation)``."""
        allowed = None if self.extended_search else path_states(path)
        search = UnifyingSearch(
            self.automaton,
            conflict,
            allowed_prepend_states=allowed,
            budget=Budget(
                time_limit=time_limit,
                max_nodes=self.max_configurations,
                token=self.token,
                stage="search",
            ),
        )
        with metrics.span("search"):
            outcome = run_guarded(Stage.SEARCH, search.run)
        return outcome.value, outcome.degraded

    def _stub(
        self, conflict: Conflict, path: list[LASGEdge] | None
    ) -> ConflictStub:
        lookaheads = self.automaton.lookaheads.get(
            (conflict.state_id, conflict.reduce_item), frozenset()
        )
        return ConflictStub(
            conflict=conflict,
            lookaheads=lookaheads,
            prefix=path_prefix_symbols(path) if path is not None else None,
        )

    # ------------------------------------------------------------------ #

    def explain_all(self) -> FinderSummary:
        """Explain every conflict; aggregates the Table 1 statistics.

        Completes even under cancellation: conflicts not reached before
        the token fired are reported as stubs with a recorded
        degradation, so the summary always covers every conflict.
        """
        conflicts = self.conflicts
        reports: list[FinderReport] = []
        try:
            for conflict in conflicts:
                reports.append(self.explain(conflict))
        except Cancelled as error:
            for conflict in conflicts[len(reports):]:
                reports.append(self._cancelled_report(conflict, error))

        if self.retry_timed_out and not (self.token and self.token.cancelled):
            retried, upgraded = self._retry_pass(reports)
        else:
            retried = upgraded = 0

        return aggregate_reports(
            self.grammar.name, reports, retried=retried, upgraded=upgraded
        )

    def _cancelled_report(
        self, conflict: Conflict, error: Cancelled
    ) -> FinderReport:
        try:
            stage = Stage(error.stage) if error.stage else Stage.LASG
        except ValueError:
            stage = Stage.LASG
        return FinderReport(
            conflict=conflict,
            counterexample=None,
            unifying_time=0.0,
            timed_out=False,
            rung=Rung.STUB,
            stub=self._stub(conflict, None),
            degradations=[degradation_from(stage, error)],
        )

    def _retry_pass(self, reports: list[FinderReport]) -> tuple[int, int]:
        """Re-search timed-out conflicts under the finder's retry policy.

        Each round splits the leftover cumulative budget evenly among the
        still-timed-out conflicts, escalating each retry's time limit
        beyond the original per-conflict cap when plenty is left. Rounds
        continue while the policy allows and candidates remain; the
        policy's (seeded-jitter) backoff separates rounds. A retry that
        finds (and verifies) a unifying counterexample upgrades the
        report entry in place.
        """
        retried = upgraded = 0
        rng = random.Random(0)
        for attempt in range(1, self.retry_policy.max_attempts):
            if attempt > 1:
                pause = self.retry_policy.delay(attempt - 1, rng)
                if pause > 0.0:
                    self._retry_sleep(pause)
            round_retried, round_upgraded, candidates_left = self._retry_round(
                reports
            )
            retried += round_retried
            upgraded += round_upgraded
            if not candidates_left:
                break
        return retried, upgraded

    def _retry_round(
        self, reports: list[FinderReport]
    ) -> tuple[int, int, bool]:
        """One retry round; returns ``(retried, upgraded, more_left)``."""
        leftover = self.cumulative_limit - self._unifying_budget_spent
        candidates = [
            index
            for index, report in enumerate(reports)
            if report.timed_out and report.rung is not Rung.UNIFYING
        ]
        if leftover <= 0 or not candidates:
            return 0, 0, False
        per_conflict = leftover / len(candidates)
        retried = upgraded = 0
        for index in candidates:
            if self.cumulative_limit - self._unifying_budget_spent <= 0:
                break
            report = reports[index]
            path_outcome = run_guarded(
                Stage.LASG,
                self.graph.shortest_path,
                report.conflict,
                budget=self._stage_budget("lasg"),
            )
            if not path_outcome.ok:
                continue
            retried += 1
            result, degraded = self._run_search(
                report.conflict, path_outcome.value, per_conflict
            )
            if degraded is not None:
                report.degradations.append(degraded)
                continue
            if result is None or result.counterexample is None:
                if result is not None:
                    self._unifying_budget_spent += result.stats.elapsed
                continue
            self._unifying_budget_spent += result.stats.elapsed
            candidate = result.counterexample
            verified: bool | None = None
            if self.verify:
                verify_outcome = run_guarded(Stage.VERIFY, self._verify, candidate)
                if verify_outcome.ok:
                    verified = verify_outcome.value
                else:
                    assert verify_outcome.degraded is not None
                    report.degradations.append(verify_outcome.degraded)
                if not verified:
                    continue
            reports[index] = FinderReport(
                conflict=report.conflict,
                counterexample=candidate,
                unifying_time=report.unifying_time + result.stats.elapsed,
                timed_out=False,
                stats=result.stats,
                verified=verified,
                rung=Rung.UNIFYING,
                degradations=report.degradations,
                retried=True,
            )
            upgraded += 1
        more_left = (
            self.cumulative_limit - self._unifying_budget_spent > 0
            and any(
                report.timed_out and report.rung is not Rung.UNIFYING
                for report in reports
            )
        )
        return retried, upgraded, more_left

    # ------------------------------------------------------------------ #

    def _verify(self, candidate: Counterexample) -> bool:
        """Independent validation of a unifying counterexample.

        Checks that both derivations yield the same sentential form and
        that the Earley oracle finds at least two derivations of it from
        the unifying nonterminal, under the per-conflict time limit.
        """
        fire("verify")
        yield1 = candidate.example1_symbols()
        yield2 = candidate.example2_symbols()
        if yield1 != yield2:
            return False
        nonterminal = candidate.nonterminal
        assert nonterminal is not None
        try:
            return self._earley.is_ambiguous_form(
                nonterminal,
                yield1,
                step_budget=self.verify_step_budget,
                budget=Budget(
                    time_limit=self.stage_time_limit,
                    token=self.token,
                    stage="verify",
                ),
            )
        except DerivationBudgetExceeded:
            return False


def explain_conflicts(
    grammar: Grammar,
    time_limit: float = 5.0,
    cumulative_limit: float = 120.0,
    extended_search: bool = False,
) -> list[str]:
    """Convenience wrapper: formatted CUP-style reports for every conflict."""
    from repro.core.report import safe_format_report

    finder = CounterexampleFinder(
        grammar,
        time_limit=time_limit,
        cumulative_limit=cumulative_limit,
        extended_search=extended_search,
    )
    summary = finder.explain_all()
    return [safe_format_report(report) for report in summary.reports]
