"""Counterexample result objects."""

from __future__ import annotations

from dataclasses import dataclass

from repro.automaton.conflicts import Conflict
from repro.core.derivation import DOT, Derivation, format_symbols
from repro.grammar import Nonterminal, Symbol, Terminal


@dataclass(frozen=True)
class Counterexample:
    """A counterexample explaining one parsing conflict.

    Attributes:
        conflict: The conflict being explained.
        unifying: ``True`` when both derivations derive the *same*
            sentential form from the same nonterminal — a proof of
            ambiguity. ``False`` for a nonunifying counterexample: the
            two derivations share a prefix up to the conflict point but
            may diverge after it.
        nonterminal: The unifying nonterminal (for unifying examples) or
            the derivation root (for nonunifying ones).
        derivation1: The derivation using the conflict's *reduce* item.
        derivation2: The derivation using the conflict's shift item (or
            second reduce item for reduce/reduce conflicts).
        timed_out: Whether the unifying search timed out before this
            (necessarily nonunifying) counterexample was produced.
        search_cost: Internal search cost, recorded for benchmarks.
    """

    conflict: Conflict
    unifying: bool
    nonterminal: Nonterminal | None
    derivation1: Derivation
    derivation2: Derivation
    timed_out: bool = False
    search_cost: float = 0.0

    # ------------------------------------------------------------------ #

    def example1(self) -> tuple[object, ...]:
        """Yield of the reduce-item derivation (symbols and the dot marker)."""
        return self.derivation1.yield_symbols()

    def example2(self) -> tuple[object, ...]:
        """Yield of the other derivation."""
        return self.derivation2.yield_symbols()

    def example1_symbols(self) -> tuple[Symbol, ...]:
        """Yield of the reduce-item derivation without the dot marker."""
        return tuple(s for s in self.example1() if s is not DOT)  # type: ignore[misc]

    def example2_symbols(self) -> tuple[Symbol, ...]:
        return tuple(s for s in self.example2() if s is not DOT)  # type: ignore[misc]

    def prefix(self) -> tuple[Symbol, ...]:
        """The common prefix up to the conflict point."""
        result: list[Symbol] = []
        for element in self.example1():
            if element is DOT:
                break
            result.append(element)  # type: ignore[arg-type]
        return tuple(result)

    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """Multi-line, human-oriented description (see also repro.core.report)."""
        lines: list[str] = []
        if self.unifying:
            lines.append(f"Ambiguity detected for nonterminal {self.nonterminal}")
            lines.append(f"Example: {format_symbols(self.example1())}")
            lines.append("Derivation using reduction:")
            lines.append(f"  {self.derivation1.render()}")
            lines.append("Derivation using shift:" if self.conflict.is_shift_reduce
                         else "Derivation using second reduction:")
            lines.append(f"  {self.derivation2.render()}")
        else:
            lines.append(f"Example using reduction: {format_symbols(self.example1())}")
            lines.append(f"  derivation: {self.derivation1.render()}")
            second = "shift" if self.conflict.is_shift_reduce else "second reduction"
            lines.append(f"Example using {second}: {format_symbols(self.example2())}")
            lines.append(f"  derivation: {self.derivation2.render()}")
        return "\n".join(lines)

    def __str__(self) -> str:
        kind = "unifying" if self.unifying else "nonunifying"
        return f"<{kind} counterexample: {format_symbols(self.example1())}>"


@dataclass(frozen=True)
class ConflictStub:
    """The last rung of the degradation ladder: no counterexample, but
    everything the parser tables alone can say about the conflict.

    Emitted when both the unifying search and the nonunifying
    construction failed (fault, budget overrun, or internal
    inconsistency), so the report still explains *where* the conflict
    lives: the state, both items, the lookahead sets of the reduce item,
    and the shortest lookahead-sensitive prefix when one was computed
    before the failure.
    """

    conflict: Conflict
    #: Precise lookaheads of the reduce item in the conflict state.
    lookaheads: frozenset[Terminal] = frozenset()
    #: Transition symbols of the shortest lookahead-sensitive path, when
    #: the LASG stage completed before a later stage failed.
    prefix: tuple[Symbol, ...] | None = None

    def describe(self) -> str:
        conflict = self.conflict
        lines = [
            f"Conflict stub for state #{conflict.state_id} "
            f"under symbol {conflict.terminal}",
            f"  reduce item: {conflict.reduce_item}",
            f"  other item:  {conflict.other_item}",
        ]
        if self.lookaheads:
            las = ", ".join(sorted(str(t) for t in self.lookaheads))
            lines.append(f"  reduce-item lookaheads: {{{las}}}")
        if self.prefix is not None:
            rendered = " ".join(str(s) for s in self.prefix) or "(empty)"
            lines.append(f"  shortest conflict prefix: {rendered}")
        else:
            lines.append("  shortest conflict prefix: unavailable")
        return "\n".join(lines)
