"""Counterexample result objects."""

from __future__ import annotations

from dataclasses import dataclass

from repro.automaton.conflicts import Conflict
from repro.core.derivation import DOT, Derivation, format_symbols
from repro.grammar import Nonterminal, Symbol


@dataclass(frozen=True)
class Counterexample:
    """A counterexample explaining one parsing conflict.

    Attributes:
        conflict: The conflict being explained.
        unifying: ``True`` when both derivations derive the *same*
            sentential form from the same nonterminal — a proof of
            ambiguity. ``False`` for a nonunifying counterexample: the
            two derivations share a prefix up to the conflict point but
            may diverge after it.
        nonterminal: The unifying nonterminal (for unifying examples) or
            the derivation root (for nonunifying ones).
        derivation1: The derivation using the conflict's *reduce* item.
        derivation2: The derivation using the conflict's shift item (or
            second reduce item for reduce/reduce conflicts).
        timed_out: Whether the unifying search timed out before this
            (necessarily nonunifying) counterexample was produced.
        search_cost: Internal search cost, recorded for benchmarks.
    """

    conflict: Conflict
    unifying: bool
    nonterminal: Nonterminal | None
    derivation1: Derivation
    derivation2: Derivation
    timed_out: bool = False
    search_cost: float = 0.0

    # ------------------------------------------------------------------ #

    def example1(self) -> tuple[object, ...]:
        """Yield of the reduce-item derivation (symbols and the dot marker)."""
        return self.derivation1.yield_symbols()

    def example2(self) -> tuple[object, ...]:
        """Yield of the other derivation."""
        return self.derivation2.yield_symbols()

    def example1_symbols(self) -> tuple[Symbol, ...]:
        """Yield of the reduce-item derivation without the dot marker."""
        return tuple(s for s in self.example1() if s is not DOT)  # type: ignore[misc]

    def example2_symbols(self) -> tuple[Symbol, ...]:
        return tuple(s for s in self.example2() if s is not DOT)  # type: ignore[misc]

    def prefix(self) -> tuple[Symbol, ...]:
        """The common prefix up to the conflict point."""
        result: list[Symbol] = []
        for element in self.example1():
            if element is DOT:
                break
            result.append(element)  # type: ignore[arg-type]
        return tuple(result)

    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """Multi-line, human-oriented description (see also repro.core.report)."""
        lines: list[str] = []
        if self.unifying:
            lines.append(f"Ambiguity detected for nonterminal {self.nonterminal}")
            lines.append(f"Example: {format_symbols(self.example1())}")
            lines.append("Derivation using reduction:")
            lines.append(f"  {self.derivation1.render()}")
            lines.append("Derivation using shift:" if self.conflict.is_shift_reduce
                         else "Derivation using second reduction:")
            lines.append(f"  {self.derivation2.render()}")
        else:
            lines.append(f"Example using reduction: {format_symbols(self.example1())}")
            lines.append(f"  derivation: {self.derivation1.render()}")
            second = "shift" if self.conflict.is_shift_reduce else "second reduction"
            lines.append(f"Example using {second}: {format_symbols(self.example2())}")
            lines.append(f"  derivation: {self.derivation2.render()}")
        return "\n".join(lines)

    def __str__(self) -> str:
        kind = "unifying" if self.unifying else "nonunifying"
        return f"<{kind} counterexample: {format_symbols(self.example1())}>"
