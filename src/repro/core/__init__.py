"""The paper's contribution: counterexamples for parsing conflicts."""

from repro.core.configurations import (
    Configuration,
    SuccessorGenerator,
    initial_configuration,
)
from repro.core.counterexample import ConflictStub, Counterexample
from repro.core.derivation import DOT, Derivation, dleaf, dnode, format_symbols
from repro.core.finder import (
    CounterexampleFinder,
    FinderReport,
    FinderSummary,
    explain_conflicts,
)
from repro.core.lasg import (
    LASGEdge,
    LASGVertex,
    LookaheadSensitiveGraph,
    path_prefix_symbols,
    path_states,
)
from repro.core.nonunifying import CompletionError, NonunifyingBuilder
from repro.core.product import ProductAction, ProductParser
from repro.core.report import (
    format_report,
    safe_format_report,
    summary_to_json,
)
from repro.core.search import SearchResult, SearchStats, UnifyingSearch

__all__ = [
    "CompletionError",
    "Configuration",
    "ConflictStub",
    "Counterexample",
    "CounterexampleFinder",
    "DOT",
    "Derivation",
    "FinderReport",
    "FinderSummary",
    "LASGEdge",
    "LASGVertex",
    "LookaheadSensitiveGraph",
    "NonunifyingBuilder",
    "ProductAction",
    "ProductParser",
    "SearchResult",
    "SearchStats",
    "SuccessorGenerator",
    "UnifyingSearch",
    "dleaf",
    "dnode",
    "explain_conflicts",
    "format_report",
    "format_symbols",
    "initial_configuration",
    "path_prefix_symbols",
    "path_states",
    "safe_format_report",
    "summary_to_json",
]
