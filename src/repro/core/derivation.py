"""Derivation trees for counterexamples.

A :class:`Derivation` is like a parse tree, except that

* leaves may be *nonterminals* — counterexamples keep symbols abstract
  whenever the concrete expansion is irrelevant to the conflict (§3.2);
* a special **dot marker** (:data:`DOT`) records the conflict point in the
  yield, rendered as ``•``.

The final counterexample string is the yield of a derivation; for a
unifying counterexample the two derivations have identical yields, and for
a nonunifying counterexample the yields share a prefix up to the dot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.grammar import END_OF_INPUT, Production, Symbol
from repro.parsing.tree import ParseTree, leaf as tree_leaf, node as tree_node


@dataclass(frozen=True)
class Derivation:
    """A derivation node.

    ``children is None`` marks an *unexpanded* leaf: the symbol stands for
    itself (any derivation of it would do). Otherwise the node expands
    *symbol* by *production* into *children*, which may include the
    :data:`DOT` marker in addition to one sub-derivation per right-hand
    side symbol.

    Hashes are cached bottom-up at construction (deep derivations arise
    during long searches; hashing must not recurse).
    """

    symbol: Symbol | None
    children: tuple["Derivation", ...] | None = None
    production: Production | None = None

    def __post_init__(self) -> None:
        child_hashes = (
            None
            if self.children is None
            else tuple(child._hash for child in self.children)  # type: ignore[attr-defined]
        )
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    self.symbol,
                    child_hashes,
                    None if self.production is None else self.production.index,
                )
            ),
        )

    @property
    def is_dot(self) -> bool:
        return self.symbol is None

    @property
    def is_leaf(self) -> bool:
        return self.children is None and self.symbol is not None

    def yield_symbols(self, keep_dot: bool = True) -> tuple[object, ...]:
        """The leaf sequence; the dot appears as the :data:`DOT` object."""
        result: list[object] = []
        for element in self._walk_leaves():
            if element.is_dot:
                if keep_dot:
                    result.append(DOT)
            else:
                result.append(element.symbol)
        return tuple(result)

    def _walk_leaves(self) -> Iterator["Derivation"]:
        stack: list[Derivation] = [self]
        while stack:
            node = stack.pop()
            if node.children is None:
                yield node
            else:
                stack.extend(reversed(node.children))

    # ------------------------------------------------------------------ #

    def to_parse_tree(self) -> ParseTree:
        """Convert to a :class:`~repro.parsing.tree.ParseTree`, dropping the dot."""
        if self.is_dot:
            raise ValueError("the dot marker alone has no parse tree")
        if self.children is None:
            assert self.symbol is not None
            return tree_leaf(self.symbol)
        assert self.production is not None
        children = [
            child.to_parse_tree() for child in self.children if not child.is_dot
        ]
        return tree_node(self.production, children)

    def size(self) -> int:
        """Number of non-dot nodes (iterative — derivations can be deep)."""
        count = 0
        stack: list[Derivation] = [self]
        while stack:
            node = stack.pop()
            if node.is_dot:
                continue
            count += 1
            if node.children is not None:
                stack.extend(node.children)
        return count

    # ------------------------------------------------------------------ #
    # Rendering (paper Figure 11 style)

    def render(self) -> str:
        """Nested bracket rendering: ``expr ::= [expr ::= [expr • + expr] + expr]``."""
        if self.is_dot:
            return "•"
        if self.children is None:
            return str(self.symbol)
        inner = " ".join(child.render() for child in self.children)
        return f"{self.symbol} ::= [{inner}]"

    def __str__(self) -> str:
        return self.render()

    def __reduce__(self) -> tuple:
        # Rebuild through the constructor: the cached ``_hash`` embeds
        # per-process-randomized string hashes and must be recomputed on
        # the receiving side, and the :data:`DOT` sentinel is compared by
        # identity so it must unpickle to the module singleton.
        if self.symbol is None and self.children is None:
            return (_restore_dot, ())
        return (Derivation, (self.symbol, self.children, self.production))


# Replace the dataclass-generated recursive hash with the cached one.
Derivation.__hash__ = lambda self: self._hash  # type: ignore[method-assign, attr-defined]

#: The conflict-point marker.
DOT = Derivation(None)


def _restore_dot() -> Derivation:
    """Unpickling hook returning the :data:`DOT` singleton."""
    return DOT


def dleaf(symbol: Symbol) -> Derivation:
    """An unexpanded leaf derivation."""
    return Derivation(symbol)


def dnode(production: Production, children: Sequence[Derivation]) -> Derivation:
    """An expansion node applying *production*.

    *children* must contain exactly one non-dot entry per right-hand-side
    symbol, in order, with the dot marker allowed anywhere.
    """
    real = [child for child in children if not child.is_dot]
    if len(real) != len(production.rhs):
        raise ValueError(
            f"production {production} expects {len(production.rhs)} children, "
            f"got {len(real)}"
        )
    for child, expected in zip(real, production.rhs):
        if child.symbol != expected:
            raise ValueError(
                f"child {child.symbol} does not match {expected} in {production}"
            )
    return Derivation(production.lhs, tuple(children), production)


def format_symbols(elements: Sequence[object], hide_eof: bool = True) -> str:
    """Render a yield (symbols and the dot marker) as one line."""
    parts: list[str] = []
    for element in elements:
        if element is DOT:
            parts.append("•")
        elif isinstance(element, Derivation):
            parts.append("•" if element.is_dot else str(element.symbol))
        else:
            if hide_eof and element == END_OF_INPUT:
                continue
            parts.append(str(element))
    return " ".join(parts)
