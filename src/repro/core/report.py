"""CUP-style conflict reports (paper Figure 11)."""

from __future__ import annotations

from repro.core.derivation import format_symbols
from repro.core.finder import FinderReport


def format_report(report: FinderReport) -> str:
    """Format one conflict's explanation as in the paper's Figure 11.

    The first lines (the conflict itself) mirror CUP's original message;
    the rest is the counterexample. Example::

        Warning : *** Shift/Reduce conflict found in state #13
          between reduction on expr ::= expr + expr •
          and shift on expr ::= expr • + expr
          under symbol +
        Ambiguity detected for nonterminal expr
        Example: expr + expr • + expr
        Derivation using reduction:
          expr ::= [expr ::= [expr + expr •] + expr]
        Derivation using shift:
          expr ::= [expr + expr ::= [expr • + expr]]
    """
    conflict = report.conflict
    example = report.counterexample
    lines = [f"Warning : {conflict.describe()}"]

    second_label = "shift" if conflict.is_shift_reduce else "second reduction"
    if example.unifying:
        lines.append(f"Ambiguity detected for nonterminal {example.nonterminal}")
        lines.append(f"Example: {format_symbols(example.example1())}")
        lines.append("Derivation using reduction:")
        lines.append(f"  {example.derivation1.render()}")
        lines.append(f"Derivation using {second_label}:")
        lines.append(f"  {example.derivation2.render()}")
    else:
        if example.timed_out:
            lines.append(
                "No unifying counterexample found within the time limit; "
                "reporting a nonunifying counterexample"
            )
        lines.append(f"Example using reduction: {format_symbols(example.example1())}")
        lines.append("Derivation using reduction:")
        lines.append(f"  {example.derivation1.render()}")
        lines.append(
            f"Example using {second_label}: {format_symbols(example.example2())}"
        )
        lines.append(f"Derivation using {second_label}:")
        lines.append(f"  {example.derivation2.render()}")
    return "\n".join(lines)
