"""CUP-style conflict reports (paper Figure 11) and the robust report.

:func:`format_report` renders one conflict's explanation; it is itself a
guarded pipeline stage (injection point ``render``), and
:func:`safe_format_report` is the boundary the CLI uses: a rendering
failure degrades to a stub-style text block and is recorded on the
report entry instead of crashing the run.

:func:`summary_to_json` is the machine-readable per-conflict degradation
report behind ``--robust-report``.
"""

from __future__ import annotations

from typing import Any

from repro.core.derivation import format_symbols
from repro.core.finder import FinderReport, FinderSummary
from repro.robust.degrade import Stage, run_guarded
from repro.robust.faults import fire


def format_report(report: FinderReport) -> str:
    """Format one conflict's explanation as in the paper's Figure 11.

    The first lines (the conflict itself) mirror CUP's original message;
    the rest is the counterexample. Example::

        Warning : *** Shift/Reduce conflict found in state #13
          between reduction on expr ::= expr + expr •
          and shift on expr ::= expr • + expr
          under symbol +
        Ambiguity detected for nonterminal expr
        Example: expr + expr • + expr
        Derivation using reduction:
          expr ::= [expr ::= [expr + expr •] + expr]
        Derivation using shift:
          expr ::= [expr + expr ::= [expr • + expr]]

    Stub-rung entries (no counterexample at any rung) render the conflict
    plus the stub's state/item/lookahead/prefix block and the recorded
    degradation reasons.
    """
    fire("render")
    conflict = report.conflict
    example = report.counterexample
    lines = [f"Warning : {conflict.describe()}"]
    if report.provenance is not None:
        lines.append(f"Provenance: {report.provenance.describe()}")
    if report.ambiguity is not None:
        lines.append(f"Ambiguity : {report.ambiguity.describe()}")

    if example is None:
        if report.stub is not None:
            lines.append(report.stub.describe())
        else:
            lines.append("No explanation available for this conflict")
        for degraded in report.degradations:
            lines.append(f"Degraded: {degraded.describe()}")
        return "\n".join(lines)

    second_label = "shift" if conflict.is_shift_reduce else "second reduction"
    if example.unifying:
        lines.append(f"Ambiguity detected for nonterminal {example.nonterminal}")
        lines.append(f"Example: {format_symbols(example.example1())}")
        lines.append("Derivation using reduction:")
        lines.append(f"  {example.derivation1.render()}")
        lines.append(f"Derivation using {second_label}:")
        lines.append(f"  {example.derivation2.render()}")
    else:
        if example.timed_out:
            lines.append(
                "No unifying counterexample found within the time limit; "
                "reporting a nonunifying counterexample"
            )
        lines.append(f"Example using reduction: {format_symbols(example.example1())}")
        lines.append("Derivation using reduction:")
        lines.append(f"  {example.derivation1.render()}")
        lines.append(
            f"Example using {second_label}: {format_symbols(example.example2())}"
        )
        lines.append(f"Derivation using {second_label}:")
        lines.append(f"  {example.derivation2.render()}")
    return "\n".join(lines)


def safe_format_report(report: FinderReport) -> str:
    """Render *report*; degrade (never raise) on rendering failure.

    A failure in the render stage — the last of the five guarded pipeline
    stages — appends a :class:`DegradedExplanation` to the report entry
    and falls back to a minimal conflict description, so a formatting bug
    or injected fault cannot take down a run that already survived the
    earlier stages.
    """
    outcome = run_guarded(Stage.RENDER, format_report, report)
    if outcome.ok:
        return outcome.value
    assert outcome.degraded is not None
    report.degradations.append(outcome.degraded)
    lines = [
        f"Warning : {report.conflict.describe()}",
        f"Degraded: {outcome.degraded.describe()}",
        "Report rendering failed; see the robust report for details",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# The machine-readable robust report (``--robust-report``)


def report_to_json(report: FinderReport) -> dict[str, Any]:
    """One conflict's entry of the robust report."""
    conflict = report.conflict
    entry: dict[str, Any] = {
        "state": conflict.state_id,
        "terminal": str(conflict.terminal),
        "kind": conflict.kind.value,
        "rung": report.rung.value,
        "timed_out": report.timed_out,
        "verified": report.verified,
        "retried": report.retried,
        "degradations": [d.to_json() for d in report.degradations],
    }
    if report.provenance is not None:
        entry["provenance"] = {
            "verdict": report.provenance.verdict.value,
            "split_states": list(report.provenance.split_states),
            "detail": report.provenance.detail,
        }
    if report.ambiguity is not None:
        entry["ambiguity"] = {
            "verdict": report.ambiguity.verdict.value,
            "witness": (
                [str(t) for t in report.ambiguity.witness]
                if report.ambiguity.witness is not None
                else None
            ),
            "detail": report.ambiguity.detail,
            "nodes": report.ambiguity.nodes,
        }
    if report.stub is not None:
        entry["stub"] = {
            "reduce_item": str(conflict.reduce_item),
            "other_item": str(conflict.other_item),
            "lookaheads": sorted(str(t) for t in report.stub.lookaheads),
            "prefix": (
                [str(s) for s in report.stub.prefix]
                if report.stub.prefix is not None
                else None
            ),
        }
    return entry


def summary_to_json(summary: FinderSummary) -> dict[str, Any]:
    """The full robust report: per-conflict rung/degradations + totals."""
    # Recount degradations from the report entries rather than echoing
    # the summary tally: render-stage failures are recorded *after*
    # explain_all() aggregated its counters.
    degraded_by_stage: dict[str, int] = {}
    for report in summary.reports:
        for degraded in report.degradations:
            stage = degraded.stage.value
            degraded_by_stage[stage] = degraded_by_stage.get(stage, 0) + 1
    return {
        "grammar": summary.grammar_name,
        "complete": summary.complete,
        "conflicts": summary.num_conflicts,
        "unifying": summary.num_unifying,
        "nonunifying": summary.num_nonunifying,
        "timeouts": summary.num_timeout,
        "skipped_searches": summary.num_skipped_search,
        "stubs": summary.num_stub,
        "degraded": sum(1 for report in summary.reports if report.degradations),
        "retried": summary.num_retried,
        "retry_upgraded": summary.num_retry_upgraded,
        "degraded_by_stage": degraded_by_stage,
        "reports": [report_to_json(report) for report in summary.reports],
    }


__all__ = [
    "format_report",
    "report_to_json",
    "safe_format_report",
    "summary_to_json",
]
