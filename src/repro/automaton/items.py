"""LR items: a production plus a dot position.

An :class:`Item` is the unit of LR automaton construction and of the
paper's counterexample search, which walks item-to-item edges (transitions
and production steps) both forward and backward.
"""

from __future__ import annotations

from typing import Iterator

from repro.grammar import Production, Symbol


class Item:
    """An LR(0) item ``A -> X1 ... Xk . X(k+1) ... Xn``.

    A plain class rather than a dataclass: items are hashed heavily inside
    the counterexample search, so the hash is precomputed. Equality is
    ``(production index, dot)`` — items are only ever compared within one
    grammar, where production indices are unique.
    """

    __slots__ = ("production", "dot", "_hash", "_advanced", "_retreated")

    def __init__(self, production: Production, dot: int) -> None:
        if not 0 <= dot <= len(production.rhs):
            raise ValueError(f"dot position {dot} out of range for {production}")
        self.production = production
        self.dot = dot
        self._hash = hash((production.index, dot))
        self._advanced: "Item | None" = None
        self._retreated: "Item | None" = None

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Item)
            and self.dot == other.dot
            and self.production.index == other.production.index
        )

    # ------------------------------------------------------------------ #

    @property
    def at_end(self) -> bool:
        """Whether this is a reduce item (dot at the end of the production)."""
        return self.dot == len(self.production.rhs)

    @property
    def at_start(self) -> bool:
        """Whether the dot is at position 0 (fresh production step)."""
        return self.dot == 0

    @property
    def next_symbol(self) -> Symbol | None:
        """The symbol immediately after the dot, or ``None`` for reduce items."""
        if self.at_end:
            return None
        return self.production.rhs[self.dot]

    @property
    def previous_symbol(self) -> Symbol | None:
        """The symbol immediately before the dot, or ``None`` at position 0."""
        if self.dot == 0:
            return None
        return self.production.rhs[self.dot - 1]

    @property
    def lhs(self) -> Symbol:
        return self.production.lhs

    @property
    def rhs(self) -> tuple[Symbol, ...]:
        return self.production.rhs

    def advance(self) -> "Item":
        """The item with the dot moved one symbol to the right.

        Cached per instance: the successor generators advance the same
        item objects millions of times, and reusing one result object
        avoids both the allocation and re-hashing.
        """
        advanced = self._advanced
        if advanced is None:
            if self.at_end:
                raise ValueError(f"cannot advance reduce item {self}")
            advanced = self._advanced = Item(self.production, self.dot + 1)
        return advanced

    def retreat(self) -> "Item":
        """The item with the dot moved one symbol to the left (cached)."""
        retreated = self._retreated
        if retreated is None:
            if self.dot == 0:
                raise ValueError(f"cannot retreat item {self}")
            retreated = self._retreated = Item(self.production, self.dot - 1)
        return retreated

    def tail(self) -> tuple[Symbol, ...]:
        """Symbols after the dot."""
        return self.production.rhs[self.dot :]

    def dot_walk(self) -> Iterator["Item"]:
        """All items of this production from dot 0 up to and including this one."""
        for dot in range(self.dot + 1):
            yield Item(self.production, dot)

    # ------------------------------------------------------------------ #

    def __str__(self) -> str:
        rhs = [str(symbol) for symbol in self.production.rhs]
        rhs.insert(self.dot, "•")
        return f"{self.production.lhs} ::= {' '.join(rhs)}"

    def __repr__(self) -> str:
        return f"Item({self})"


def start_item(production: Production) -> Item:
    """The item for *production* with the dot at position 0."""
    return Item(production, 0)


def end_item(production: Production) -> Item:
    """The reduce item for *production* (dot at the end)."""
    return Item(production, len(production.rhs))
