"""Serialize parse tables — and whole automatons — to plain dictionaries.

Production parser generators emit their tables so that parsing does not
repeat automaton construction. This module provides that:

* :func:`tables_to_dict` — a JSON-compatible dictionary capturing the
  ACTION/GOTO tables, the productions, and the start symbol;
* :func:`tables_from_dict` — reconstructs a
  :class:`~repro.automaton.tables.ParseTables` plus a minimal grammar
  view sufficient to run :class:`~repro.parsing.runtime.LRParser`;
* :func:`dump_tables` / :func:`load_tables` — the same through JSON text.

Conflicts are intentionally *not* serialized in the table format: tables
are only emitted for grammars one intends to parse with, and the loader
refuses tables whose source automaton had unresolved conflicts unless
``allow_conflicts``.

The **full-automaton format** (:func:`automaton_to_dict` /
:func:`automaton_from_dict`) additionally captures everything the
*counterexample* pipeline needs — item sets, the transition graph, the
per-item LALR(1) lookahead function, and the unresolved conflicts — so a
:class:`~repro.automaton.lalr.LALRAutomaton` can be reconstructed without
re-running LR(0) construction or the lookahead fixpoint. Lookahead sets
are pooled (most items share one of a few hundred distinct sets), which
keeps the document small and the decode fast; this format backs the
content-addressed cache in :mod:`repro.perf.cache`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.automaton.conflicts import Conflict, ConflictKind
from repro.automaton.items import Item
from repro.automaton.lalr import LALRAutomaton
from repro.automaton.lr0 import LR0Automaton, LR0State
from repro.automaton.tables import Accept, Action, ErrorAction, ParseTables, Reduce, Shift
from repro.grammar import Grammar, Nonterminal, Symbol, Terminal

FORMAT_VERSION = 1

#: Version of the full-automaton format. Bump on any change to the
#: encoding below; :mod:`repro.perf.cache` folds it into the cache key,
#: so stale cache entries self-invalidate.
FULL_FORMAT_VERSION = 1


def tables_to_dict(automaton: LALRAutomaton) -> dict[str, Any]:
    """A JSON-compatible snapshot of the automaton's parse tables."""
    grammar = automaton.grammar
    tables = automaton.tables

    def encode_action(action: Action) -> list[Any]:
        if isinstance(action, Shift):
            return ["s", action.state_id]
        if isinstance(action, Reduce):
            return ["r", action.production.index]
        if isinstance(action, Accept):
            return ["a"]
        return ["e"]

    return {
        "version": FORMAT_VERSION,
        "grammar": grammar.name,
        "start": grammar.start.name,
        "conflicts": len(tables.conflicts),
        "productions": [
            {
                "lhs": production.lhs.name,
                "rhs": [
                    ["n" if symbol.is_nonterminal else "t", symbol.name]
                    for symbol in production.rhs
                ],
            }
            for production in grammar.productions
        ],
        "action": [
            {terminal.name: encode_action(action) for terminal, action in row.items()}
            for row in tables.action
        ],
        "goto": [
            {nonterminal.name: target for nonterminal, target in row.items()}
            for row in tables.goto
        ],
    }


def tables_from_dict(
    data: dict[str, Any], allow_conflicts: bool = False
) -> tuple[ParseTables, Grammar]:
    """Reconstruct tables and a grammar view from :func:`tables_to_dict` output.

    The returned grammar is rebuilt from the serialized productions; it
    is equivalent to the original for parsing purposes (same productions,
    same start symbol), though precedence declarations are not preserved
    (they are already baked into the tables).
    """
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported table format version {data.get('version')!r}")
    if data.get("conflicts") and not allow_conflicts:
        raise ValueError(
            f"serialized tables carry {data['conflicts']} unresolved conflicts; "
            "pass allow_conflicts=True to load them anyway"
        )

    productions_raw = data["productions"]
    user_productions = []
    for entry in productions_raw[1:]:  # entry 0 is the augmented production
        rhs = tuple(
            Nonterminal(name) if kind == "n" else Terminal(name)
            for kind, name in entry["rhs"]
        )
        user_productions.append((Nonterminal(entry["lhs"]), rhs, None))
    grammar = Grammar(
        user_productions,
        start=Nonterminal(data["start"]),
        name=data.get("grammar", "loaded"),
    )

    def decode_action(encoded: list[Any]) -> Action:
        tag = encoded[0]
        if tag == "s":
            return Shift(encoded[1])
        if tag == "r":
            return Reduce(grammar.productions[encoded[1]])
        if tag == "a":
            return Accept()
        return ErrorAction()

    action = [
        {Terminal(name): decode_action(encoded) for name, encoded in row.items()}
        for row in data["action"]
    ]
    goto = [
        {Nonterminal(name): target for name, target in row.items()}
        for row in data["goto"]
    ]
    tables = ParseTables(action=action, goto=goto, conflicts=[])
    return tables, grammar


def dump_tables(automaton: LALRAutomaton) -> str:
    """Serialize the automaton's tables to JSON text."""
    return json.dumps(tables_to_dict(automaton), indent=1, sort_keys=True)


def load_tables(text: str, allow_conflicts: bool = False) -> tuple[ParseTables, Grammar]:
    """Inverse of :func:`dump_tables`."""
    return tables_from_dict(json.loads(text), allow_conflicts=allow_conflicts)


# ---------------------------------------------------------------------- #
# The full-automaton format (see the module docstring)


def _encode_full_action(action: Action) -> list[Any]:
    if isinstance(action, Shift):
        return ["s", action.state_id]
    if isinstance(action, Reduce):
        return ["r", action.production.index]
    if isinstance(action, Accept):
        return ["a"]
    return ["e"]


def automaton_to_dict(automaton: LALRAutomaton) -> dict[str, Any]:
    """A JSON-compatible snapshot of the *whole* automaton.

    Captures the grammar (as DSL text — :func:`repro.grammar.emit.dump_grammar`
    round-trips production order, start symbol, and precedence), the
    state graph with item sets and transitions, the pooled lookahead
    function, and the fully built parse tables including unresolved
    conflicts. Parse tables are forced if not yet built.
    """
    grammar = automaton.grammar
    tables = automaton.tables  # force, so conflicts are captured
    from repro.grammar.emit import dump_grammar

    term_codes: dict[Terminal, int] = {}

    def code_of(terminal: Terminal) -> int:
        code = term_codes.get(terminal)
        if code is None:
            code = term_codes[terminal] = len(term_codes)
        return code

    pool_index: dict[tuple[int, ...], int] = {}
    pool: list[list[int]] = []
    states: list[dict[str, Any]] = []
    lookahead_rows: list[list[int]] = []
    for state in automaton.states:
        states.append(
            {
                "k": len(state.kernel),
                "items": [[item.production.index, item.dot] for item in state.items],
                "trans": [
                    [str(symbol), target.id]
                    for symbol, target in state.transitions.items()
                ],
            }
        )
        row: list[int] = []
        for item in state.items:
            # Sort by name *before* assigning codes so the pool layout is
            # independent of set iteration order (dump is deterministic).
            key = tuple(
                code_of(t)
                for t in sorted(
                    automaton.lookaheads[(state.id, item)], key=lambda t: t.name
                )
            )
            index = pool_index.get(key)
            if index is None:
                index = pool_index[key] = len(pool)
                pool.append(list(key))
            row.append(index)
        lookahead_rows.append(row)

    return {
        "full_version": FULL_FORMAT_VERSION,
        "grammar": grammar.name,
        "grammar_dsl": dump_grammar(grammar),
        "terminals": [t.name for t in term_codes],
        "states": states,
        "la_pool": pool,
        "lookaheads": lookahead_rows,
        "action": [
            {str(t): _encode_full_action(a) for t, a in row.items()}
            for row in tables.action
        ],
        "goto": [
            {str(nt): target for nt, target in row.items()} for row in tables.goto
        ],
        "conflicts": [
            {
                "state": c.state_id,
                "terminal": str(c.terminal),
                "kind": c.kind.value,
                "reduce": [c.reduce_item.production.index, c.reduce_item.dot],
                "other": [c.other_item.production.index, c.other_item.dot],
            }
            for c in tables.conflicts
        ],
        "resolved_count": tables.resolved_count,
        "used_precedence": sorted(str(t) for t in tables.used_precedence),
    }


def automaton_from_dict(data: dict[str, Any]) -> LALRAutomaton:
    """Reconstruct an :class:`LALRAutomaton` from :func:`automaton_to_dict`.

    The grammar is reloaded from its embedded DSL text (identical
    production indices by the emitter's round-trip guarantee); states,
    transitions, lookaheads, and tables are rebuilt directly, skipping
    LR(0) construction, the lookahead fixpoint, and table building. The
    nullable/FIRST analysis stays lazy and is recomputed on first use.
    """
    version = data.get("full_version")
    if version != FULL_FORMAT_VERSION:
        raise ValueError(f"unsupported full-automaton format version {version!r}")

    from repro.grammar.dsl import load_grammar

    grammar = load_grammar(data["grammar_dsl"], name=data.get("grammar", "grammar"))
    productions = grammar.productions
    nonterminal_names = {nt.name for nt in grammar.nonterminals}

    def symbol_of(name: str) -> Symbol:
        if name in nonterminal_names:
            return Nonterminal(name)
        return Terminal(name)

    terminals = [Terminal(name) for name in data["terminals"]]
    pool_sets = [
        frozenset(terminals[code] for code in codes) for codes in data["la_pool"]
    ]

    states: list[LR0State] = []
    for state_id, encoded in enumerate(data["states"]):
        items = tuple(Item(productions[p], dot) for p, dot in encoded["items"])
        states.append(
            LR0State(
                id=state_id,
                kernel=frozenset(items[: encoded["k"]]),
                items=items,
            )
        )

    lookaheads: dict[tuple[int, Item], frozenset[Terminal]] = {}
    for state, encoded, row in zip(states, data["states"], data["lookaheads"]):
        for name, target in encoded["trans"]:
            state.transitions[symbol_of(name)] = states[target]
        for item, pool_id in zip(state.items, row):
            lookaheads[(state.id, item)] = pool_sets[pool_id]

    predecessors: dict[int, dict[Symbol, list[LR0State]]] = {
        state.id: {} for state in states
    }
    for state in states:
        for symbol, target in state.transitions.items():
            predecessors[target.id].setdefault(symbol, []).append(state)

    lr0 = LR0Automaton.__new__(LR0Automaton)
    lr0.grammar = grammar
    lr0.states = states
    lr0._by_kernel = {state.kernel: state for state in states}
    lr0.predecessors = predecessors

    def decode_action(encoded: list[Any]) -> Action:
        tag = encoded[0]
        if tag == "s":
            return Shift(encoded[1])
        if tag == "r":
            return Reduce(productions[encoded[1]])
        if tag == "a":
            return Accept()
        return ErrorAction()

    conflicts = [
        Conflict(
            state_id=entry["state"],
            terminal=Terminal(entry["terminal"]),
            kind=ConflictKind(entry["kind"]),
            reduce_item=Item(productions[entry["reduce"][0]], entry["reduce"][1]),
            other_item=Item(productions[entry["other"][0]], entry["other"][1]),
        )
        for entry in data["conflicts"]
    ]
    tables = ParseTables(
        action=[
            {Terminal(name): decode_action(encoded) for name, encoded in row.items()}
            for row in data["action"]
        ],
        goto=[
            {Nonterminal(name): target for name, target in row.items()}
            for row in data["goto"]
        ],
        conflicts=conflicts,
        resolved_count=data.get("resolved_count", 0),
        used_precedence=frozenset(
            Terminal(name) for name in data.get("used_precedence", ())
        ),
    )

    automaton = LALRAutomaton.__new__(LALRAutomaton)
    automaton.grammar = grammar
    automaton.lr0 = lr0
    automaton.lookaheads = lookaheads
    # Pre-seed the lazily built tables; ``analysis`` stays lazy.
    automaton.__dict__["tables"] = tables
    return automaton


def dump_automaton(automaton: LALRAutomaton) -> str:
    """Serialize the full automaton to deterministic JSON text."""
    return json.dumps(
        automaton_to_dict(automaton), sort_keys=True, separators=(",", ":")
    )


def load_automaton(text: str) -> LALRAutomaton:
    """Inverse of :func:`dump_automaton`."""
    return automaton_from_dict(json.loads(text))
