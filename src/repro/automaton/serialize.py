"""Serialize parse tables — and whole automatons — to plain dictionaries.

Production parser generators emit their tables so that parsing does not
repeat automaton construction. This module provides that:

* :func:`tables_to_dict` — a JSON-compatible dictionary capturing the
  ACTION/GOTO tables, the productions, and the start symbol;
* :func:`tables_from_dict` — reconstructs a
  :class:`~repro.automaton.tables.ParseTables` plus a minimal grammar
  view sufficient to run :class:`~repro.parsing.runtime.LRParser`;
* :func:`dump_tables` / :func:`load_tables` — the same through JSON text.

Conflicts are intentionally *not* serialized in the table format: tables
are only emitted for grammars one intends to parse with, and the loader
refuses tables whose source automaton had unresolved conflicts unless
``allow_conflicts``.

The **full-automaton format** (:func:`automaton_to_dict` /
:func:`automaton_from_dict`) additionally captures everything the
*counterexample* pipeline needs — item sets, the transition graph, the
per-item LALR(1) lookahead function, and the unresolved conflicts — so a
:class:`~repro.automaton.lalr.LALRAutomaton` can be reconstructed without
re-running LR(0) construction or the lookahead fixpoint.

Format **v2** mirrors the in-memory hot-path representation: lookahead
sets are pooled *int bitmasks* over the automaton's name-sorted
:class:`~repro.automaton.bitset.TerminalTable` (decode is a dict fill,
no set construction), transitions are flat ``[symbol code, target id]``
arrays over a shared symbol list, and ACTION/GOTO rows are flat coded
triples/pairs instead of name-keyed objects.

Format **v3** keeps the v2 layout but adds the construction algorithm
(``"algorithm"``: lalr/ielr/lr1 — minimal and canonical LR(1) automata
from :mod:`repro.automaton.ielr` serialize through the same writer) and
compresses ACTION/GOTO with the row/column equivalence-class encoding of
:mod:`repro.automaton.compaction` — identical columns collapse into one
class and identical re-keyed rows are interned, which is where most of a
big automaton's serialized bytes live. Readers for v1 **and** v2
documents are kept so older dumps still load; stale cache entries
(:mod:`repro.perf.cache`) are simply never found — the format version is
folded into the cache key, so the bump turns them into clean misses, not
errors.
"""

from __future__ import annotations

import json
from typing import Any

from repro.automaton.bitset import TerminalTable
from repro.automaton.compaction import (
    compact_rows,
    expand_rows,
    intern_rows,
    restore_rows,
)
from repro.automaton.conflicts import Conflict, ConflictKind
from repro.automaton.items import Item
from repro.automaton.lalr import LALRAutomaton
from repro.automaton.lr0 import LR0Automaton, LR0State
from repro.automaton.tables import Accept, Action, ErrorAction, ParseTables, Reduce, Shift
from repro.grammar import Grammar, Nonterminal, Symbol, Terminal

FORMAT_VERSION = 1

#: Version of the full-automaton format. Bump on any change to the
#: encoding below; :mod:`repro.perf.cache` folds it into the cache key,
#: so stale cache entries self-invalidate.
FULL_FORMAT_VERSION = 3

#: The flat (uncompacted) layout, still writable via
#: ``automaton_to_dict(automaton, compact=False)`` for size comparisons
#: and format regression tests.
FLAT_FORMAT_VERSION = 2

#: ACTION opcodes of the v2 flat encoding.
_OP_SHIFT, _OP_REDUCE, _OP_ACCEPT, _OP_ERROR = 0, 1, 2, 3


def tables_to_dict(automaton: LALRAutomaton) -> dict[str, Any]:
    """A JSON-compatible snapshot of the automaton's parse tables."""
    grammar = automaton.grammar
    tables = automaton.tables

    def encode_action(action: Action) -> list[Any]:
        if isinstance(action, Shift):
            return ["s", action.state_id]
        if isinstance(action, Reduce):
            return ["r", action.production.index]
        if isinstance(action, Accept):
            return ["a"]
        return ["e"]

    return {
        "version": FORMAT_VERSION,
        "grammar": grammar.name,
        "start": grammar.start.name,
        "conflicts": len(tables.conflicts),
        "productions": [
            {
                "lhs": production.lhs.name,
                "rhs": [
                    ["n" if symbol.is_nonterminal else "t", symbol.name]
                    for symbol in production.rhs
                ],
            }
            for production in grammar.productions
        ],
        "action": [
            {terminal.name: encode_action(action) for terminal, action in row.items()}
            for row in tables.action
        ],
        "goto": [
            {nonterminal.name: target for nonterminal, target in row.items()}
            for row in tables.goto
        ],
    }


def tables_from_dict(
    data: dict[str, Any], allow_conflicts: bool = False
) -> tuple[ParseTables, Grammar]:
    """Reconstruct tables and a grammar view from :func:`tables_to_dict` output.

    The returned grammar is rebuilt from the serialized productions; it
    is equivalent to the original for parsing purposes (same productions,
    same start symbol), though precedence declarations are not preserved
    (they are already baked into the tables).
    """
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported table format version {data.get('version')!r}")
    if data.get("conflicts") and not allow_conflicts:
        raise ValueError(
            f"serialized tables carry {data['conflicts']} unresolved conflicts; "
            "pass allow_conflicts=True to load them anyway"
        )

    productions_raw = data["productions"]
    user_productions = []
    for entry in productions_raw[1:]:  # entry 0 is the augmented production
        rhs = tuple(
            Nonterminal(name) if kind == "n" else Terminal(name)
            for kind, name in entry["rhs"]
        )
        user_productions.append((Nonterminal(entry["lhs"]), rhs, None))
    grammar = Grammar(
        user_productions,
        start=Nonterminal(data["start"]),
        name=data.get("grammar", "loaded"),
    )

    def decode_action(encoded: list[Any]) -> Action:
        tag = encoded[0]
        if tag == "s":
            return Shift(encoded[1])
        if tag == "r":
            return Reduce(grammar.productions[encoded[1]])
        if tag == "a":
            return Accept()
        return ErrorAction()

    action = [
        {Terminal(name): decode_action(encoded) for name, encoded in row.items()}
        for row in data["action"]
    ]
    goto = [
        {Nonterminal(name): target for name, target in row.items()}
        for row in data["goto"]
    ]
    tables = ParseTables(action=action, goto=goto, conflicts=[])
    return tables, grammar


def dump_tables(automaton: LALRAutomaton) -> str:
    """Serialize the automaton's tables to JSON text."""
    return json.dumps(tables_to_dict(automaton), indent=1, sort_keys=True)


def load_tables(text: str, allow_conflicts: bool = False) -> tuple[ParseTables, Grammar]:
    """Inverse of :func:`dump_tables`."""
    return tables_from_dict(json.loads(text), allow_conflicts=allow_conflicts)


# ---------------------------------------------------------------------- #
# The full-automaton format (see the module docstring)


def _encode_full_action(action: Action) -> list[Any]:
    if isinstance(action, Shift):
        return ["s", action.state_id]
    if isinstance(action, Reduce):
        return ["r", action.production.index]
    if isinstance(action, Accept):
        return ["a"]
    return ["e"]


def automaton_to_dict(
    automaton: LALRAutomaton, compact: bool = True
) -> dict[str, Any]:
    """A JSON-compatible snapshot of the *whole* automaton.

    Captures the grammar (as DSL text — :func:`repro.grammar.emit.dump_grammar`
    round-trips production order, start symbol, and precedence), the
    construction algorithm, the state graph with item sets and flat
    coded transitions, the pooled bitmask lookahead function over the
    automaton's terminal table, and the fully built parse tables
    including unresolved conflicts. Parse tables are forced if not yet
    built.

    With *compact* (the default) ACTION/GOTO are emitted v3-style
    through :mod:`repro.automaton.compaction`; ``compact=False`` writes
    the flat v2 layout instead — byte-for-byte larger, used by the bench
    report to measure the compaction win and by format regression tests.
    """
    grammar = automaton.grammar
    tables = automaton.tables  # force, so conflicts are captured
    from repro.grammar.emit import dump_grammar

    table = automaton.terminal_table
    terminal_code = table.index
    masks = automaton.lookahead_masks

    #: Transition/GOTO symbols get dense codes in first-seen order (the
    #: state graph's construction order is deterministic, so the dump is).
    symbol_codes: dict[Symbol, int] = {}
    symbol_names: list[str] = []

    def code_of(symbol: Symbol) -> int:
        code = symbol_codes.get(symbol)
        if code is None:
            code = symbol_codes[symbol] = len(symbol_names)
            symbol_names.append(symbol.name)
        return code

    pool_index: dict[int, int] = {}
    pool: list[int] = []
    states: list[dict[str, Any]] = []
    lookahead_rows: list[list[int]] = []
    for state in automaton.states:
        items_flat: list[int] = []
        row: list[int] = []
        for item in state.items:
            items_flat.append(item.production.index)
            items_flat.append(item.dot)
            mask = masks[(state.id, item)]
            index = pool_index.get(mask)
            if index is None:
                index = pool_index[mask] = len(pool)
                pool.append(mask)
            row.append(index)
        trans_flat: list[int] = []
        for symbol, target in state.transitions.items():
            trans_flat.append(code_of(symbol))
            trans_flat.append(target.id)
        states.append({"k": len(state.kernel), "items": items_flat, "trans": trans_flat})
        lookahead_rows.append(row)

    def encode_action_row(row: dict[Terminal, Action]) -> list[int]:
        flat: list[int] = []
        for terminal, action in sorted(
            row.items(), key=lambda pair: terminal_code[pair[0]]
        ):
            if isinstance(action, Shift):
                op, arg = _OP_SHIFT, action.state_id
            elif isinstance(action, Reduce):
                op, arg = _OP_REDUCE, action.production.index
            elif isinstance(action, Accept):
                op, arg = _OP_ACCEPT, -1
            else:
                op, arg = _OP_ERROR, -1
            flat.extend((terminal_code[terminal], op, arg))
        return flat

    def encode_goto_row(row: dict[Nonterminal, int]) -> list[int]:
        flat: list[int] = []
        for nonterminal, target in sorted(
            row.items(), key=lambda pair: str(pair[0])
        ):
            flat.extend((code_of(nonterminal), target))
        return flat

    action_rows = [encode_action_row(row) for row in tables.action]
    goto_rows = [encode_goto_row(row) for row in tables.goto]
    if compact:
        action_out: Any = compact_rows(action_rows, 3, len(table.terminals))
        goto_out: Any = compact_rows(goto_rows, 2, len(symbol_names))
        # Whole-row interning for the remaining per-state vectors:
        # lookahead-pool rows and transition rows repeat heavily (half
        # or more of the states of a big grammar share one).
        lookaheads_out: Any = intern_rows(lookahead_rows)
        trans_out = intern_rows([encoded.pop("trans") for encoded in states])
    else:
        action_out, goto_out = action_rows, goto_rows
        lookaheads_out = lookahead_rows
        trans_out = None

    document = {
        "full_version": FULL_FORMAT_VERSION if compact else FLAT_FORMAT_VERSION,
        "algorithm": automaton.algorithm,
        "grammar": grammar.name,
        "grammar_dsl": dump_grammar(grammar),
        "terminals": [t.name for t in table.terminals],
        "symbols": symbol_names,
        "states": states,
        "la_pool": pool,
        "lookaheads": lookaheads_out,
        "action": action_out,
        "goto": goto_out,
        "conflicts": [
            {
                "state": c.state_id,
                "terminal": str(c.terminal),
                "kind": c.kind.value,
                "reduce": [c.reduce_item.production.index, c.reduce_item.dot],
                "other": [c.other_item.production.index, c.other_item.dot],
            }
            for c in tables.conflicts
        ],
        "resolved_count": tables.resolved_count,
        "used_precedence": sorted(str(t) for t in tables.used_precedence),
    }
    if trans_out is not None:
        document["trans"] = trans_out
    return document


def _build_states(
    data: dict[str, Any], productions, flat_items: bool
) -> list[LR0State]:
    """Shared state-list reconstruction for both format versions."""
    states: list[LR0State] = []
    for state_id, encoded in enumerate(data["states"]):
        raw = encoded["items"]
        if flat_items:
            items = tuple(
                Item(productions[raw[i]], raw[i + 1]) for i in range(0, len(raw), 2)
            )
        else:
            items = tuple(Item(productions[p], dot) for p, dot in raw)
        states.append(
            LR0State(
                id=state_id,
                kernel=frozenset(items[: encoded["k"]]),
                items=items,
            )
        )
    return states


def _decode_conflicts(data: dict[str, Any], productions) -> list[Conflict]:
    return [
        Conflict(
            state_id=entry["state"],
            terminal=Terminal(entry["terminal"]),
            kind=ConflictKind(entry["kind"]),
            reduce_item=Item(productions[entry["reduce"][0]], entry["reduce"][1]),
            other_item=Item(productions[entry["other"][0]], entry["other"][1]),
        )
        for entry in data["conflicts"]
    ]


def _assemble(
    data: dict[str, Any],
    grammar: Grammar,
    states: list[LR0State],
    terminal_table: TerminalTable,
    lookahead_masks: dict[tuple[int, Item], int],
    tables: ParseTables,
) -> LALRAutomaton:
    """Final object assembly shared by both decoders.

    Rebuilds the reverse transition graph and wires the ``__new__``-made
    instances together. The nullable/FIRST analysis, the lookahead
    *views*, and the adjacency arrays all stay lazy — cached consumers
    that never touch them never pay for them.
    """
    predecessors: dict[int, dict[Symbol, list[LR0State]]] = {
        state.id: {} for state in states
    }
    for state in states:
        for symbol, target in state.transitions.items():
            predecessors[target.id].setdefault(symbol, []).append(state)

    lr0 = LR0Automaton.__new__(LR0Automaton)
    lr0.grammar = grammar
    lr0.states = states
    lr0._by_kernel = {state.kernel: state for state in states}
    lr0.predecessors = predecessors

    automaton = LALRAutomaton.__new__(LALRAutomaton)
    automaton.grammar = grammar
    automaton.lr0 = lr0
    automaton.terminal_table = terminal_table
    automaton.lookahead_masks = lookahead_masks
    # Documents older than v3 carry no algorithm field; they were all
    # LALR by construction.
    automaton.algorithm = data.get("algorithm", "lalr")
    # Pre-seed the lazily built tables; ``analysis`` and the set-like
    # ``lookaheads`` views stay lazy.
    automaton.__dict__["tables"] = tables
    return automaton


def _automaton_from_dict_v1(data: dict[str, Any]) -> LALRAutomaton:
    """Compatibility reader for v1 documents (name-keyed, set pools)."""
    from repro.grammar.dsl import load_grammar

    grammar = load_grammar(data["grammar_dsl"], name=data.get("grammar", "grammar"))
    productions = grammar.productions
    nonterminal_names = {nt.name for nt in grammar.nonterminals}

    def symbol_of(name: str) -> Symbol:
        if name in nonterminal_names:
            return Nonterminal(name)
        return Terminal(name)

    terminal_table = TerminalTable.for_grammar(grammar)
    terminals = [Terminal(name) for name in data["terminals"]]
    pool_masks = [
        terminal_table.mask_of(terminals[code] for code in codes)
        for codes in data["la_pool"]
    ]

    states = _build_states(data, productions, flat_items=False)
    lookahead_masks: dict[tuple[int, Item], int] = {}
    for state, encoded, row in zip(states, data["states"], data["lookaheads"]):
        for name, target in encoded["trans"]:
            state.transitions[symbol_of(name)] = states[target]
        for item, pool_id in zip(state.items, row):
            lookahead_masks[(state.id, item)] = pool_masks[pool_id]

    def decode_action(encoded: list[Any]) -> Action:
        tag = encoded[0]
        if tag == "s":
            return Shift(encoded[1])
        if tag == "r":
            return Reduce(productions[encoded[1]])
        if tag == "a":
            return Accept()
        return ErrorAction()

    tables = ParseTables(
        action=[
            {Terminal(name): decode_action(encoded) for name, encoded in row.items()}
            for row in data["action"]
        ],
        goto=[
            {Nonterminal(name): target for name, target in row.items()}
            for row in data["goto"]
        ],
        conflicts=_decode_conflicts(data, productions),
        resolved_count=data.get("resolved_count", 0),
        used_precedence=frozenset(
            Terminal(name) for name in data.get("used_precedence", ())
        ),
    )
    return _assemble(data, grammar, states, terminal_table, lookahead_masks, tables)


def automaton_from_dict(data: dict[str, Any]) -> LALRAutomaton:
    """Reconstruct an :class:`LALRAutomaton` from :func:`automaton_to_dict`.

    The grammar is reloaded from its embedded DSL text (identical
    production indices by the emitter's round-trip guarantee); states,
    transitions, lookahead masks, and tables are rebuilt directly,
    skipping LR(0) construction, the lookahead fixpoint, and table
    building. The current v3 format (compacted tables), the flat v2
    layout, and legacy v1 documents all decode; any other version raises
    ``ValueError`` (which the automaton cache treats as a miss).
    """
    version = data.get("full_version")
    if version == 1:
        return _automaton_from_dict_v1(data)
    if version not in (FLAT_FORMAT_VERSION, FULL_FORMAT_VERSION):
        raise ValueError(f"unsupported full-automaton format version {version!r}")

    from repro.grammar.dsl import load_grammar

    grammar = load_grammar(data["grammar_dsl"], name=data.get("grammar", "grammar"))
    productions = grammar.productions
    nonterminal_names = {nt.name for nt in grammar.nonterminals}

    symbols: list[Symbol] = [
        Nonterminal(name) if name in nonterminal_names else Terminal(name)
        for name in data["symbols"]
    ]
    terminal_table = TerminalTable(Terminal(name) for name in data["terminals"])
    terminals = terminal_table.terminals
    pool = [int(mask) for mask in data["la_pool"]]

    states = _build_states(data, productions, flat_items=True)
    if version == FULL_FORMAT_VERSION:
        lookahead_rows = expand_rows(data["lookaheads"])
        trans_rows = expand_rows(data["trans"])
    else:
        lookahead_rows = data["lookaheads"]
        trans_rows = [encoded["trans"] for encoded in data["states"]]
    lookahead_masks: dict[tuple[int, Item], int] = {}
    for state, trans, row in zip(states, trans_rows, lookahead_rows):
        transitions = state.transitions
        for i in range(0, len(trans), 2):
            transitions[symbols[trans[i]]] = states[trans[i + 1]]
        state_id = state.id
        for item, pool_id in zip(state.items, row):
            lookahead_masks[(state_id, item)] = pool[pool_id]

    def decode_action_row(flat: list[int]) -> dict[Terminal, Action]:
        row: dict[Terminal, Action] = {}
        for i in range(0, len(flat), 3):
            terminal = terminals[flat[i]]
            op, arg = flat[i + 1], flat[i + 2]
            if op == _OP_SHIFT:
                row[terminal] = Shift(arg)
            elif op == _OP_REDUCE:
                row[terminal] = Reduce(productions[arg])
            elif op == _OP_ACCEPT:
                row[terminal] = Accept()
            else:
                row[terminal] = ErrorAction()
        return row

    def decode_goto_row(flat: list[int]) -> dict[Nonterminal, int]:
        row: dict[Nonterminal, int] = {}
        for i in range(0, len(flat), 2):
            symbol = symbols[flat[i]]
            assert isinstance(symbol, Nonterminal)
            row[symbol] = flat[i + 1]
        return row

    if version == FULL_FORMAT_VERSION:
        action_rows = restore_rows(data["action"], 3)
        goto_rows = restore_rows(data["goto"], 2)
    else:
        action_rows, goto_rows = data["action"], data["goto"]

    tables = ParseTables(
        action=[decode_action_row(flat) for flat in action_rows],
        goto=[decode_goto_row(flat) for flat in goto_rows],
        conflicts=_decode_conflicts(data, productions),
        resolved_count=data.get("resolved_count", 0),
        used_precedence=frozenset(
            Terminal(name) for name in data.get("used_precedence", ())
        ),
    )
    return _assemble(data, grammar, states, terminal_table, lookahead_masks, tables)


def dump_automaton(automaton: LALRAutomaton, compact: bool = True) -> str:
    """Serialize the full automaton to deterministic JSON text."""
    return json.dumps(
        automaton_to_dict(automaton, compact=compact),
        sort_keys=True,
        separators=(",", ":"),
    )


def load_automaton(text: str) -> LALRAutomaton:
    """Inverse of :func:`dump_automaton`."""
    return automaton_from_dict(json.loads(text))
