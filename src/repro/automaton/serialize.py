"""Serialize parse tables to and from plain dictionaries.

Production parser generators emit their tables so that parsing does not
repeat automaton construction. This module provides that:

* :func:`tables_to_dict` — a JSON-compatible dictionary capturing the
  ACTION/GOTO tables, the productions, and the start symbol;
* :func:`tables_from_dict` — reconstructs a
  :class:`~repro.automaton.tables.ParseTables` plus a minimal grammar
  view sufficient to run :class:`~repro.parsing.runtime.LRParser`;
* :func:`dump_tables` / :func:`load_tables` — the same through JSON text.

Conflicts are intentionally *not* serialized: tables are only emitted for
grammars one intends to parse with, and the loader refuses tables whose
source automaton had unresolved conflicts unless ``allow_conflicts``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.automaton.lalr import LALRAutomaton
from repro.automaton.tables import Accept, Action, ErrorAction, ParseTables, Reduce, Shift
from repro.grammar import Grammar, Nonterminal, Terminal

FORMAT_VERSION = 1


def tables_to_dict(automaton: LALRAutomaton) -> dict[str, Any]:
    """A JSON-compatible snapshot of the automaton's parse tables."""
    grammar = automaton.grammar
    tables = automaton.tables

    def encode_action(action: Action) -> list[Any]:
        if isinstance(action, Shift):
            return ["s", action.state_id]
        if isinstance(action, Reduce):
            return ["r", action.production.index]
        if isinstance(action, Accept):
            return ["a"]
        return ["e"]

    return {
        "version": FORMAT_VERSION,
        "grammar": grammar.name,
        "start": grammar.start.name,
        "conflicts": len(tables.conflicts),
        "productions": [
            {
                "lhs": production.lhs.name,
                "rhs": [
                    ["n" if symbol.is_nonterminal else "t", symbol.name]
                    for symbol in production.rhs
                ],
            }
            for production in grammar.productions
        ],
        "action": [
            {terminal.name: encode_action(action) for terminal, action in row.items()}
            for row in tables.action
        ],
        "goto": [
            {nonterminal.name: target for nonterminal, target in row.items()}
            for row in tables.goto
        ],
    }


def tables_from_dict(
    data: dict[str, Any], allow_conflicts: bool = False
) -> tuple[ParseTables, Grammar]:
    """Reconstruct tables and a grammar view from :func:`tables_to_dict` output.

    The returned grammar is rebuilt from the serialized productions; it
    is equivalent to the original for parsing purposes (same productions,
    same start symbol), though precedence declarations are not preserved
    (they are already baked into the tables).
    """
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported table format version {data.get('version')!r}")
    if data.get("conflicts") and not allow_conflicts:
        raise ValueError(
            f"serialized tables carry {data['conflicts']} unresolved conflicts; "
            "pass allow_conflicts=True to load them anyway"
        )

    productions_raw = data["productions"]
    user_productions = []
    for entry in productions_raw[1:]:  # entry 0 is the augmented production
        rhs = tuple(
            Nonterminal(name) if kind == "n" else Terminal(name)
            for kind, name in entry["rhs"]
        )
        user_productions.append((Nonterminal(entry["lhs"]), rhs, None))
    grammar = Grammar(
        user_productions,
        start=Nonterminal(data["start"]),
        name=data.get("grammar", "loaded"),
    )

    def decode_action(encoded: list[Any]) -> Action:
        tag = encoded[0]
        if tag == "s":
            return Shift(encoded[1])
        if tag == "r":
            return Reduce(grammar.productions[encoded[1]])
        if tag == "a":
            return Accept()
        return ErrorAction()

    action = [
        {Terminal(name): decode_action(encoded) for name, encoded in row.items()}
        for row in data["action"]
    ]
    goto = [
        {Nonterminal(name): target for name, target in row.items()}
        for row in data["goto"]
    ]
    tables = ParseTables(action=action, goto=goto, conflicts=[])
    return tables, grammar


def dump_tables(automaton: LALRAutomaton) -> str:
    """Serialize the automaton's tables to JSON text."""
    return json.dumps(tables_to_dict(automaton), indent=1, sort_keys=True)


def load_tables(text: str, allow_conflicts: bool = False) -> tuple[ParseTables, Grammar]:
    """Inverse of :func:`dump_tables`."""
    return tables_from_dict(json.loads(text), allow_conflicts=allow_conflicts)
