"""Parsing conflicts: the objects the counterexample finder explains."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.automaton.items import Item
from repro.grammar import Terminal


class ConflictKind(enum.Enum):
    """Shift/reduce or reduce/reduce (paper §2.2–2.3)."""

    SHIFT_REDUCE = "shift/reduce"
    REDUCE_REDUCE = "reduce/reduce"


@dataclass(frozen=True)
class Conflict:
    """One unresolved parsing conflict.

    Attributes:
        state_id: The conflict state.
        terminal: The conflict (lookahead) symbol.
        kind: Shift/reduce or reduce/reduce.
        reduce_item: The conflicting reduce item (``item1`` of the paper's
            product-parser construction; the parser copy that performs the
            reduction).
        other_item: The shift item for shift/reduce conflicts, or the
            second reduce item for reduce/reduce conflicts (``item2``).
    """

    state_id: int
    terminal: Terminal
    kind: ConflictKind
    reduce_item: Item
    other_item: Item

    @property
    def is_shift_reduce(self) -> bool:
        return self.kind is ConflictKind.SHIFT_REDUCE

    def describe(self) -> str:
        """CUP-style multi-line description of the conflict itself."""
        if self.is_shift_reduce:
            return (
                f"*** Shift/Reduce conflict found in state #{self.state_id}\n"
                f"  between reduction on {self.reduce_item}\n"
                f"  and shift on {self.other_item}\n"
                f"  under symbol {self.terminal}"
            )
        return (
            f"*** Reduce/Reduce conflict found in state #{self.state_id}\n"
            f"  between reduction on {self.reduce_item}\n"
            f"  and reduction on {self.other_item}\n"
            f"  under symbol {self.terminal}"
        )

    def __str__(self) -> str:
        return (
            f"{self.kind.value} in state {self.state_id} on {self.terminal}: "
            f"[{self.reduce_item}] vs [{self.other_item}]"
        )
