"""Equivalence-class row/column compaction for flat coded tables.

The full-automaton serialization (:mod:`repro.automaton.serialize`)
stores ACTION/GOTO as one flat coded row per state. Real tables are
highly redundant — many states share identical action rows, and many
terminals behave identically in every state (the row/column
equivalence-class compression of "Parsing methods streamlined"). This
module exploits both:

* **columns** — keys (terminal or symbol codes) whose column vector over
  all states is identical collapse into one *column class*; each row is
  re-keyed by class id;
* **rows** — re-keyed rows that became identical are interned into a
  unique-row pool; each state stores only its pool index.

The encoding is loss-free with respect to the *mapping* each row
represents: :func:`restore_rows` returns rows with exactly the original
``key -> payload`` entries, emitted in ascending key order. Both the
serializer (format v3) and therefore every content-addressed cache
entry (:mod:`repro.perf.cache`) go through this encoding; the bench
report records the flat-vs-compacted size ratio.

Rows are flat ``[key, payload..., key, payload...]`` integer lists with
a fixed *stride* (entry width): stride 3 for ACTION rows
(``terminal code, opcode, argument``), stride 2 for GOTO rows
(``symbol code, target state``).
"""

from __future__ import annotations

from typing import Any


def compact_rows(
    rows: list[list[int]], stride: int, num_keys: int
) -> dict[str, Any]:
    """Compact flat coded *rows* by column classes and row interning.

    Args:
        rows: One flat ``[key, payload...]`` list per state; each entry
            is *stride* integers, keys unique within a row and below
            *num_keys*.
        stride: Entry width, including the key.
        num_keys: Size of the key universe (column count).

    Returns:
        A JSON-compatible dict with ``"cols"`` (key -> column-class id),
        ``"rows"`` (the unique re-keyed row pool), and ``"map"`` (state
        -> pool index).
    """
    payload = stride - 1
    row_maps: list[dict[int, tuple[int, ...]]] = []
    for flat in rows:
        entries: dict[int, tuple[int, ...]] = {}
        for i in range(0, len(flat), stride):
            entries[flat[i]] = tuple(flat[i + 1 : i + 1 + payload])
        row_maps.append(entries)

    class_of_column: dict[tuple, int] = {}
    cols: list[int] = []
    for key in range(num_keys):
        column = tuple(entries.get(key) for entries in row_maps)
        class_id = class_of_column.setdefault(column, len(class_of_column))
        cols.append(class_id)

    pool: list[list[int]] = []
    pool_index: dict[tuple[int, ...], int] = {}
    row_ids: list[int] = []
    for entries in row_maps:
        # Keys of one column class carry identical payloads by
        # construction, so re-keying by class id cannot collide.
        by_class = {cols[key]: value for key, value in entries.items()}
        flat: list[int] = []
        for class_id in sorted(by_class):
            flat.append(class_id)
            flat.extend(by_class[class_id])
        signature = tuple(flat)
        row_id = pool_index.get(signature)
        if row_id is None:
            row_id = pool_index[signature] = len(pool)
            pool.append(flat)
        row_ids.append(row_id)

    return {"cols": cols, "rows": pool, "map": row_ids}


def restore_rows(compacted: dict[str, Any], stride: int) -> list[list[int]]:
    """Inverse of :func:`compact_rows`.

    Returns one flat row per state with the original ``key -> payload``
    entries, keys ascending.
    """
    payload = stride - 1
    cols: list[int] = compacted["cols"]
    pool: list[list[int]] = compacted["rows"]
    expanded: list[dict[int, list[int]]] = []
    for flat in pool:
        by_class: dict[int, list[int]] = {}
        for i in range(0, len(flat), stride):
            by_class[flat[i]] = flat[i + 1 : i + 1 + payload]
        expanded.append(by_class)

    rows: list[list[int]] = []
    for row_id in compacted["map"]:
        by_class = expanded[row_id]
        flat = []
        for key, class_id in enumerate(cols):
            entry = by_class.get(class_id)
            if entry is not None:
                flat.append(key)
                flat.extend(entry)
        rows.append(flat)
    return rows


def intern_rows(rows: list[list[int]]) -> dict[str, Any]:
    """Pure row interning: pool unique rows, map each state to its index.

    Used for per-state vectors whose keys are already dense (lookahead
    pool ids, transition pairs) where column classing buys nothing but
    whole-row duplication is common — e.g. the many single-item states
    sharing one lookahead pattern.
    """
    pool: list[list[int]] = []
    pool_index: dict[tuple[int, ...], int] = {}
    row_ids: list[int] = []
    for row in rows:
        signature = tuple(row)
        row_id = pool_index.get(signature)
        if row_id is None:
            row_id = pool_index[signature] = len(pool)
            pool.append(list(row))
        row_ids.append(row_id)
    return {"rows": pool, "map": row_ids}


def expand_rows(interned: dict[str, Any]) -> list[list[int]]:
    """Inverse of :func:`intern_rows`."""
    pool = interned["rows"]
    return [pool[row_id] for row_id in interned["map"]]


def compaction_stats(
    rows: list[list[int]], stride: int, num_keys: int
) -> dict[str, int]:
    """Size accounting for one table: flat vs compacted integer counts."""
    compacted = compact_rows(rows, stride, num_keys)
    flat_ints = sum(len(row) for row in rows)
    compact_ints = (
        len(compacted["cols"])
        + len(compacted["map"])
        + sum(len(row) for row in compacted["rows"])
    )
    return {
        "flat_ints": flat_ints,
        "compact_ints": compact_ints,
        "unique_rows": len(compacted["rows"]),
        "column_classes": len(set(compacted["cols"])),
    }
