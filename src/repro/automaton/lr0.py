"""Canonical LR(0) collection: states, closures, and the transition graph.

The LR(0) automaton is the skeleton shared by SLR(1), LALR(1) and (after
item-splitting) canonical LR(1) constructions. States are identified by
their kernel item sets; each state caches its full closure and its
outgoing transitions.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator

from repro.automaton.items import Item, start_item
from repro.grammar import Grammar, Nonterminal, Symbol


@dataclass
class LR0State:
    """One state of the LR(0) automaton.

    Attributes:
        id: Dense state number (state 0 is the start state).
        kernel: Kernel items (the start item for state 0, otherwise items
            with the dot past position 0).
        items: Full item set: kernel items first, then closure items, in a
            deterministic order.
        transitions: Outgoing edges, one per symbol.
    """

    id: int
    kernel: frozenset[Item]
    items: tuple[Item, ...] = ()
    transitions: dict[Symbol, "LR0State"] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.kernel)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LR0State) and self.kernel == other.kernel

    def __str__(self) -> str:
        lines = [f"State {self.id}"]
        for item in self.items:
            lines.append(f"  {item}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"LR0State({self.id}, {len(self.items)} items)"

    def reduce_items(self) -> Iterator[Item]:
        """Items in this state with the dot at the end."""
        return (item for item in self.items if item.at_end)


def closure(grammar: Grammar, kernel: frozenset[Item]) -> tuple[Item, ...]:
    """The LR(0) closure of *kernel*, kernel items first, deterministic order."""
    ordered: list[Item] = sorted(
        kernel, key=lambda item: (item.production.index, item.dot)
    )
    seen: set[Item] = set(ordered)
    index = 0
    while index < len(ordered):
        item = ordered[index]
        index += 1
        symbol = item.next_symbol
        if symbol is None or not symbol.is_nonterminal:
            continue
        assert isinstance(symbol, Nonterminal)
        for production in grammar.productions_of(symbol):
            fresh = start_item(production)
            if fresh not in seen:
                seen.add(fresh)
                ordered.append(fresh)
    return tuple(ordered)


class AdjacencyArrays:
    """Flat, id-indexed views of the transition graph for hot loops.

    The per-state ``transitions``/``predecessors`` dicts hash a
    :class:`~repro.grammar.symbols.Symbol` (a Python-level ``__hash__``)
    on every probe; the successor generators of the unifying search do
    millions of such probes. Here each symbol gets a dense integer code
    and the forward graph becomes one flat ``array('l')`` of target state
    ids (``-1`` for "no edge") indexed ``state_id * stride + code``; the
    reverse graph is a parallel flat tuple of predecessor-id tuples.
    """

    __slots__ = ("symbols", "code", "stride", "goto_flat", "pred_flat")

    def __init__(
        self,
        states: list["LR0State"],
        predecessors: dict[int, dict[Symbol, list["LR0State"]]],
    ) -> None:
        universe = sorted(
            {symbol for state in states for symbol in state.transitions}, key=str
        )
        self.symbols: tuple[Symbol, ...] = tuple(universe)
        self.code: dict[Symbol, int] = {
            symbol: code for code, symbol in enumerate(self.symbols)
        }
        stride = self.stride = len(self.symbols)
        goto_flat = array("l", bytes(0)) if stride == 0 else array(
            "l", [-1] * (len(states) * stride)
        )
        pred_flat: list[tuple[int, ...]] = [()] * (len(states) * stride)
        for state in states:
            base = state.id * stride
            for symbol, target in state.transitions.items():
                goto_flat[base + self.code[symbol]] = target.id
        for state_id, by_symbol in predecessors.items():
            base = state_id * stride
            for symbol, sources in by_symbol.items():
                pred_flat[base + self.code[symbol]] = tuple(
                    source.id for source in sources
                )
        self.goto_flat = goto_flat
        self.pred_flat: tuple[tuple[int, ...], ...] = tuple(pred_flat)

    def goto_id(self, state_id: int, symbol: Symbol) -> int:
        """Target state id of the *symbol*-edge out of *state_id*, or -1."""
        code = self.code.get(symbol)
        if code is None:
            return -1
        return self.goto_flat[state_id * self.stride + code]

    def predecessor_ids(self, state_id: int, symbol: Symbol) -> tuple[int, ...]:
        """Ids of states with a *symbol*-edge into *state_id*."""
        code = self.code.get(symbol)
        if code is None:
            return ()
        return self.pred_flat[state_id * self.stride + code]


class LR0Automaton:
    """The canonical collection of LR(0) item sets for a grammar."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.states: list[LR0State] = []
        self._by_kernel: dict[frozenset[Item], LR0State] = {}
        #: Reverse transition graph: predecessors[s.id][X] = states with an
        #: X-transition into s. Needed by the paper's reverse searches (§6).
        self.predecessors: dict[int, dict[Symbol, list[LR0State]]] = {}
        self._build()

    # ------------------------------------------------------------------ #

    @property
    def start_state(self) -> LR0State:
        return self.states[0]

    def _intern(self, kernel: frozenset[Item]) -> tuple[LR0State, bool]:
        state = self._by_kernel.get(kernel)
        if state is not None:
            return state, False
        state = LR0State(id=len(self.states), kernel=kernel)
        state.items = closure(self.grammar, kernel)
        self.states.append(state)
        self._by_kernel[kernel] = state
        self.predecessors[state.id] = {}
        return state, True

    def _build(self) -> None:
        initial_kernel = frozenset({start_item(self.grammar.start_production)})
        start, _ = self._intern(initial_kernel)
        worklist = [start]
        while worklist:
            state = worklist.pop()
            moves: dict[Symbol, set[Item]] = {}
            for item in state.items:
                symbol = item.next_symbol
                if symbol is None:
                    continue
                moves.setdefault(symbol, set()).add(item.advance())
            for symbol in sorted(moves, key=str):
                target, fresh = self._intern(frozenset(moves[symbol]))
                state.transitions[symbol] = target
                self.predecessors[target.id].setdefault(symbol, []).append(state)
                if fresh:
                    worklist.append(target)

    # ------------------------------------------------------------------ #

    @cached_property
    def arrays(self) -> AdjacencyArrays:
        """Array-backed adjacency, built lazily on first hot-path use.

        Lazy (rather than built in ``__init__``) because cache decoding
        (:mod:`repro.automaton.serialize`) reconstructs automatons via
        ``__new__`` and most cached consumers never touch the arrays.
        """
        return AdjacencyArrays(self.states, self.predecessors)

    def goto(self, state: LR0State, symbol: Symbol) -> LR0State | None:
        """The successor of *state* on *symbol*, or ``None``."""
        return state.transitions.get(symbol)

    def predecessors_on(self, state: LR0State, symbol: Symbol) -> list[LR0State]:
        """States with a *symbol*-transition into *state*."""
        return self.predecessors[state.id].get(symbol, [])

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[LR0State]:
        return iter(self.states)

    def __str__(self) -> str:
        return "\n\n".join(str(state) for state in self.states)
