"""ACTION/GOTO parse tables with precedence-based conflict resolution.

Table construction follows yacc/CUP conventions:

* a shift/reduce conflict on terminal ``t`` is resolved silently when both
  the production and ``t`` carry precedence: the higher level wins; on a
  tie, left associativity reduces, right associativity shifts, and
  nonassociativity turns the entry into an error;
* anything unresolved becomes a :class:`~repro.automaton.conflicts.Conflict`
  and falls back to the yacc defaults (shift beats reduce; the
  earlier-declared production beats the later one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.automaton.conflicts import Conflict, ConflictKind
from repro.automaton.items import Item
from repro.grammar import (
    END_OF_INPUT,
    Associativity,
    Nonterminal,
    Production,
    Terminal,
)


@dataclass(frozen=True)
class Shift:
    """Shift the terminal and move to ``state_id``."""

    state_id: int


@dataclass(frozen=True)
class Reduce:
    """Reduce by *production*."""

    production: Production


@dataclass(frozen=True)
class Accept:
    """Accept the input."""


@dataclass(frozen=True)
class ErrorAction:
    """An explicit error entry created by a %nonassoc tie."""


Action = Union[Shift, Reduce, Accept, ErrorAction]


@dataclass
class ParseTables:
    """ACTION and GOTO tables plus the unresolved conflicts.

    ``used_precedence`` records every terminal whose precedence level was
    consulted while silently resolving a shift/reduce conflict — both the
    lookahead terminal and the terminal that determined the production's
    level. Declarations outside this set never influenced the tables.
    """

    action: list[dict[Terminal, Action]]
    goto: list[dict[Nonterminal, int]]
    conflicts: list[Conflict]
    resolved_count: int = 0
    used_precedence: frozenset[Terminal] = frozenset()

    def action_for(self, state_id: int, terminal: Terminal) -> Action | None:
        return self.action[state_id].get(terminal)

    def goto_for(self, state_id: int, nonterminal: Nonterminal) -> int | None:
        return self.goto[state_id].get(nonterminal)


def _resolve_shift_reduce(
    automaton, terminal: Terminal, production: Production
) -> str | None:
    """Apply precedence declarations.

    Returns ``"shift"``, ``"reduce"``, or ``"error"`` when the declarations
    decide the conflict, and ``None`` when they do not.
    """
    precedence = automaton.grammar.precedence
    terminal_level = precedence.level_of(terminal)
    production_level = precedence.production_level(
        production.rhs, production.prec_override
    )
    if terminal_level is None or production_level is None:
        return None
    if production_level.rank > terminal_level.rank:
        return "reduce"
    if production_level.rank < terminal_level.rank:
        return "shift"
    if terminal_level.associativity is Associativity.LEFT:
        return "reduce"
    if terminal_level.associativity is Associativity.RIGHT:
        return "shift"
    return "error"


def build_tables(automaton) -> ParseTables:
    """Construct parse tables for a :class:`~repro.automaton.lalr.LALRAutomaton`."""
    grammar = automaton.grammar
    num_states = len(automaton.states)
    action: list[dict[Terminal, Action]] = [{} for _ in range(num_states)]
    goto: list[dict[Nonterminal, int]] = [{} for _ in range(num_states)]
    conflicts: list[Conflict] = []
    resolved = 0
    used_precedence: set[Terminal] = set()

    accept_item = Item(grammar.start_production, 1)  # START' -> S . $

    for state in automaton.states:
        # Transitions: shifts and gotos.
        for symbol, target in state.transitions.items():
            if symbol.is_terminal:
                assert isinstance(symbol, Terminal)
                if symbol == END_OF_INPUT and accept_item in state.items:
                    action[state.id][symbol] = Accept()
                else:
                    action[state.id][symbol] = Shift(target.id)
            else:
                assert isinstance(symbol, Nonterminal)
                goto[state.id][symbol] = target.id

        # Reductions, with conflict detection.
        reduce_items = [
            item
            for item in state.items
            if item.at_end and item.production.index != 0
        ]
        reducers: dict[Terminal, list[Item]] = {}
        for item in reduce_items:
            for terminal in automaton.lookahead(state, item):
                reducers.setdefault(terminal, []).append(item)

        for terminal, items in sorted(reducers.items(), key=lambda kv: str(kv[0])):
            existing = action[state.id].get(terminal)
            shift_items = _find_shift_items(state, terminal)

            # Reduce/reduce conflicts: every pair of distinct reduce items.
            for first_index in range(len(items)):
                for second_index in range(first_index + 1, len(items)):
                    conflicts.append(
                        Conflict(
                            state_id=state.id,
                            terminal=terminal,
                            kind=ConflictKind.REDUCE_REDUCE,
                            reduce_item=items[first_index],
                            other_item=items[second_index],
                        )
                    )

            # Pick the earliest production for the reduce entry (yacc default).
            chosen = min(items, key=lambda item: item.production.index)

            if isinstance(existing, (Shift, Accept)) and shift_items:
                resolution = _resolve_shift_reduce(
                    automaton, terminal, chosen.production
                )
                if resolution is None:
                    # Unresolved: record a conflict per (reduce item, shift
                    # item) pair, as the paper does (figure 7 counts two
                    # conflicts for one reduce item against two shift
                    # items); the shift wins by default.
                    for item in items:
                        for shift_item in shift_items:
                            conflicts.append(
                                Conflict(
                                    state_id=state.id,
                                    terminal=terminal,
                                    kind=ConflictKind.SHIFT_REDUCE,
                                    reduce_item=item,
                                    other_item=shift_item,
                                )
                            )
                elif resolution == "reduce":
                    action[state.id][terminal] = Reduce(chosen.production)
                    resolved += 1
                elif resolution == "error":
                    action[state.id][terminal] = ErrorAction()
                    resolved += 1
                else:  # Shift wins; keep the existing entry.
                    resolved += 1
                if resolution is not None:
                    used_precedence.add(terminal)
                    source = _production_prec_terminal(chosen.production)
                    if source is not None:
                        used_precedence.add(source)
            elif existing is None:
                action[state.id][terminal] = Reduce(chosen.production)

    conflicts.sort(key=lambda c: (c.state_id, str(c.terminal)))
    return ParseTables(
        action=action,
        goto=goto,
        conflicts=conflicts,
        resolved_count=resolved,
        used_precedence=frozenset(used_precedence),
    )


def _production_prec_terminal(production: Production) -> Terminal | None:
    """The terminal whose declaration determines *production*'s precedence."""
    if production.prec_override is not None:
        return production.prec_override
    for symbol in reversed(production.rhs):
        if isinstance(symbol, Terminal):
            return symbol
    return None


def _find_shift_items(state, terminal: Terminal) -> list[Item]:
    """All shift items of *state* whose next symbol is *terminal*."""
    return [item for item in state.items if item.next_symbol == terminal]
