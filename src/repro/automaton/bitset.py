"""Interned integer-bitset lookahead sets over a per-grammar terminal index.

The counterexample hot paths — the LALR lookahead fixpoint, the
lookahead-sensitive graph, and the unifying search's stage-1 lookahead
discipline — spend most of their time hashing, comparing, and unioning
small sets of :class:`~repro.grammar.symbols.Terminal` objects. This
module replaces those ``frozenset[Terminal]`` values with plain ``int``
bitmasks over a fixed :class:`TerminalTable`:

* membership is ``mask >> bit & 1``;
* union is ``|``; equality is ``==`` on ints; hashing is int hashing —
  all C-speed, no per-element work;
* the masks of one automaton are *interned*: every distinct lookahead
  set exists as exactly one :class:`LookaheadBitset` adapter object.

:class:`LookaheadBitset` is a :class:`collections.abc.Set` over
``Terminal`` so every existing consumer — report rendering, the
differential oracle's subset checks, tests comparing against
``frozenset`` literals — keeps working unchanged: ``in``, iteration,
``len``, ``==``/``<=``/``|``/``&`` against plain (frozen)sets, and a
hash equal to the hash of the equivalent ``frozenset`` (via
:meth:`collections.abc.Set._hash`). Iteration yields terminals in
table order, which is sorted by name, so ``sorted(...)``-based report
rendering is byte-identical to the frozenset era.

The table's terminal order is deterministic (name-sorted, end marker
included), which also makes the serialized v2 automaton format
(:mod:`repro.automaton.serialize`) stable across machines.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Iterable, Iterator

from repro.grammar import END_OF_INPUT, Grammar, Terminal


class TerminalTable:
    """A fixed bit-position index over one grammar's terminals.

    Bit ``i`` of a mask corresponds to ``self.terminals[i]``; terminals
    are ordered by name so masks, iteration, and serialized pools are
    deterministic. The end-of-input marker always has a bit.
    """

    __slots__ = ("terminals", "index", "_views")

    def __init__(self, terminals: Iterable[Terminal]) -> None:
        ordered = sorted(set(terminals) | {END_OF_INPUT}, key=lambda t: t.name)
        self.terminals: tuple[Terminal, ...] = tuple(ordered)
        self.index: dict[Terminal, int] = {
            terminal: bit for bit, terminal in enumerate(self.terminals)
        }
        #: Interning pool: mask -> the unique adapter for that mask.
        self._views: dict[int, "LookaheadBitset"] = {}

    @classmethod
    def for_grammar(cls, grammar: Grammar) -> "TerminalTable":
        return cls(grammar.terminals)

    # ------------------------------------------------------------------ #

    def bit_of(self, terminal: Terminal) -> int:
        """The single-bit mask for *terminal*, or ``0`` if unknown.

        Unknown terminals (e.g. a doctored conflict terminal in tests)
        get the empty mask so membership tests are simply always false,
        mirroring ``terminal in frozenset(...)`` semantics.
        """
        bit = self.index.get(terminal)
        return 0 if bit is None else 1 << bit

    def mask_of(self, terminals: Iterable[Terminal]) -> int:
        """The mask with one bit per known terminal in *terminals*."""
        if isinstance(terminals, LookaheadBitset) and terminals.table is self:
            return terminals.mask
        index = self.index
        mask = 0
        for terminal in terminals:
            bit = index.get(terminal)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def iter_mask(self, mask: int) -> Iterator[Terminal]:
        """Terminals of *mask* in table (name-sorted) order."""
        terminals = self.terminals
        while mask:
            low = mask & -mask
            yield terminals[low.bit_length() - 1]
            mask ^= low

    def view(self, mask: int) -> "LookaheadBitset":
        """The interned set-like adapter for *mask*."""
        view = self._views.get(mask)
        if view is None:
            view = self._views[mask] = LookaheadBitset(self, mask)
        return view


class LookaheadBitset(AbstractSet):
    """A frozen, set-like view of an ``int`` lookahead mask.

    Equal to (and hashing like) the ``frozenset`` of its terminals, so
    it is a drop-in replacement everywhere the automaton layer used to
    hand out frozensets. Same-table operations short-circuit to integer
    arithmetic; mixed operations fall back to generic set semantics and
    produce plain frozensets.
    """

    __slots__ = ("table", "mask", "_hash")

    def __init__(self, table: TerminalTable, mask: int) -> None:
        self.table = table
        self.mask = mask
        self._hash: int | None = None

    # -- core set protocol --------------------------------------------- #

    def __contains__(self, value: object) -> bool:
        bit = self.table.index.get(value)  # type: ignore[arg-type]
        return bit is not None and (self.mask >> bit) & 1 == 1

    def __iter__(self) -> Iterator[Terminal]:
        return self.table.iter_mask(self.mask)

    def __len__(self) -> int:
        return self.mask.bit_count()

    @classmethod
    def _from_iterable(cls, iterable: Iterable) -> frozenset:
        # Results of mixed-type set operations are plain frozensets; the
        # interned views are only ever minted by their TerminalTable.
        return frozenset(iterable)

    # -- fast paths ----------------------------------------------------- #

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LookaheadBitset) and other.table is self.table:
            return self.mask == other.mask
        return super().__eq__(other)

    def __le__(self, other: AbstractSet) -> bool:
        if isinstance(other, LookaheadBitset) and other.table is self.table:
            return self.mask & ~other.mask == 0
        return super().__le__(other)

    def __or__(self, other):
        if isinstance(other, LookaheadBitset) and other.table is self.table:
            return self.table.view(self.mask | other.mask)
        return super().__or__(other)

    def __and__(self, other):
        if isinstance(other, LookaheadBitset) and other.table is self.table:
            return self.table.view(self.mask & other.mask)
        return super().__and__(other)

    def __sub__(self, other):
        if isinstance(other, LookaheadBitset) and other.table is self.table:
            return self.table.view(self.mask & ~other.mask)
        return super().__sub__(other)

    def __hash__(self) -> int:
        # Set._hash computes the same value frozenset would for equal
        # elements, so views and frozensets interoperate as dict keys.
        cached = self._hash
        if cached is None:
            cached = self._hash = self._hash_value()
        return cached

    def _hash_value(self) -> int:
        return AbstractSet._hash(self)

    def __reduce__(self) -> tuple:
        # Cross-process transport (parallel explanation) does not carry
        # the table; unpickle as the equivalent plain frozenset.
        return (frozenset, (tuple(self),))

    def __repr__(self) -> str:
        names = ", ".join(sorted(t.name for t in self))
        return f"LookaheadBitset({{{names}}})"
