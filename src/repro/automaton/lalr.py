"""LALR(1) lookahead computation and the main automaton facade.

Lookaheads are computed for **every** item of every state (not just kernel
items) with the channel/propagation-graph algorithm:

* seed: the start item of state 0 carries ``{$}``;
* goto channel: an item's lookahead flows unchanged to its advanced item
  in the successor state;
* closure channel: for ``A -> α . B β`` with lookahead ``L``, each closure
  item ``B -> . γ`` in the same state spontaneously receives ``FIRST(β)``
  and additionally receives ``L`` when ``β`` is nullable.

The fixpoint of these channels is exactly the LALR(1) lookahead function,
and having it for closure items too is what the counterexample algorithms
need (the paper's lookahead-sensitive graph and the stage-1 constraint of
the unifying search both consult arbitrary items' lookahead sets).
"""

from __future__ import annotations

from functools import cached_property

from repro.automaton.bitset import LookaheadBitset, TerminalTable
from repro.automaton.items import Item
from repro.automaton.lr0 import LR0Automaton, LR0State
from repro.perf import metrics
from repro.grammar import (
    END_OF_INPUT,
    Grammar,
    GrammarAnalysis,
    Nonterminal,
    Production,
    Terminal,
)


def compute_lalr_lookaheads(
    automaton: LR0Automaton, analysis: GrammarAnalysis
) -> dict[tuple[int, Item], frozenset[Terminal]]:
    """LALR(1) lookahead sets for every ``(state id, item)`` pair.

    This is the straightforward ``frozenset``-based formulation. The
    automaton itself runs :func:`compute_lalr_lookahead_masks` (the same
    fixpoint over int bitmasks — the hot-path representation); this
    version is kept as the reference oracle the property tests check the
    bitmask fixpoint against.
    """
    lookaheads: dict[tuple[int, Item], set[Terminal]] = {
        (state.id, item): set() for state in automaton.states for item in state.items
    }
    #: propagation edges: source key -> target keys receiving everything
    propagate: dict[tuple[int, Item], list[tuple[int, Item]]] = {
        key: [] for key in lookaheads
    }

    start_key = (0, automaton.start_state.items[0])
    lookaheads[start_key].add(END_OF_INPUT)

    for state in automaton.states:
        for item in state.items:
            key = (state.id, item)
            symbol = item.next_symbol
            if symbol is None:
                continue
            # Goto channel.
            target_state = state.transitions[symbol]
            propagate[key].append((target_state.id, item.advance()))
            # Closure channel.
            if symbol.is_nonterminal:
                assert isinstance(symbol, Nonterminal)
                beta = item.production.rhs[item.dot + 1 :]
                spontaneous, beta_nullable = analysis.first_of_sequence_ex(beta)
                for production in automaton.grammar.productions_of(symbol):
                    closure_key = (state.id, Item(production, 0))
                    lookaheads[closure_key].update(spontaneous)
                    if beta_nullable:
                        propagate[key].append(closure_key)

    # Worklist fixpoint over the propagation graph.
    worklist: list[tuple[int, Item]] = [
        key for key, values in lookaheads.items() if values
    ]
    in_worklist = set(worklist)
    while worklist:
        key = worklist.pop()
        in_worklist.discard(key)
        source = lookaheads[key]
        for target in propagate[key]:
            target_set = lookaheads[target]
            before = len(target_set)
            target_set |= source
            if len(target_set) != before and target not in in_worklist:
                worklist.append(target)
                in_worklist.add(target)

    return {key: frozenset(values) for key, values in lookaheads.items()}


def compute_lalr_lookahead_masks(
    automaton: LR0Automaton,
    analysis: GrammarAnalysis,
    table: TerminalTable,
) -> dict[tuple[int, Item], int]:
    """LALR(1) lookaheads as int bitmasks over *table*.

    Identical channel structure to :func:`compute_lalr_lookaheads`, but
    the per-key value is a bitmask, so the fixpoint's union and
    changed-ness checks are single int operations instead of per-element
    set work. Must compute exactly ``mask_of(reference[key])`` for every
    key — the property tests enforce this.
    """
    masks: dict[tuple[int, Item], int] = {
        (state.id, item): 0 for state in automaton.states for item in state.items
    }
    propagate: dict[tuple[int, Item], list[tuple[int, Item]]] = {
        key: [] for key in masks
    }

    start_key = (0, automaton.start_state.items[0])
    masks[start_key] = table.bit_of(END_OF_INPUT)

    mask_of = table.mask_of
    for state in automaton.states:
        state_id = state.id
        transitions = state.transitions
        for item in state.items:
            key = (state_id, item)
            symbol = item.next_symbol
            if symbol is None:
                continue
            propagate[key].append((transitions[symbol].id, item.advance()))
            if symbol.is_nonterminal:
                assert isinstance(symbol, Nonterminal)
                beta = item.production.rhs[item.dot + 1 :]
                spontaneous, beta_nullable = analysis.first_of_sequence_ex(beta)
                spontaneous_mask = mask_of(spontaneous)
                for production in automaton.grammar.productions_of(symbol):
                    closure_key = (state_id, Item(production, 0))
                    masks[closure_key] |= spontaneous_mask
                    if beta_nullable:
                        propagate[key].append(closure_key)

    worklist: list[tuple[int, Item]] = [key for key, mask in masks.items() if mask]
    in_worklist = set(worklist)
    while worklist:
        key = worklist.pop()
        in_worklist.discard(key)
        source = masks[key]
        for target in propagate[key]:
            combined = masks[target] | source
            if combined != masks[target]:
                masks[target] = combined
                if target not in in_worklist:
                    worklist.append(target)
                    in_worklist.add(target)

    return masks


class LALRAutomaton:
    """An LALR(1) automaton: LR(0) skeleton plus per-item lookahead sets.

    This is the facade the rest of the library builds on. It exposes the
    state graph, lookahead queries, reverse-action lookup tables, the
    parse tables, and the conflict list.
    """

    #: Which table construction produced this automaton. The minimal/
    #: canonical LR(1) subclass (:mod:`repro.automaton.ielr`) and the
    #: serialization decoder override this per instance.
    algorithm: str = "lalr"

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.terminal_table = TerminalTable.for_grammar(grammar)
        with metrics.span("automaton"):
            with metrics.span("lr0"):
                self.lr0 = LR0Automaton(grammar)
            with metrics.span("lookaheads"):
                self.lookahead_masks: dict[tuple[int, Item], int] = (
                    compute_lalr_lookahead_masks(
                        self.lr0, self.analysis, self.terminal_table
                    )
                )
        metrics.count("automaton.states", len(self.lr0.states))
        metrics.count(
            "automaton.items",
            sum(len(state.items) for state in self.lr0.states),
        )

    @cached_property
    def analysis(self) -> GrammarAnalysis:
        """Nullable/FIRST analysis, computed on first use.

        Lazy so that an automaton rebuilt from the serialized cache
        (:mod:`repro.perf.cache`) only pays for the analysis when a
        consumer — the LASG, the lint engine — actually asks for it.
        """
        with metrics.span("analysis"):
            return GrammarAnalysis(self.grammar)

    # ------------------------------------------------------------------ #
    # State graph queries

    @property
    def states(self) -> list[LR0State]:
        return self.lr0.states

    @property
    def start_state(self) -> LR0State:
        return self.lr0.start_state

    @property
    def start_item(self) -> Item:
        """The item ``START' -> . S $`` of state 0."""
        return self.start_state.items[0]

    def goto(self, state: LR0State, symbol) -> LR0State | None:
        return self.lr0.goto(state, symbol)

    @cached_property
    def lookaheads(self) -> dict[tuple[int, Item], LookaheadBitset]:
        """Set-like lookahead views for every ``(state id, item)`` pair.

        Views are interned per distinct mask and compare/hash exactly
        like the frozensets they replaced, so report rendering and tests
        written against the frozenset era are unchanged. Built lazily:
        the hot paths consult :attr:`lookahead_masks` directly and never
        force this materialisation.
        """
        view = self.terminal_table.view
        return {key: view(mask) for key, mask in self.lookahead_masks.items()}

    def lookahead(self, state: LR0State | int, item: Item) -> LookaheadBitset:
        """The LALR(1) lookahead set of *item* within *state*."""
        state_id = state if isinstance(state, int) else state.id
        return self.lookaheads[(state_id, item)]

    def lookahead_mask(self, state_id: int, item: Item) -> int:
        """The lookahead of ``(state_id, item)`` as a raw int bitmask."""
        return self.lookahead_masks[(state_id, item)]

    def terminal_bit(self, terminal: Terminal) -> int:
        """Single-bit mask for *terminal* (0 when unknown to the grammar)."""
        return self.terminal_table.bit_of(terminal)

    @cached_property
    def _follow_parts_cache(self) -> dict[tuple[int, int], tuple[int, bool]]:
        return {}

    def follow_parts(self, production: Production, dot: int) -> tuple[int, bool]:
        """``(FIRST(rhs[dot+1:]) as a mask, nullable?)``, memoized.

        The two ingredients of the paper's *precise follow* set
        (``follow_L`` in §4): a production step from ``A -> α . B β``
        with context ``L`` carries lookahead ``FIRST(β) ∪ (L if β
        nullable)``. Keyed by ``(production.index, dot)`` — a handful of
        distinct keys per grammar, consulted hundreds of thousands of
        times by the LASG and the unifying search's reverse moves.
        """
        key = (production.index, dot)
        parts = self._follow_parts_cache.get(key)
        if parts is None:
            first, nullable = self.analysis.first_of_sequence_ex(
                production.rhs[dot + 1 :]
            )
            parts = (self.terminal_table.mask_of(first), nullable)
            self._follow_parts_cache[key] = parts
        return parts

    # ------------------------------------------------------------------ #
    # Derived artifacts (built lazily)

    @cached_property
    def tables(self):
        """ACTION/GOTO parse tables with precedence-based conflict resolution."""
        from repro.automaton.tables import build_tables

        with metrics.span("tables"):
            tables = build_tables(self)
        metrics.count("automaton.conflicts", len(tables.conflicts))
        return tables

    @property
    def conflicts(self):
        """Unresolved conflicts, in (state, terminal) order."""
        return self.tables.conflicts

    @cached_property
    def lookups(self):
        """Reverse-action lookup tables (paper §6 "Data structures")."""
        from repro.automaton.lookups import ReverseLookups

        return ReverseLookups(self)

    # ------------------------------------------------------------------ #

    def __str__(self) -> str:
        lines: list[str] = []
        for state in self.states:
            lines.append(f"State {state.id}")
            for item in state.items:
                las = ", ".join(sorted(str(t) for t in self.lookahead(state, item)))
                lines.append(f"  {item}  {{{las}}}")
            for symbol, target in sorted(
                state.transitions.items(), key=lambda pair: str(pair[0])
            ):
                lines.append(f"  on {symbol} -> state {target.id}")
            lines.append("")
        return "\n".join(lines)


def build_lalr(grammar: Grammar) -> LALRAutomaton:
    """Construct the LALR(1) automaton for *grammar*."""
    return LALRAutomaton(grammar)
