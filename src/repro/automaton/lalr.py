"""LALR(1) lookahead computation and the main automaton facade.

Lookaheads are computed for **every** item of every state (not just kernel
items) with the channel/propagation-graph algorithm:

* seed: the start item of state 0 carries ``{$}``;
* goto channel: an item's lookahead flows unchanged to its advanced item
  in the successor state;
* closure channel: for ``A -> α . B β`` with lookahead ``L``, each closure
  item ``B -> . γ`` in the same state spontaneously receives ``FIRST(β)``
  and additionally receives ``L`` when ``β`` is nullable.

The fixpoint of these channels is exactly the LALR(1) lookahead function,
and having it for closure items too is what the counterexample algorithms
need (the paper's lookahead-sensitive graph and the stage-1 constraint of
the unifying search both consult arbitrary items' lookahead sets).
"""

from __future__ import annotations

from functools import cached_property

from repro.automaton.items import Item
from repro.automaton.lr0 import LR0Automaton, LR0State
from repro.perf import metrics
from repro.grammar import (
    END_OF_INPUT,
    Grammar,
    GrammarAnalysis,
    Nonterminal,
    Production,
    Terminal,
)


def compute_lalr_lookaheads(
    automaton: LR0Automaton, analysis: GrammarAnalysis
) -> dict[tuple[int, Item], frozenset[Terminal]]:
    """LALR(1) lookahead sets for every ``(state id, item)`` pair."""
    lookaheads: dict[tuple[int, Item], set[Terminal]] = {
        (state.id, item): set() for state in automaton.states for item in state.items
    }
    #: propagation edges: source key -> target keys receiving everything
    propagate: dict[tuple[int, Item], list[tuple[int, Item]]] = {
        key: [] for key in lookaheads
    }

    start_key = (0, automaton.start_state.items[0])
    lookaheads[start_key].add(END_OF_INPUT)

    for state in automaton.states:
        for item in state.items:
            key = (state.id, item)
            symbol = item.next_symbol
            if symbol is None:
                continue
            # Goto channel.
            target_state = state.transitions[symbol]
            propagate[key].append((target_state.id, item.advance()))
            # Closure channel.
            if symbol.is_nonterminal:
                assert isinstance(symbol, Nonterminal)
                beta = item.production.rhs[item.dot + 1 :]
                spontaneous, beta_nullable = analysis.first_of_sequence_ex(beta)
                for production in automaton.grammar.productions_of(symbol):
                    closure_key = (state.id, Item(production, 0))
                    lookaheads[closure_key].update(spontaneous)
                    if beta_nullable:
                        propagate[key].append(closure_key)

    # Worklist fixpoint over the propagation graph.
    worklist: list[tuple[int, Item]] = [
        key for key, values in lookaheads.items() if values
    ]
    in_worklist = set(worklist)
    while worklist:
        key = worklist.pop()
        in_worklist.discard(key)
        source = lookaheads[key]
        for target in propagate[key]:
            target_set = lookaheads[target]
            before = len(target_set)
            target_set |= source
            if len(target_set) != before and target not in in_worklist:
                worklist.append(target)
                in_worklist.add(target)

    return {key: frozenset(values) for key, values in lookaheads.items()}


class LALRAutomaton:
    """An LALR(1) automaton: LR(0) skeleton plus per-item lookahead sets.

    This is the facade the rest of the library builds on. It exposes the
    state graph, lookahead queries, reverse-action lookup tables, the
    parse tables, and the conflict list.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        with metrics.span("automaton"):
            with metrics.span("lr0"):
                self.lr0 = LR0Automaton(grammar)
            with metrics.span("lookaheads"):
                self.lookaheads: dict[tuple[int, Item], frozenset[Terminal]] = (
                    compute_lalr_lookaheads(self.lr0, self.analysis)
                )
        metrics.count("automaton.states", len(self.lr0.states))
        metrics.count(
            "automaton.items",
            sum(len(state.items) for state in self.lr0.states),
        )

    @cached_property
    def analysis(self) -> GrammarAnalysis:
        """Nullable/FIRST analysis, computed on first use.

        Lazy so that an automaton rebuilt from the serialized cache
        (:mod:`repro.perf.cache`) only pays for the analysis when a
        consumer — the LASG, the lint engine — actually asks for it.
        """
        with metrics.span("analysis"):
            return GrammarAnalysis(self.grammar)

    # ------------------------------------------------------------------ #
    # State graph queries

    @property
    def states(self) -> list[LR0State]:
        return self.lr0.states

    @property
    def start_state(self) -> LR0State:
        return self.lr0.start_state

    @property
    def start_item(self) -> Item:
        """The item ``START' -> . S $`` of state 0."""
        return self.start_state.items[0]

    def goto(self, state: LR0State, symbol) -> LR0State | None:
        return self.lr0.goto(state, symbol)

    def lookahead(self, state: LR0State | int, item: Item) -> frozenset[Terminal]:
        """The LALR(1) lookahead set of *item* within *state*."""
        state_id = state if isinstance(state, int) else state.id
        return self.lookaheads[(state_id, item)]

    # ------------------------------------------------------------------ #
    # Derived artifacts (built lazily)

    @cached_property
    def tables(self):
        """ACTION/GOTO parse tables with precedence-based conflict resolution."""
        from repro.automaton.tables import build_tables

        with metrics.span("tables"):
            tables = build_tables(self)
        metrics.count("automaton.conflicts", len(tables.conflicts))
        return tables

    @property
    def conflicts(self):
        """Unresolved conflicts, in (state, terminal) order."""
        return self.tables.conflicts

    @cached_property
    def lookups(self):
        """Reverse-action lookup tables (paper §6 "Data structures")."""
        from repro.automaton.lookups import ReverseLookups

        return ReverseLookups(self)

    # ------------------------------------------------------------------ #

    def __str__(self) -> str:
        lines: list[str] = []
        for state in self.states:
            lines.append(f"State {state.id}")
            for item in state.items:
                las = ", ".join(sorted(str(t) for t in self.lookahead(state, item)))
                lines.append(f"  {item}  {{{las}}}")
            for symbol, target in sorted(
                state.transitions.items(), key=lambda pair: str(pair[0])
            ):
                lines.append(f"  on {symbol} -> state {target.id}")
            lines.append("")
        return "\n".join(lines)


def build_lalr(grammar: Grammar) -> LALRAutomaton:
    """Construct the LALR(1) automaton for *grammar*."""
    return LALRAutomaton(grammar)
