"""SLR(1) lookaheads: the coarse approximation LALR improves on.

SLR(1) uses ``FOLLOW(A)`` as the lookahead set of every reduce item
``A -> α .``. The library exposes this both to offer SLR tables and to
support tests of the containment chain

    canonical LR(1) lookaheads  ⊆  LALR(1) lookaheads  ⊆  SLR(1) lookaheads

(per LR(0) core) on arbitrary grammars.
"""

from __future__ import annotations

from repro.automaton.items import Item
from repro.automaton.lr0 import LR0Automaton
from repro.grammar import GrammarAnalysis, Nonterminal, Terminal


def compute_slr_lookaheads(
    automaton: LR0Automaton, analysis: GrammarAnalysis
) -> dict[tuple[int, Item], frozenset[Terminal]]:
    """SLR(1) lookahead sets for every reduce item of every state."""
    lookaheads: dict[tuple[int, Item], frozenset[Terminal]] = {}
    for state in automaton.states:
        for item in state.items:
            if item.at_end:
                lhs = item.production.lhs
                assert isinstance(lhs, Nonterminal)
                lookaheads[(state.id, item)] = analysis.follow[lhs]
    return lookaheads


def count_slr_conflicts(
    automaton: LR0Automaton, analysis: GrammarAnalysis
) -> int:
    """Number of (state, terminal) pairs with an SLR conflict."""
    lookaheads = compute_slr_lookaheads(automaton, analysis)
    conflicts = 0
    for state in automaton.states:
        reducers: dict[Terminal, int] = {}
        for item in state.items:
            if not item.at_end or item.production.index == 0:
                continue
            for terminal in lookaheads[(state.id, item)]:
                reducers[terminal] = reducers.get(terminal, 0) + 1
        for terminal, count in reducers.items():
            has_shift = terminal in state.transitions
            if count > 1 or (count >= 1 and has_shift):
                conflicts += 1
    return conflicts
