"""LR automata: LR(0) skeleton, LALR(1)/LR(1)/SLR(1) lookaheads, tables."""

from repro.automaton.compaction import compact_rows, compaction_stats, restore_rows
from repro.automaton.conflicts import Conflict, ConflictKind
from repro.automaton.ielr import (
    ConflictProvenance,
    IELRAutomaton,
    IELRState,
    ProvenanceVerdict,
    StateSplit,
    annotate_provenance,
    build_automaton,
    build_ielr,
    canonical_conflict_signatures,
    classify_conflicts,
    conflict_signatures,
)
from repro.automaton.items import Item, end_item, start_item
from repro.automaton.lalr import LALRAutomaton, build_lalr, compute_lalr_lookaheads
from repro.automaton.lookups import ReverseLookups
from repro.automaton.serialize import (
    automaton_from_dict,
    automaton_to_dict,
    dump_automaton,
    dump_tables,
    load_automaton,
    load_tables,
    tables_from_dict,
    tables_to_dict,
)
from repro.automaton.lr0 import LR0Automaton, LR0State, closure
from repro.automaton.lr1 import LR1Automaton, LR1State, lr1_closure
from repro.automaton.slr import compute_slr_lookaheads, count_slr_conflicts
from repro.automaton.tables import (
    Accept,
    Action,
    ErrorAction,
    ParseTables,
    Reduce,
    Shift,
    build_tables,
)

__all__ = [
    "Accept",
    "Action",
    "Conflict",
    "ConflictKind",
    "ConflictProvenance",
    "ErrorAction",
    "IELRAutomaton",
    "IELRState",
    "Item",
    "LALRAutomaton",
    "LR0Automaton",
    "LR0State",
    "LR1Automaton",
    "LR1State",
    "ParseTables",
    "ProvenanceVerdict",
    "Reduce",
    "ReverseLookups",
    "Shift",
    "StateSplit",
    "annotate_provenance",
    "automaton_from_dict",
    "automaton_to_dict",
    "build_automaton",
    "build_ielr",
    "build_lalr",
    "build_tables",
    "canonical_conflict_signatures",
    "classify_conflicts",
    "closure",
    "compact_rows",
    "compaction_stats",
    "conflict_signatures",
    "compute_lalr_lookaheads",
    "compute_slr_lookaheads",
    "count_slr_conflicts",
    "dump_automaton",
    "dump_tables",
    "end_item",
    "load_automaton",
    "load_tables",
    "lr1_closure",
    "restore_rows",
    "start_item",
    "tables_from_dict",
    "tables_to_dict",
]
