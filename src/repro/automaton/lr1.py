"""Canonical LR(1) construction.

Used as a reference implementation: the LALR(1) lookaheads computed by the
channel algorithm must equal, per LR(0) core, the union of canonical LR(1)
lookaheads over all states sharing that core. The test suite checks this
property on every small grammar in the corpus.

Canonical LR(1) state counts explode on large grammars, so this module is
kept out of the main pipeline and used for validation, for the optional
``table_algorithm="lr1"`` mode, and for the LR(k)-ness probes in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.automaton.items import Item, start_item
from repro.grammar import (
    END_OF_INPUT,
    Grammar,
    GrammarAnalysis,
    Nonterminal,
    Symbol,
    Terminal,
)

#: An LR(1) item: an LR(0) item plus one lookahead terminal.
LR1Item = tuple[Item, Terminal]


@dataclass
class LR1State:
    """A canonical LR(1) state: a closed set of (item, lookahead) pairs."""

    id: int
    kernel: frozenset[LR1Item]
    items: frozenset[LR1Item] = frozenset()
    transitions: dict[Symbol, "LR1State"] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.kernel)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LR1State) and self.kernel == other.kernel

    def core(self) -> frozenset[Item]:
        """The LR(0) core of this state."""
        return frozenset(item for item, _ in self.items)

    def lookaheads_of(self, item: Item) -> frozenset[Terminal]:
        return frozenset(la for itm, la in self.items if itm == item)


def lr1_closure(
    grammar: Grammar, analysis: GrammarAnalysis, kernel: frozenset[LR1Item]
) -> frozenset[LR1Item]:
    """The LR(1) closure of *kernel*."""
    result: set[LR1Item] = set(kernel)
    worklist = list(kernel)
    while worklist:
        item, lookahead = worklist.pop()
        symbol = item.next_symbol
        if symbol is None or not symbol.is_nonterminal:
            continue
        assert isinstance(symbol, Nonterminal)
        beta = item.production.rhs[item.dot + 1 :]
        context = analysis.first_of_sequence(beta, (lookahead,))
        for production in grammar.productions_of(symbol):
            fresh_item = start_item(production)
            for terminal in context:
                pair = (fresh_item, terminal)
                if pair not in result:
                    result.add(pair)
                    worklist.append(pair)
    return frozenset(result)


class LR1Automaton:
    """The canonical collection of LR(1) item sets."""

    def __init__(self, grammar: Grammar, max_states: int = 100_000) -> None:
        """Build the automaton; raises :class:`RuntimeError` past *max_states*."""
        self.grammar = grammar
        self.analysis = GrammarAnalysis(grammar)
        self.states: list[LR1State] = []
        self._by_kernel: dict[frozenset[LR1Item], LR1State] = {}
        self._max_states = max_states
        self._build()

    @property
    def start_state(self) -> LR1State:
        return self.states[0]

    def _intern(self, kernel: frozenset[LR1Item]) -> tuple[LR1State, bool]:
        state = self._by_kernel.get(kernel)
        if state is not None:
            return state, False
        if len(self.states) >= self._max_states:
            raise RuntimeError(
                f"canonical LR(1) construction exceeded {self._max_states} states"
            )
        state = LR1State(id=len(self.states), kernel=kernel)
        state.items = lr1_closure(self.grammar, self.analysis, kernel)
        self.states.append(state)
        self._by_kernel[kernel] = state
        return state, True

    def _build(self) -> None:
        initial = frozenset(
            {(start_item(self.grammar.start_production), END_OF_INPUT)}
        )
        start, _ = self._intern(initial)
        worklist = [start]
        while worklist:
            state = worklist.pop()
            moves: dict[Symbol, set[LR1Item]] = {}
            for item, lookahead in state.items:
                symbol = item.next_symbol
                if symbol is None:
                    continue
                moves.setdefault(symbol, set()).add((item.advance(), lookahead))
            for symbol in sorted(moves, key=str):
                target, fresh = self._intern(frozenset(moves[symbol]))
                state.transitions[symbol] = target
                if fresh:
                    worklist.append(target)

    # ------------------------------------------------------------------ #

    def merged_lookaheads(self) -> dict[tuple[frozenset[Item], Item], frozenset[Terminal]]:
        """Per LR(0) core, the union of LR(1) lookaheads (the LALR sets)."""
        merged: dict[tuple[frozenset[Item], Item], set[Terminal]] = {}
        for state in self.states:
            core = state.core()
            for item, lookahead in state.items:
                merged.setdefault((core, item), set()).add(lookahead)
        return {key: frozenset(values) for key, values in merged.items()}

    def has_conflicts(self) -> bool:
        """Whether any canonical LR(1) state has a shift/reduce or reduce/reduce conflict."""
        for state in self.states:
            reducers: dict[Terminal, set[Item]] = {}
            for item, lookahead in state.items:
                if item.at_end and item.production.index != 0:
                    reducers.setdefault(lookahead, set()).add(item)
            for terminal, items in reducers.items():
                if len(items) > 1:
                    return True
                if terminal in state.transitions and terminal != END_OF_INPUT:
                    return True
        return False

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[LR1State]:
        return iter(self.states)
