"""Reverse-action lookup tables (paper §6, "Data structures").

The counterexample searches repeatedly ask questions parser generators do
not normally answer:

* which ``(state, item)`` pairs reach this pair via a transition edge
  (**reverse transitions**);
* which items of the same state produced this closure item via a
  production step (**reverse production steps**, i.e. items of the form
  ``A -> α . B β`` for a closure item ``B -> . γ``);
* which states can reach a given conflict item at all (used to prune the
  shortest lookahead-sensitive path search).

:class:`ReverseLookups` materialises these tables once per automaton,
before the first conflict is processed, exactly as the implementation
described in the paper does.

The per-target ``reaching_pairs`` results are memoised in a *bounded*
LRU cache (``max_cache_entries``, default 128): each entry can hold a
large fraction of the automaton's ``(state, item)`` pairs, so an
unbounded cache on a long-lived automaton — a corpus sweep, a fuzz
campaign re-using one table — grows with every distinct conflict item
ever queried. Hits, misses, and evictions are tracked on the instance
(:meth:`ReverseLookups.cache_info`) and mirrored to the metrics layer
(``lookups.reaching.*``) when profiling is active.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.automaton.items import Item
from repro.automaton.lr0 import LR0State
from repro.perf import metrics
from repro.grammar import Nonterminal


class ReverseLookups:
    """Precomputed reverse transition / reverse production-step tables."""

    def __init__(self, automaton, max_cache_entries: int = 128) -> None:
        if max_cache_entries < 1:
            raise ValueError("max_cache_entries must be positive")
        self._automaton = automaton
        self.max_cache_entries = max_cache_entries
        #: (state_id, nonterminal) -> items ``A -> α . B β`` of that state.
        self.production_parents: dict[tuple[int, Nonterminal], list[Item]] = {}
        #: state_id -> items of the state, as a set for membership tests.
        self.item_sets: dict[int, frozenset[Item]] = {}
        self._reaching_cache: OrderedDict[
            tuple[int, Item], frozenset[tuple[int, Item]]
        ] = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        for state in automaton.states:
            self.item_sets[state.id] = frozenset(state.items)
            for item in state.items:
                symbol = item.next_symbol
                if symbol is not None and symbol.is_nonterminal:
                    assert isinstance(symbol, Nonterminal)
                    self.production_parents.setdefault(
                        (state.id, symbol), []
                    ).append(item)

    # ------------------------------------------------------------------ #

    def reverse_transitions(
        self, state: LR0State, item: Item
    ) -> list[tuple[LR0State, Item]]:
        """Predecessor ``(state, item)`` pairs via a transition edge.

        For an item with the dot past position 0, the predecessors are the
        retreated item in every state with a matching transition into
        *state*.
        """
        symbol = item.previous_symbol
        if symbol is None:
            return []
        retreated = item.retreat()
        lr0 = self._automaton.lr0
        states = lr0.states
        item_sets = self.item_sets
        result: list[tuple[LR0State, Item]] = []
        for pred_id in lr0.arrays.predecessor_ids(state.id, symbol):
            if retreated in item_sets[pred_id]:
                result.append((states[pred_id], retreated))
        return result

    def reverse_production_steps(self, state: LR0State, item: Item) -> list[Item]:
        """Items of *state* that can take a production step into *item*.

        Only items with the dot at position 0 have reverse production
        steps; the result is every item ``A -> α . B β`` of *state* where
        ``B`` is *item*'s left-hand side.
        """
        if not item.at_start:
            return []
        lhs = item.production.lhs
        assert isinstance(lhs, Nonterminal)
        return self.production_parents.get((state.id, lhs), [])

    # ------------------------------------------------------------------ #

    def reaching_pairs(
        self, state: LR0State, item: Item
    ) -> frozenset[tuple[int, Item]]:
        """All ``(state id, item)`` pairs that can reach ``(state, item)``.

        Walks reverse transitions and reverse production steps from the
        target pair. The result bounds the shortest lookahead-sensitive
        path search (§6 "Finding shortest lookahead-sensitive path") —
        any path vertex must be one of these pairs. Results are cached
        per target pair in a bounded LRU (see the module docstring).
        """
        cache_key = (state.id, item)
        cached = self._reaching_cache.get(cache_key)
        if cached is not None:
            self._reaching_cache.move_to_end(cache_key)
            self._cache_hits += 1
            metrics.count("lookups.reaching.hit")
            return cached
        self._cache_misses += 1
        metrics.count("lookups.reaching.miss")
        seen: set[tuple[int, Item]] = {cache_key}
        frontier: list[tuple[LR0State, Item]] = [(state, item)]
        while frontier:
            current_state, current_item = frontier.pop()
            for pred_state, pred_item in self.reverse_transitions(
                current_state, current_item
            ):
                key = (pred_state.id, pred_item)
                if key not in seen:
                    seen.add(key)
                    frontier.append((pred_state, pred_item))
            for parent_item in self.reverse_production_steps(
                current_state, current_item
            ):
                key = (current_state.id, parent_item)
                if key not in seen:
                    seen.add(key)
                    frontier.append((current_state, parent_item))
        result = frozenset(seen)
        self._reaching_cache[cache_key] = result
        if len(self._reaching_cache) > self.max_cache_entries:
            self._reaching_cache.popitem(last=False)
            self._cache_evictions += 1
            metrics.count("lookups.reaching.evicted")
        return result

    def states_reaching(self, state: LR0State, item: Item) -> frozenset[int]:
        """IDs of states that can reach ``(state, item)`` going backward."""
        return frozenset(
            state_id for state_id, _ in self.reaching_pairs(state, item)
        )

    # ------------------------------------------------------------------ #

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/eviction counters and current size of the LRU cache."""
        return {
            "entries": len(self._reaching_cache),
            "max_entries": self.max_cache_entries,
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "evictions": self._cache_evictions,
        }

    def clear_reaching_cache(self) -> None:
        """Drop every memoised ``reaching_pairs`` result (counters kept)."""
        self._reaching_cache.clear()
