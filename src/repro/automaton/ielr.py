"""Minimal LR(1) (IELR-style) construction and conflict provenance.

LALR(1) merges every pair of canonical LR(1) states that share an LR(0)
core. The merge unions their per-item lookahead sets, and that union can
*manufacture* reduce/reduce conflicts present in **no** canonical state
— the classic "mysterious" conflicts on grammars that are LR(1) but not
LALR(1). (Shift/reduce conflicts are never manufactured: shift actions
are determined by the core, so a lookahead contributed by some member
always conflicts *inside that member* already.)

This module builds the **minimal** LR(1) automaton: start from the
by-core partition of the canonical LR(1) states (that quotient *is* the
LALR automaton) and refine it only where merging misbehaves:

* **compatibility** — a class whose merged reduce lookaheads overlap on
  a terminal not covered by any single member is repacked greedily into
  maximal compatible buckets (Pager-style weak compatibility, restricted
  to the reduce/reduce case that merging can actually break);
* **congruence** — a quotient transition must be well defined, so a
  class whose members disagree on the *class* of a successor is split by
  successor signature; a worklist alternates the two splits to fixpoint.

The quotient automaton therefore has exactly the canonical LR(1)
conflict set while staying LALR-sized away from the trouble spots:
``|LALR| <= |IELR| <= |canonical LR(1)|``, with equality on the left
whenever the grammar is LALR(1). (The left inequality assumes a fully
productive grammar: LR(1) closure drops items whose lookahead context
is empty, so on grammars with nonproductive nonterminals the quotient
can be *smaller* than the LR(0)-based LALR automaton — it prunes dead
states that can never act in a parse.) Passing ``algorithm="lr1"`` keeps the
identity partition and yields the canonical automaton through the same
assembly, so both non-default constructions share one code path.

The result is assembled as an :class:`IELRAutomaton` — a
:class:`~repro.automaton.lalr.LALRAutomaton` whose states/lookaheads
were quotient-built rather than channel-computed — so parse-table
construction, the counterexample finder, serialization, and the cache
all consume it unchanged. Split states share an LR(0) kernel, so they
use :class:`IELRState`, which hashes/compares by identity instead of by
kernel; every consumer keys collections by ``state.id``.

Provenance (:func:`classify_conflicts`) runs the comparison in the
other direction: given an LALR automaton's conflicts, each one is
labelled a *genuine LR(1) conflict* (its signature survives in the
minimal automaton) or an *LALR merge artifact* (it vanishes, and the
verdict names the states the minimal construction split).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

from repro.automaton.bitset import TerminalTable
from repro.automaton.conflicts import Conflict, ConflictKind
from repro.automaton.items import Item
from repro.automaton.lalr import LALRAutomaton, build_lalr
from repro.automaton.lr0 import LR0Automaton, LR0State, closure
from repro.automaton.lr1 import LR1Automaton, LR1State
from repro.grammar import END_OF_INPUT, Grammar, Symbol, Terminal, normalize_algorithm
from repro.perf import metrics

#: Default canonical-LR(1) state bound for provenance classification;
#: deliberately tighter than :class:`LR1Automaton`'s construction default
#: because classification is a best-effort annotation, not a build step.
PROVENANCE_LR1_BOUND = 20_000


class IELRState(LR0State):
    """An LR(0)-shaped state of the minimal-LR(1) automaton.

    Split states share their kernel with their siblings, so the
    kernel-keyed ``__eq__``/``__hash__`` of :class:`LR0State` would
    collapse them; identity semantics keep them distinct. All automaton
    consumers key collections by ``state.id``, never by the state
    object, so the change is invisible outside construction.

    ``members`` records the canonical LR(1) state ids this quotient
    state merged — diagnostic only.
    """

    members: tuple[int, ...] = ()

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(frozen=True)
class StateSplit:
    """One LR(0) core the minimal construction kept apart.

    Attributes:
        kernel: The shared LR(0) kernel of the split states.
        state_ids: Ids of the minimal-LR(1) states carrying that kernel
            (always at least two).
    """

    kernel: frozenset[Item]
    state_ids: tuple[int, ...]


class IELRAutomaton(LALRAutomaton):
    """A minimal-LR(1) (or canonical-LR(1)) automaton.

    Structurally a :class:`LALRAutomaton` — LR(0)-shaped states plus a
    per-``(state id, item)`` lookahead-mask function — whose states came
    from the refined quotient of the canonical LR(1) collection instead
    of the by-core merge. Everything downstream (tables, conflicts,
    counterexample search, serialization) works unchanged.
    """

    def __init__(
        self,
        grammar: Grammar,
        algorithm: str,
        states: list[LR0State],
        lookahead_masks: dict[tuple[int, Item], int],
        terminal_table: TerminalTable,
        canonical_state_count: int,
    ) -> None:
        self.grammar = grammar
        self.algorithm = algorithm
        self.terminal_table = terminal_table
        self.lookahead_masks = lookahead_masks
        #: Size of the canonical LR(1) collection the quotient came from.
        self.canonical_state_count = canonical_state_count

        predecessors: dict[int, dict[Symbol, list[LR0State]]] = {
            state.id: {} for state in states
        }
        for state in states:
            for symbol, target in state.transitions.items():
                predecessors[target.id].setdefault(symbol, []).append(state)
        lr0 = LR0Automaton.__new__(LR0Automaton)
        lr0.grammar = grammar
        lr0.states = states
        # Split states share kernels; keep the first (smallest-id) one.
        # Only construction-time code consults this mapping.
        by_kernel: dict[frozenset[Item], LR0State] = {}
        for state in states:
            by_kernel.setdefault(state.kernel, state)
        lr0._by_kernel = by_kernel
        lr0.predecessors = predecessors
        self.lr0 = lr0

    @cached_property
    def splits(self) -> tuple[StateSplit, ...]:
        """Cores the construction split, each with its state ids."""
        groups: dict[frozenset[Item], list[int]] = {}
        for state in self.states:
            groups.setdefault(state.kernel, []).append(state.id)
        return tuple(
            StateSplit(kernel=kernel, state_ids=tuple(ids))
            for kernel, ids in groups.items()
            if len(ids) > 1
        )

    def split_states_for_kernel(self, kernel: frozenset[Item]) -> tuple[int, ...]:
        """Ids of the states sharing *kernel*, if that core was split."""
        for split in self.splits:
            if split.kernel == kernel:
                return split.state_ids
        return ()


# ---------------------------------------------------------------------- #
# Construction


def _reduce_masks_by_state(
    lr1: LR1Automaton, table: TerminalTable
) -> list[dict[Item, int]]:
    """Per canonical state, reduce-item lookaheads as bitmasks."""
    bit_of = table.bit_of
    result: list[dict[Item, int]] = []
    for state in lr1.states:
        masks: dict[Item, int] = {}
        for item, lookahead in state.items:
            if item.at_end and item.production.index != 0:
                masks[item] = masks.get(item, 0) | bit_of(lookahead)
        result.append(masks)
    return result


def _is_compatible(members: list[int], reduce_masks: list[dict[Item, int]]) -> bool:
    """Would merging *members* manufacture a reduce/reduce conflict?

    A merged overlap of two reduce items on terminal ``t`` is harmless
    only when some single member already carries ``t`` in **both**
    items' lookaheads (the conflict then exists canonically). Merging
    never manufactures shift/reduce conflicts — shifts are
    core-determined — so this is the complete compatibility condition.
    """
    items: list[Item] = []
    seen: set[Item] = set()
    for sid in members:
        for item in reduce_masks[sid]:
            if item not in seen:
                seen.add(item)
                items.append(item)
    if len(items) < 2:
        return True
    for first_index in range(len(items)):
        first = items[first_index]
        merged_first = 0
        for sid in members:
            merged_first |= reduce_masks[sid].get(first, 0)
        for second_index in range(first_index + 1, len(items)):
            second = items[second_index]
            merged_second = 0
            native = 0
            for sid in members:
                masks = reduce_masks[sid]
                merged_second |= masks.get(second, 0)
                native |= masks.get(first, 0) & masks.get(second, 0)
            if (merged_first & merged_second) & ~native:
                return False
    return True


def _repack(members: list[int], reduce_masks: list[dict[Item, int]]) -> list[list[int]]:
    """Greedily pack *members* into maximal compatible buckets.

    First-fit over members in canonical-id order: deterministic, and on
    the classic non-LALR grammars it reproduces the textbook minimal
    split (each trouble core splits into exactly the needed pieces).
    """
    buckets: list[list[int]] = []
    for sid in sorted(members):
        for bucket in buckets:
            bucket.append(sid)
            if _is_compatible(bucket, reduce_masks):
                break
            bucket.pop()
        else:
            buckets.append([sid])
    return buckets


def build_ielr(
    grammar: Grammar,
    algorithm: str = "ielr",
    max_lr1_states: int = 100_000,
    lr1: LR1Automaton | None = None,
) -> IELRAutomaton:
    """Build the minimal (``"ielr"``) or canonical (``"lr1"``) automaton.

    Args:
        grammar: The grammar to build for.
        algorithm: ``"ielr"`` refines the by-core partition only where
            merging manufactures conflicts; ``"lr1"`` keeps canonical
            states one-to-one.
        max_lr1_states: Bound on the canonical collection; exceeded
            bounds raise ``RuntimeError`` (as :class:`LR1Automaton`).
        lr1: An already-built canonical automaton for *grammar*, to
            share one construction across callers (the differential
            oracle builds it once and checks several properties).
    """
    algorithm = normalize_algorithm(algorithm)
    if algorithm == "lalr":
        raise ValueError("build_ielr builds 'ielr' or 'lr1'; use build_lalr")
    with metrics.span("automaton"):
        with metrics.span("ielr"):
            if lr1 is None:
                lr1 = LR1Automaton(grammar, max_states=max_lr1_states)
            automaton = _quotient(grammar, algorithm, lr1)
    metrics.count("automaton.states", len(automaton.states))
    metrics.count("ielr.canonical_states", len(lr1.states))
    metrics.count("ielr.splits", len(automaton.splits))
    return automaton


def _refine_partition(
    lr1: LR1Automaton, table: TerminalTable
) -> tuple[list[list[int] | None], list[int]]:
    """The minimal-LR(1) partition of the canonical states.

    Returns ``(classes, class_of)``: retired class slots are ``None``;
    ``class_of[sid]`` is the live class index of canonical state *sid*.
    """
    reduce_masks = _reduce_masks_by_state(lr1, table)

    by_core: dict[frozenset[Item], list[int]] = {}
    for state in lr1.states:
        by_core.setdefault(state.core(), []).append(state.id)
    # Deterministic initial order: classes sorted by their earliest
    # canonical member (state 0's core first).
    classes: list[list[int] | None] = [
        sorted(members) for members in sorted(by_core.values(), key=min)
    ]
    class_of: list[int] = [0] * len(lr1.states)
    for class_id, members in enumerate(classes):
        assert members is not None
        for sid in members:
            class_of[sid] = class_id

    def install(groups: list[list[int]], retired: int) -> None:
        classes[retired] = None
        for group in groups:
            fresh = len(classes)
            classes.append(group)
            for sid in group:
                class_of[sid] = fresh

    changed = True
    while changed:
        changed = False
        # Compatibility pass. A congruence split can reopen
        # compatibility (the member that covered an overlap natively may
        # leave the class), hence the outer fixpoint over both passes.
        for class_id in range(len(classes)):
            members = classes[class_id]
            if members is None or len(members) < 2:
                continue
            if _is_compatible(members, reduce_masks):
                continue
            install(_repack(members, reduce_masks), class_id)
            changed = True
        # Congruence pass: goto must be class-invariant.
        for class_id in range(len(classes)):
            members = classes[class_id]
            if members is None or len(members) < 2:
                continue
            symbols = sorted(lr1.states[members[0]].transitions, key=str)
            grouped: dict[tuple[int, ...], list[int]] = {}
            for sid in members:
                transitions = lr1.states[sid].transitions
                signature = tuple(
                    class_of[transitions[symbol].id] for symbol in symbols
                )
                grouped.setdefault(signature, []).append(sid)
            if len(grouped) > 1:
                install(list(grouped.values()), class_id)
                changed = True
    return classes, class_of


def _quotient(grammar: Grammar, algorithm: str, lr1: LR1Automaton) -> IELRAutomaton:
    """Assemble the quotient automaton for the chosen partition."""
    table = TerminalTable.for_grammar(grammar)

    if algorithm == "lr1":
        # Identity partition: the canonical automaton itself.
        classes: list[list[int] | None] = [[state.id] for state in lr1.states]
        class_of = list(range(len(lr1.states)))
    else:
        classes, class_of = _refine_partition(lr1, table)

    # Number the quotient states with the same traversal the LR(0)
    # builder uses (LIFO worklist, sorted symbols). When nothing splits,
    # the class graph is isomorphic to the LR(0) graph, so minimal-LR(1)
    # state ids coincide with LALR ids — diffs stay readable.
    state_ids: dict[int, int] = {}  # class index -> quotient state id
    states: list[IELRState] = []
    representative: list[int] = []  # quotient id -> a canonical member id

    def intern(class_id: int) -> tuple[IELRState, bool]:
        quotient_id = state_ids.get(class_id)
        if quotient_id is not None:
            return states[quotient_id], False
        members = classes[class_id]
        assert members is not None
        member = lr1.states[members[0]]
        kernel = frozenset(item for item, _ in member.kernel)
        state = IELRState(
            id=len(states), kernel=kernel, items=closure(grammar, kernel)
        )
        state.members = tuple(members)
        state_ids[class_id] = state.id
        states.append(state)
        representative.append(members[0])
        return state, True

    start, _ = intern(class_of[0])
    worklist = [start]
    while worklist:
        state = worklist.pop()
        member = lr1.states[representative[state.id]]
        for symbol in sorted(member.transitions, key=str):
            target, fresh = intern(class_of[member.transitions[symbol].id])
            state.transitions[symbol] = target
            if fresh:
                worklist.append(target)

    bit_of = table.bit_of
    lookahead_masks: dict[tuple[int, Item], int] = {}
    for state in states:
        item_masks: dict[Item, int] = {item: 0 for item in state.items}
        for sid in state.members:
            for item, lookahead in lr1.states[sid].items:
                item_masks[item] |= bit_of(lookahead)
        state_id = state.id
        for item, mask in item_masks.items():
            lookahead_masks[(state_id, item)] = mask

    return IELRAutomaton(
        grammar=grammar,
        algorithm=algorithm,
        states=list(states),
        lookahead_masks=lookahead_masks,
        terminal_table=table,
        canonical_state_count=len(lr1.states),
    )


def build_automaton(
    grammar: Grammar,
    algorithm: str | None = None,
    max_lr1_states: int = 100_000,
) -> LALRAutomaton:
    """Build *grammar*'s automaton with the requested construction.

    *algorithm* defaults to the grammar's own ``table_algorithm``
    (the DSL ``%algorithm`` directive, ``"lalr"`` when absent).
    """
    algorithm = normalize_algorithm(
        algorithm if algorithm is not None else grammar.table_algorithm
    )
    if algorithm == "lalr":
        return build_lalr(grammar)
    return build_ielr(grammar, algorithm=algorithm, max_lr1_states=max_lr1_states)


# ---------------------------------------------------------------------- #
# Conflict signatures and provenance


#: State-independent conflict identity used to compare constructions:
#: ``("rr", terminal name, {(prod index, dot), (prod index, dot)})`` or
#: ``("sr", terminal name, (prod index, dot))`` — the shift side of a
#: shift/reduce conflict is determined by the terminal, so only the
#: reduce item identifies it.
ConflictSignature = tuple

def _item_key(item: Item) -> tuple[int, int]:
    return (item.production.index, item.dot)


def signature_of(conflict: Conflict) -> ConflictSignature:
    """The state-independent signature of a :class:`Conflict`."""
    if conflict.kind is ConflictKind.REDUCE_REDUCE:
        return (
            "rr",
            conflict.terminal.name,
            frozenset({_item_key(conflict.reduce_item), _item_key(conflict.other_item)}),
        )
    return ("sr", conflict.terminal.name, _item_key(conflict.reduce_item))


def conflict_signatures(automaton: LALRAutomaton) -> frozenset[ConflictSignature]:
    """Raw (pre-precedence) conflict signatures of an automaton.

    Works for any LALR-shaped automaton — the by-core merge or a
    quotient from this module — by consulting the lookahead-mask
    function directly, so silently precedence-resolved conflicts still
    count. This is the set the differential oracle compares across
    constructions.
    """
    table = automaton.terminal_table
    iter_mask = table.iter_mask
    signatures: set[ConflictSignature] = set()
    for state in automaton.states:
        state_id = state.id
        reduce_items = [
            item
            for item in state.items
            if item.at_end and item.production.index != 0
        ]
        shift_mask = table.mask_of(
            symbol
            for symbol in state.transitions
            if symbol.is_terminal and symbol != END_OF_INPUT
        )
        masks = [
            automaton.lookahead_masks[(state_id, item)] for item in reduce_items
        ]
        for index, item in enumerate(reduce_items):
            for terminal in iter_mask(masks[index] & shift_mask):
                signatures.add(("sr", terminal.name, _item_key(item)))
            for other_index in range(index + 1, len(reduce_items)):
                overlap = masks[index] & masks[other_index]
                if not overlap:
                    continue
                pair = frozenset(
                    {_item_key(item), _item_key(reduce_items[other_index])}
                )
                for terminal in iter_mask(overlap):
                    signatures.add(("rr", terminal.name, pair))
    return frozenset(signatures)


def canonical_conflict_signatures(lr1: LR1Automaton) -> frozenset[ConflictSignature]:
    """Raw conflict signatures of a canonical LR(1) automaton."""
    signatures: set[ConflictSignature] = set()
    for state in lr1.states:
        reducers: dict[Terminal, list[Item]] = {}
        for item, lookahead in state.items:
            if item.at_end and item.production.index != 0:
                items = reducers.setdefault(lookahead, [])
                if item not in items:
                    items.append(item)
        for terminal, items in reducers.items():
            shifted = terminal in state.transitions and terminal != END_OF_INPUT
            for index, item in enumerate(items):
                if shifted:
                    signatures.add(("sr", terminal.name, _item_key(item)))
                for other in items[index + 1 :]:
                    signatures.add(
                        (
                            "rr",
                            terminal.name,
                            frozenset({_item_key(item), _item_key(other)}),
                        )
                    )
    return frozenset(signatures)


class ProvenanceVerdict(enum.Enum):
    """Why a conflict exists, relative to the construction lattice."""

    GENUINE = "genuine LR(1) conflict"
    MERGE_ARTIFACT = "LALR merge artifact"
    UNKNOWN = "undetermined"


@dataclass(frozen=True)
class ConflictProvenance:
    """Provenance verdict attached to one conflict report.

    Attributes:
        verdict: Genuine, merge artifact, or undetermined (canonical
            bound exceeded).
        lalr_state: The LALR conflict state the verdict is about.
        split_states: For merge artifacts, the minimal-LR(1) state ids
            the conflict core was split into.
        detail: One-line human explanation.
    """

    verdict: ProvenanceVerdict
    lalr_state: int | None = None
    split_states: tuple[int, ...] = field(default=())
    detail: str = ""

    def describe(self) -> str:
        if self.detail:
            return f"{self.verdict.value} — {self.detail}"
        return self.verdict.value


def classify_conflicts(
    automaton: LALRAutomaton,
    max_lr1_states: int = PROVENANCE_LR1_BOUND,
    minimal: IELRAutomaton | None = None,
) -> dict[Conflict, ConflictProvenance]:
    """Label each of *automaton*'s conflicts genuine or merge artifact.

    For an LALR automaton, the minimal-LR(1) construction is built (or
    taken from *minimal*) and each conflict's signature is looked up in
    it: present means the conflict survives canonical LR(1); absent
    means core merging manufactured it, and the verdict names the states
    the minimal construction split. Automata already built with a
    conflict-exact construction (``ielr``/``lr1``) classify every
    conflict as genuine outright. When the canonical collection exceeds
    *max_lr1_states*, every conflict gets an UNKNOWN verdict instead of
    an error.
    """
    conflicts = automaton.tables.conflicts
    if not conflicts:
        return {}
    algorithm = getattr(automaton, "algorithm", "lalr")
    if algorithm != "lalr":
        detail = "construction has exact LR(1) conflict behavior"
        return {
            conflict: ConflictProvenance(
                verdict=ProvenanceVerdict.GENUINE,
                lalr_state=conflict.state_id,
                detail=detail,
            )
            for conflict in conflicts
        }
    if minimal is None:
        try:
            minimal = build_ielr(
                automaton.grammar, algorithm="ielr", max_lr1_states=max_lr1_states
            )
        except RuntimeError:
            detail = (
                f"canonical LR(1) collection exceeds {max_lr1_states} states; "
                "provenance not computed"
            )
            return {
                conflict: ConflictProvenance(
                    verdict=ProvenanceVerdict.UNKNOWN,
                    lalr_state=conflict.state_id,
                    detail=detail,
                )
                for conflict in conflicts
            }
    genuine = conflict_signatures(minimal)
    result: dict[Conflict, ConflictProvenance] = {}
    for conflict in conflicts:
        if signature_of(conflict) in genuine:
            result[conflict] = ConflictProvenance(
                verdict=ProvenanceVerdict.GENUINE,
                lalr_state=conflict.state_id,
                detail="the conflict survives canonical LR(1); "
                "no state splitting removes it",
            )
            continue
        kernel = automaton.states[conflict.state_id].kernel
        split_ids = minimal.split_states_for_kernel(kernel)
        if split_ids:
            states_text = " and ".join(f"#{sid}" for sid in split_ids)
            detail = (
                f"state #{conflict.state_id} splits into minimal-LR(1) "
                f"states {states_text}; the conflict vanishes"
            )
        else:
            detail = "the conflict vanishes under minimal LR(1)"
        result[conflict] = ConflictProvenance(
            verdict=ProvenanceVerdict.MERGE_ARTIFACT,
            lalr_state=conflict.state_id,
            split_states=split_ids,
            detail=detail,
        )
    return result


def annotate_provenance(
    reports,
    automaton: LALRAutomaton,
    max_lr1_states: int = PROVENANCE_LR1_BOUND,
) -> dict[Conflict, ConflictProvenance]:
    """Attach provenance verdicts to finder reports, in place.

    *reports* is an iterable of :class:`~repro.core.finder.FinderReport`;
    each report whose conflict was classified gets its ``provenance``
    field set. Returns the classification mapping for callers that want
    aggregate counts.
    """
    mapping = classify_conflicts(automaton, max_lr1_states=max_lr1_states)
    for report in reports:
        provenance = mapping.get(report.conflict)
        if provenance is not None:
            report.provenance = provenance
    return mapping
