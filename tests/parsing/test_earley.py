"""Tests for the Earley sentential-form parser and derivation counting."""

import pytest

from repro.grammar import Nonterminal, Terminal, load_grammar
from repro.parsing import EarleyParser, LRParser


def symbols(text: str, grammar):
    nonterminal_names = {str(n) for n in grammar.nonterminals}
    result = []
    for name in text.split():
        if name in nonterminal_names:
            result.append(Nonterminal(name))
        else:
            result.append(Terminal(name))
    return result


@pytest.fixture
def earley(expr_grammar):
    return EarleyParser(expr_grammar)


class TestRecognition:
    def test_terminal_strings(self, expr_grammar, earley):
        e = Nonterminal("e")
        assert earley.recognizes(e, symbols("ID + ID", expr_grammar))
        assert earley.recognizes(e, symbols("( ID ) * ID", expr_grammar))
        assert not earley.recognizes(e, symbols("ID +", expr_grammar))
        assert not earley.recognizes(e, symbols("+ ID", expr_grammar))

    def test_sentential_forms(self, expr_grammar, earley):
        e = Nonterminal("e")
        assert earley.recognizes(e, symbols("e + t", expr_grammar))
        assert earley.recognizes(e, symbols("t * f", expr_grammar))
        assert earley.recognizes(e, symbols("( e )", expr_grammar))
        assert not earley.recognizes(e, symbols("t + e", expr_grammar))

    def test_single_symbol_needs_a_step(self, expr_grammar, earley):
        # "e" alone is a zero-step derivation; recognizes() requires >= 1.
        e = Nonterminal("e")
        assert earley.recognizes(e, [Nonterminal("t")])
        assert not earley.recognizes(e, [Nonterminal("e")])

    def test_empty_input(self):
        grammar = load_grammar("s : 'a' | %empty ;")
        earley = EarleyParser(grammar)
        assert earley.recognizes(Nonterminal("s"), [])

    def test_nullable_chains(self):
        grammar = load_grammar("s : a b 'x' ; a : %empty ; b : a a ;")
        earley = EarleyParser(grammar)
        assert earley.recognizes(Nonterminal("s"), [Terminal("x")])


class TestAgreementWithLR:
    """On conflict-free grammars, Earley and LR agree on membership."""

    @pytest.mark.parametrize(
        "tokens,expected",
        [
            ("ID", True),
            ("ID + ID * ID", True),
            ("( ID + ID ) * ID", True),
            ("ID ID", False),
            ("( )", False),
            ("ID * * ID", False),
        ],
    )
    def test_membership_agreement(self, expr_grammar, earley, tokens, expected):
        lr = LRParser(expr_grammar)
        token_list = tokens.split()
        assert lr.accepts(token_list) == expected
        assert (
            earley.recognizes(expr_grammar.start, symbols(tokens, expr_grammar))
            == expected
        )


class TestDerivationCounting:
    def test_unambiguous_counts_one(self, expr_grammar, earley):
        e = Nonterminal("e")
        assert earley.count_derivations(e, symbols("ID + ID", expr_grammar), 5) == 1

    def test_classic_ambiguity(self, ambiguous_expr):
        earley = EarleyParser(ambiguous_expr)
        e = Nonterminal("e")
        form = symbols("ID + ID + ID", ambiguous_expr)
        assert earley.count_derivations(e, form, limit=5) == 2
        assert earley.is_ambiguous_form(e, form)

    def test_mixed_operator_ambiguity(self, ambiguous_expr):
        earley = EarleyParser(ambiguous_expr)
        e = Nonterminal("e")
        form = symbols("ID + ID * ID", ambiguous_expr)
        assert earley.is_ambiguous_form(e, form)

    def test_sentential_form_ambiguity(self, ambiguous_expr):
        earley = EarleyParser(ambiguous_expr)
        e = Nonterminal("e")
        form = [e, Terminal("+"), e, Terminal("+"), e]
        trees = earley.derivations(e, form, limit=10)
        assert len(trees) == 2
        renderings = {t.bracketed() for t in trees}
        assert len(renderings) == 2

    def test_dangling_else_counterexample(self, figure1):
        earley = EarleyParser(figure1)
        stmt = Nonterminal("stmt")
        form = symbols("IF expr THEN IF expr THEN stmt ELSE stmt", figure1)
        assert earley.is_ambiguous_form(stmt, form)

    def test_dangling_else_unambiguous_form(self, figure1):
        earley = EarleyParser(figure1)
        stmt = Nonterminal("stmt")
        form = symbols("IF expr THEN stmt ELSE stmt", figure1)
        assert earley.count_derivations(stmt, form, limit=5) == 1

    def test_limit_caps_enumeration(self, ambiguous_expr):
        earley = EarleyParser(ambiguous_expr)
        e = Nonterminal("e")
        form = symbols("ID + ID + ID + ID + ID", ambiguous_expr)
        assert earley.count_derivations(e, form, limit=3) == 3

    def test_cyclic_grammar_terminates(self):
        grammar = load_grammar("s : s | 'a' ;")
        earley = EarleyParser(grammar)
        trees = earley.derivations(Nonterminal("s"), [Terminal("a")], limit=4)
        # a, s -> [s -> a], s -> [s -> [s -> a]], ... up to the cap.
        assert len(trees) == 4

    def test_nullable_siblings_do_not_burn_the_cycle_budget(self):
        # Fuzz seed 113 regression: all three n1's of `n0 : n1 n1 n1` over
        # the empty string share the chart key (n1, 0, 0). The re-entry
        # guard used to count those *siblings* against the budget meant for
        # recursive descent, so the all-epsilon tree was never assembled and
        # a genuinely ambiguous form counted < 2 derivations — making the
        # validator reject the ambiguity walk's correct witness.
        grammar = load_grammar("n0 : n1 n1 n1 ; n1 : n0 | %empty ;")
        earley = EarleyParser(grammar)
        n0 = Nonterminal("n0")
        assert earley.is_ambiguous_form(n0, [], step_budget=50_000)
        for limit in (1, 2, 3, 5):
            trees = earley.derivations(n0, [], limit=limit)
            assert len(trees) == limit
            assert len(set(trees)) == limit

    def test_nullable_siblings_unambiguous_control(self):
        # Same sibling shape, but without the cycle there is exactly one
        # derivation of '' — the fix must not overcount either.
        grammar = load_grammar("n0 : n1 n1 n1 ; n1 : %empty ;")
        earley = EarleyParser(grammar)
        assert earley.count_derivations(Nonterminal("n0"), [], limit=5) == 1

    def test_count_agrees_with_enumeration(self, ambiguous_expr):
        # count_derivations() answers by saturating fixpoint, not by
        # enumerating trees — the two must agree wherever enumeration
        # is tractable.
        earley = EarleyParser(ambiguous_expr)
        e = Nonterminal("e")
        for text in ("ID", "ID + ID", "ID + ID + ID", "ID + ID + ID + ID"):
            form = symbols(text, ambiguous_expr)
            for limit in (1, 2, 3, 5):
                counted = earley.count_derivations(e, form, limit=limit)
                enumerated = len(earley.derivations(e, form, limit=limit))
                assert counted == enumerated, (text, limit)

    def test_trees_are_valid_derivations(self, ambiguous_expr):
        earley = EarleyParser(ambiguous_expr)
        e = Nonterminal("e")
        form = symbols("ID + ID + ID", ambiguous_expr)
        for tree in earley.derivations(e, form, limit=5):
            assert tree.symbol == e
            assert list(tree.leaf_symbols()) == form


class TestBudgetGovernance:
    """The verifier honours the unified budget like every other stage."""

    def test_chart_stops_on_exhausted_node_budget(self):
        from repro.robust import Budget, BudgetExhausted

        grammar = load_grammar("s : s 'a' | 'a' ;")
        parser = EarleyParser(grammar)
        tokens = [Terminal("'a'")] * 5
        with pytest.raises(BudgetExhausted):
            parser.recognizes(Nonterminal("s"), tokens, budget=Budget(max_nodes=0))

    def test_chart_stops_on_expired_deadline(self):
        from repro.robust import Budget, SearchTimeout

        grammar = load_grammar("s : s 'a' | 'a' ;")
        parser = EarleyParser(grammar)
        tokens = [Terminal("'a'")] * 5
        with pytest.raises(SearchTimeout):
            parser.recognizes(
                Nonterminal("s"), tokens, budget=Budget(time_limit=0.0)
            )

    def test_step_budget_error_is_budget_exhausted(self):
        from repro.parsing.earley import DerivationBudgetExceeded
        from repro.robust import BudgetExhausted

        # The verifier's step-cap error now lives in the structured
        # hierarchy, so budget-aware callers can catch it uniformly.
        assert issubclass(DerivationBudgetExceeded, BudgetExhausted)
