"""Tests for the table-driven LR parser."""

import pytest

from repro.grammar import Terminal, load_grammar
from repro.parsing import (
    ConflictedGrammarError,
    LRParser,
    ParseError,
    ParserLoopError,
    TraceEntry,
)


@pytest.fixture
def parser(expr_grammar):
    return LRParser(expr_grammar)


class TestAcceptance:
    @pytest.mark.parametrize(
        "tokens",
        [
            ["ID"],
            ["ID", "+", "ID"],
            ["ID", "*", "ID", "+", "ID"],
            ["(", "ID", ")"],
            ["(", "ID", "+", "ID", ")", "*", "ID"],
        ],
    )
    def test_accepts_valid(self, parser, tokens):
        assert parser.accepts(tokens)

    @pytest.mark.parametrize(
        "tokens",
        [
            [],
            ["+"],
            ["ID", "+"],
            ["ID", "ID"],
            ["(", "ID"],
            ["ID", ")"],
        ],
    )
    def test_rejects_invalid(self, parser, tokens):
        assert not parser.accepts(tokens)

    def test_terminal_objects_accepted(self, parser):
        assert parser.accepts([Terminal("ID"), Terminal("+"), Terminal("ID")])


class TestTrees:
    def test_tree_yield_is_input(self, parser):
        tokens = ["ID", "+", "ID", "*", "ID"]
        tree = parser.parse(tokens)
        leaves = [str(s) for s in tree.leaf_symbols()]
        assert leaves == tokens

    def test_precedence_shape(self, parser):
        # ID + ID * ID: the * binds tighter in this stratified grammar.
        tree = parser.parse(["ID", "+", "ID", "*", "ID"])
        assert str(tree.symbol) == "e"
        assert str(tree.children[0].symbol) == "e"
        assert str(tree.children[2].symbol) == "t"
        assert len(tree.children[2].children) == 3  # t * f

    def test_left_associativity_shape(self):
        grammar = load_grammar("%left '+'\ne : e '+' e | ID ;")
        tree = LRParser(grammar).parse(["ID", "+", "ID", "+", "ID"])
        # Left associativity: ((ID + ID) + ID).
        assert len(tree.children[0].children) == 3
        assert tree.children[2].is_leaf or len(tree.children[2].children) == 1

    def test_tree_metrics(self, parser):
        tree = parser.parse(["ID"])
        assert tree.size() >= 4  # e -> t -> f -> ID
        assert tree.depth() == 4
        assert tree.bracketed().count("[") == 3


class TestErrors:
    def test_parse_error_details(self, parser):
        with pytest.raises(ParseError) as info:
            parser.parse(["ID", "+", "+"])
        error = info.value
        assert error.position == 2
        assert str(error.terminal) == "+"
        assert any(str(t) in ("ID", "(") for t in error.expected)

    def test_error_message_mentions_expected(self, parser):
        with pytest.raises(ParseError, match="expected one of"):
            parser.parse(["+"])

    def test_conflicted_grammar_rejected(self, figure1):
        with pytest.raises(ConflictedGrammarError):
            LRParser(figure1)

    def test_conflicted_grammar_with_defaults(self, figure1):
        parser = LRParser(figure1, allow_conflicts=True)
        # Yacc defaults (shift wins): the dangling else parses.
        assign = "arr [ DIGIT ] := DIGIT".split()
        tokens = (
            ["IF", "DIGIT", "THEN", "IF", "DIGIT", "THEN"]
            + assign
            + ["ELSE"]
            + assign
        )
        assert parser.accepts(tokens)


class TestLivelock:
    """Regression: fuzz seed 3 live-locked the driver (found by repro.verify).

    With ``allow_conflicts=True``, yacc-default resolution over a grammar
    with epsilon/derivation cycles can pick a reduction whose goto
    re-enters the same state, so the parser reduces forever without
    consuming a token. The driver must detect this and raise instead of
    hanging.
    """

    #: The fuzz seed-3 grammar verbatim: n2 is nullable and
    #: self-concatenating, so after the right prefix the parser
    #: default-reduces `n2 ::= %empty` in place forever.
    LIVELOCK_GRAMMAR = """
        n0 : %empty | a d n0 n2 | n0 n0 d a ;
        n2 : d n2 b a | %empty | %empty | n2 n2 ;
        n1 : n0 ;
    """

    #: The shortest input that reaches the cycle (found exhaustively).
    LIVELOCK_INPUT = "a d d b a d b a".split()

    def test_livelock_detected_not_hung(self):
        grammar = load_grammar(self.LIVELOCK_GRAMMAR)
        parser = LRParser(grammar, allow_conflicts=True)
        with pytest.raises(ParserLoopError, match="livelock"):
            parser.parse(self.LIVELOCK_INPUT)

    def test_livelock_error_is_a_parse_error(self):
        # accepts() and other reject-on-error callers must keep working.
        grammar = load_grammar(self.LIVELOCK_GRAMMAR)
        parser = LRParser(grammar, allow_conflicts=True)
        assert not parser.accepts(self.LIVELOCK_INPUT)

    def test_conflict_free_parses_unaffected(self, parser):
        # The guard must never fire on a terminating parse.
        assert parser.accepts(["(", "ID", "+", "ID", ")", "*", "ID"])


class TestTrace:
    def test_trace_records_actions(self, parser):
        trace: list[TraceEntry] = []
        parser.parse(["ID", "+", "ID"], trace=trace)
        kinds = [entry.action for entry in trace]
        assert kinds.count("shift") == 3
        assert kinds[-1] == "accept"
        assert "reduce" in kinds

    def test_trace_reductions_name_productions(self, parser):
        trace: list[TraceEntry] = []
        parser.parse(["ID"], trace=trace)
        reduce_details = [e.detail for e in trace if e.action == "reduce"]
        assert any("f ::= ID" in d for d in reduce_details)
