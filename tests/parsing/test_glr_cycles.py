"""GLR behaviour on pathological (cyclic / infinitely ambiguous) grammars."""

import pytest

from repro.grammar import load_grammar
from repro.parsing import GLRParser, TooManyParses


class TestCyclicGrammars:
    def test_unit_cycle_hits_cap_not_hang(self):
        # s =>+ s: infinitely many parses of "a"; the configuration cap
        # must fire instead of looping or recursing to death.
        grammar = load_grammar("s : s | 'a' ;")
        glr = GLRParser(grammar, max_configurations=500)
        with pytest.raises(TooManyParses):
            glr.parse_all(["a"])

    def test_epsilon_cycle_hits_cap(self):
        grammar = load_grammar("s : opt s 'a' | 'a' ; opt : %empty ;")
        glr = GLRParser(grammar, max_configurations=2000)
        try:
            parses = glr.parse_all(["a", "a"])
        except TooManyParses:
            return  # acceptable: the cap fired
        assert len(parses) >= 1

    def test_deep_nesting_has_cheap_hashes(self):
        # Deeply nested parse trees must hash in O(1): build a 2000-deep
        # tree via nested parentheses and hash it.
        grammar = load_grammar("e : '(' e ')' | ID ;")
        from repro.parsing import LRParser

        parser = LRParser(grammar)
        depth = 2000
        tokens = ["("] * depth + ["ID"] + [")"] * depth
        tree = parser.parse(tokens)
        assert isinstance(hash(tree), int)
        assert tree.depth() == depth + 2
