"""Tests for the breadth-first GLR parser."""

import pytest

from repro.grammar import load_grammar
from repro.parsing import GLRParser, ParseError, TooManyParses


class TestDeterministicGrammars:
    def test_agrees_with_lr(self, expr_grammar):
        glr = GLRParser(expr_grammar)
        tree = glr.parse(["ID", "+", "ID", "*", "ID"])
        assert [str(s) for s in tree.leaf_symbols()] == ["ID", "+", "ID", "*", "ID"]

    def test_single_parse_on_unambiguous(self, expr_grammar):
        glr = GLRParser(expr_grammar)
        assert len(glr.parse_all(["(", "ID", ")", "*", "ID"])) == 1

    def test_rejects_invalid(self, expr_grammar):
        glr = GLRParser(expr_grammar)
        assert glr.parse_all(["ID", "+"]) == []
        with pytest.raises(ParseError):
            glr.parse(["ID", "+"])


class TestAmbiguousGrammars:
    def test_two_parses_for_associativity(self, ambiguous_expr):
        glr = GLRParser(ambiguous_expr)
        trees = glr.parse_all(["ID", "+", "ID", "+", "ID"])
        assert len(trees) == 2
        assert glr.is_ambiguous_input(["ID", "+", "ID", "+", "ID"])

    def test_parse_raises_on_ambiguity(self, ambiguous_expr):
        glr = GLRParser(ambiguous_expr)
        with pytest.raises(TooManyParses):
            glr.parse(["ID", "+", "ID", "+", "ID"])

    def test_catalan_growth(self, ambiguous_expr):
        glr = GLRParser(ambiguous_expr)
        # Parses of ID (+ ID)^n follow the Catalan numbers: 1, 2, 5, 14.
        counts = [
            len(glr.parse_all(["ID"] + ["+", "ID"] * n)) for n in range(1, 5)
        ]
        assert counts == [1, 2, 5, 14]

    def test_dangling_else_two_parses(self, figure1):
        glr = GLRParser(figure1)
        assign = "arr [ DIGIT ] := DIGIT".split()
        tokens = (
            ["IF", "DIGIT", "THEN", "IF", "DIGIT", "THEN"]
            + assign
            + ["ELSE"]
            + assign
        )
        assert len(glr.parse_all(tokens)) == 2

    def test_unambiguous_input_of_ambiguous_grammar(self, figure1):
        glr = GLRParser(figure1)
        tokens = ["IF", "DIGIT", "THEN"] + "arr [ DIGIT ] := DIGIT".split()
        assert len(glr.parse_all(tokens)) == 1

    def test_configuration_cap(self, ambiguous_expr):
        glr = GLRParser(ambiguous_expr, max_configurations=3)
        with pytest.raises(TooManyParses):
            glr.parse_all(["ID"] + ["+", "ID"] * 8)


class TestNonLALRUnambiguous:
    def test_lr2_grammar_single_parse(self, figure3):
        # figure3 is unambiguous but not LALR(1); GLR still yields exactly
        # one parse for every valid input.
        glr = GLRParser(figure3)
        assert len(glr.parse_all(["a"])) == 1
        assert len(glr.parse_all(["a", "a", "b"])) == 1
        assert len(glr.parse_all(["a", "a", "a", "b"])) == 1
        assert glr.parse_all(["a", "b"]) == []
