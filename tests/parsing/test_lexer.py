"""Tests for the regex lexer."""

import pytest

from repro.grammar import Terminal
from repro.parsing.lexer import LexError, Lexer, Token, keyword_table


@pytest.fixture
def lexer():
    return Lexer(
        rules=[
            (None, r"\s+"),
            (None, r"#[^\n]*"),
            ("NUM", r"[0-9]+"),
            ("ID", r"[a-zA-Z_][a-zA-Z0-9_]*"),
            ("'<='", r"<="),
            ("'<'", r"<"),
            ("'+'", r"\+"),
        ],
        keywords={"if": "IF", "then": "THEN"},
    )


class TestTokenization:
    def test_basic_stream(self, lexer):
        names = [str(t) for t in lexer.tokenize("x + 12")]
        assert names == ["ID", "+", "NUM"]

    def test_whitespace_and_comments_skipped(self, lexer):
        assert [str(t) for t in lexer.tokenize("  x # comment\n y ")] == ["ID", "ID"]

    def test_longest_match_wins(self, lexer):
        assert [str(t) for t in lexer.tokenize("a<=b")] == ["ID", "<=", "ID"]
        assert [str(t) for t in lexer.tokenize("a<b")] == ["ID", "<", "ID"]

    def test_keywords_override(self, lexer):
        assert [str(t) for t in lexer.tokenize("if iffy then")] == [
            "IF",
            "ID",
            "THEN",
        ]

    def test_quoted_rule_names_strip(self, lexer):
        tokens = lexer.tokenize("+")
        assert tokens == [Terminal("+")]

    def test_lex_error(self, lexer):
        with pytest.raises(LexError, match="line 2"):
            lexer.tokenize("x\n@")

    def test_token_metadata(self, lexer):
        tokens = list(lexer.tokens("ab 12"))
        assert tokens[0].text == "ab" and tokens[0].position == 0
        assert tokens[1].text == "12" and tokens[1].position == 3
        assert all(token.line == 1 for token in tokens)

    def test_empty_input(self, lexer):
        assert lexer.tokenize("") == []


class TestKeywordTable:
    def test_both_cases(self):
        table = keyword_table("SELECT", "FROM")
        assert table["select"] == "SELECT"
        assert table["SELECT"] == "SELECT"
        assert table["from"] == "FROM"


class TestEndToEnd:
    def test_lexer_feeds_parser(self, expr_grammar):
        from repro.parsing import LRParser

        lexer = Lexer(
            rules=[
                (None, r"\s+"),
                ("ID", r"[a-z]+"),
                ("'+'", r"\+"),
                ("'*'", r"\*"),
                ("'('", r"\("),
                ("')'", r"\)"),
            ]
        )
        parser = LRParser(expr_grammar)
        tree = parser.parse(lexer.tokenize("(a + b) * c"))
        assert [str(s) for s in tree.leaf_symbols()] == [
            "(", "ID", "+", "ID", ")", "*", "ID",
        ]
