"""Golden verdicts and behavioural guarantees of the SR pair walk.

The non-LALR fixture family gives the walk all three interesting shapes:
merge-artifact conflicts it must prove unambiguous, a genuinely
ambiguous sibling where it must produce a validating witness, and (via
starved budgets) the graceful-degradation path where the only acceptable
answer is ``inconclusive`` — never a wrong verdict, never a crash.
"""

import pytest

from repro.analysis import (
    DEFAULT_MAX_NODES,
    AmbiguityVerdict,
    ConflictAmbiguity,
    SRAutomaton,
    analyze_conflicts,
    annotate_ambiguity,
    walk_conflict,
)
from repro.automaton import build_lalr
from repro.core import CounterexampleFinder
from repro.corpus import all_specs, load
from repro.robust.budget import Budget
from repro.verify import validate_ambiguity_witness


class TestGoldenVerdicts:
    def test_nonlalr01_merge_artifacts_proved_unambiguous(self):
        automaton = build_lalr(load("nonlalr01"))
        verdicts = analyze_conflicts(automaton)
        assert len(verdicts) == 2
        assert all(
            v.verdict is AmbiguityVerdict.UNAMBIGUOUS
            for v in verdicts.values()
        )

    def test_nonlalr02_proved_unambiguous(self):
        automaton = build_lalr(load("nonlalr02"))
        verdicts = analyze_conflicts(automaton)
        assert len(verdicts) == 2
        assert all(
            v.verdict is AmbiguityVerdict.UNAMBIGUOUS
            for v in verdicts.values()
        )

    def test_genuine_sibling_proved_ambiguous(self):
        grammar = load("nonlalr03-genuine")
        automaton = build_lalr(grammar)
        verdicts = analyze_conflicts(automaton)
        assert len(verdicts) == 1
        (verdict,) = verdicts.values()
        assert verdict.verdict is AmbiguityVerdict.AMBIGUOUS
        assert verdict.witness is not None
        # The witness is a real two-derivation sentence, independently
        # re-proved by the Earley recognizer.
        result = validate_ambiguity_witness(grammar, verdict.witness)
        assert result.ok, result.describe()

    def test_walk_is_deterministic(self):
        automaton = build_lalr(load("nonlalr03-genuine"))
        first = analyze_conflicts(automaton)
        second = analyze_conflicts(automaton)
        assert first == second

    def test_every_corpus_conflict_gets_a_verdict(self):
        # A cheap slice of the full-corpus sweep (the CI bench job runs
        # the heavyweight grammars): verdicts partition the conflict set.
        for name in ("figure1", "nonlalr01", "nonlalr03-genuine"):
            automaton = build_lalr(load(name))
            verdicts = analyze_conflicts(automaton)
            assert set(verdicts) == set(automaton.tables.conflicts), name


class TestSoundness:
    def test_no_unambiguous_corpus_grammar_proved_ambiguous(self):
        # ambiguous=False corpus grammars are known unambiguous; a single
        # AMBIGUOUS verdict on one of them is a walker soundness bug.
        for spec in all_specs():
            if spec.ambiguous:
                continue
            automaton = build_lalr(spec.load())
            if not automaton.conflicts:
                continue
            verdicts = analyze_conflicts(automaton)
            assert all(
                v.verdict is not AmbiguityVerdict.AMBIGUOUS
                for v in verdicts.values()
            ), spec.name

    def test_ambiguous_verdicts_always_carry_witnesses(self):
        for name in ("figure1", "nonlalr03-genuine"):
            grammar = load(name)
            automaton = build_lalr(grammar)
            for verdict in analyze_conflicts(automaton).values():
                if verdict.verdict is AmbiguityVerdict.AMBIGUOUS:
                    assert verdict.witness is not None
                    assert validate_ambiguity_witness(
                        grammar, verdict.witness
                    ).ok


class TestBudgets:
    def test_near_zero_budget_is_inconclusive_not_wrong(self):
        # Starving the walk must degrade to INCONCLUSIVE (or, for walks
        # that finish within the first node, the true verdict) — never
        # an AMBIGUOUS claim without a witness, never an exception.
        for name in ("nonlalr01", "nonlalr03-genuine", "figure1"):
            automaton = build_lalr(load(name))
            verdicts = analyze_conflicts(automaton, max_nodes=1)
            for verdict in verdicts.values():
                if verdict.verdict is AmbiguityVerdict.AMBIGUOUS:
                    assert verdict.witness is not None
                else:
                    assert verdict.verdict in (
                        AmbiguityVerdict.INCONCLUSIVE,
                        AmbiguityVerdict.UNAMBIGUOUS,
                    )

    def test_starved_walk_reports_budget_in_detail(self):
        automaton = build_lalr(load("figure1"))
        verdicts = analyze_conflicts(automaton, max_nodes=1)
        assert any(
            v.verdict is AmbiguityVerdict.INCONCLUSIVE
            for v in verdicts.values()
        )

    def test_shared_budget_spends_across_conflicts(self):
        # One external budget covers the whole analysis: once spent,
        # later conflicts go inconclusive instead of restarting fresh.
        automaton = build_lalr(load("nonlalr01"))
        budget = Budget(max_nodes=3, stage="ambiguity")
        verdicts = analyze_conflicts(automaton, budget=budget)
        values = [v.verdict for v in verdicts.values()]
        assert AmbiguityVerdict.INCONCLUSIVE in values

    def test_default_budget_constant_used(self):
        automaton = build_lalr(load("nonlalr01"))
        sr = SRAutomaton(automaton)
        (conflict,) = automaton.tables.conflicts[:1]
        verdict = walk_conflict(sr, conflict)
        assert verdict.nodes <= DEFAULT_MAX_NODES


class TestDescribe:
    def test_describe_strings(self):
        assert "proved unambiguous" in ConflictAmbiguity(
            verdict=AmbiguityVerdict.UNAMBIGUOUS, detail="x"
        ).describe()
        assert "inconclusive" in ConflictAmbiguity(
            verdict=AmbiguityVerdict.INCONCLUSIVE, detail="x"
        ).describe()
        ambiguous = ConflictAmbiguity(
            verdict=AmbiguityVerdict.AMBIGUOUS, witness=()
        ).describe()
        assert "proved ambiguous" in ambiguous


class TestAnnotate:
    def test_annotate_sets_report_fields(self):
        automaton = build_lalr(load("nonlalr03-genuine"))
        summary = CounterexampleFinder(automaton).explain_all()
        mapping = annotate_ambiguity(summary.reports, automaton)
        assert mapping
        for report in summary.reports:
            assert report.ambiguity is not None
            assert report.ambiguity is mapping[report.conflict]

    def test_reports_default_to_no_verdict(self):
        automaton = build_lalr(load("nonlalr03-genuine"))
        summary = CounterexampleFinder(automaton).explain_all()
        assert all(r.ambiguity is None for r in summary.reports)


class TestConflictFree:
    def test_no_conflicts_empty_mapping(self):
        automaton = build_lalr(load("clean-json"))
        assert automaton.tables.conflicts == []
        assert analyze_conflicts(automaton) == {}


@pytest.mark.slow
class TestHeavyCorpus:
    """The grammars the CI bench gate pins, out of the default run."""

    def test_pascal_c2_pinned_verdicts(self):
        automaton = build_lalr(load("C.2"))
        verdicts = analyze_conflicts(automaton)
        counts = {"unambiguous": 0, "ambiguous": 0, "inconclusive": 0}
        for verdict in verdicts.values():
            counts[verdict.verdict.value] += 1
        assert counts == {"unambiguous": 0, "ambiguous": 0, "inconclusive": 7}
