"""Scheduler behaviour: stealing, retries, resume, crash recovery.

Scheduling-logic tests stub out unit execution (they exercise queues,
ledgers, and bookkeeping, not the analyses); the crash-recovery test at
the bottom kill -9s a real ``campaign run`` subprocess mid-campaign and
checks the resume contract end to end.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.campaign.scheduler as scheduler_module
from repro.campaign.report import merge_shard_documents, render_report
from repro.campaign.runner import UnitResult
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.units import CampaignSpec

SPEC = CampaignSpec(fuzz_iterations=6, corpus=("g1", "g2"), bench=("g3",))


def _stub_execute(unit, spec, cache=None, attempt=1):
    return UnitResult(
        unit_id=unit.id,
        outcome="ok",
        payload={"key": unit.key},
        telemetry={"elapsed_s": 0.0, "cache_hits": 0, "cache_misses": 0},
        attempt=attempt,
    )


@pytest.fixture
def stub_units(monkeypatch):
    monkeypatch.setattr(scheduler_module, "execute_unit", _stub_execute)


class TestScheduling:
    def test_single_shard_covers_the_plan(self, tmp_path, stub_units):
        path = CampaignScheduler(SPEC, tmp_path).run_shard((1, 1))
        document = json.loads(path.read_text())
        assert len(document["units"]) == 9
        assert document["campaign"] == SPEC.digest()
        assert document["telemetry"]["executed"] == 9

    def test_local_shards_partition_without_overlap(self, tmp_path, stub_units):
        paths = CampaignScheduler(SPEC, tmp_path).run_local(3)
        documents = [json.loads(path.read_text()) for path in paths]
        ids = [uid for doc in documents for uid in doc["units"]]
        assert len(ids) == len(set(ids)) == 9

    def test_worker_steals_from_the_straggler(self, tmp_path, stub_units):
        # Pre-complete all of shard 2's units: its worker slot must then
        # steal from shard 1 instead of idling.
        scheduler = CampaignScheduler(SPEC, tmp_path)
        run2 = scheduler._prepare(scheduler_module.select_shard(SPEC, (2, 2)))
        while run2.pending:
            unit = run2.pending.popleft()
            run2.ledger.mark_running(unit, 1)
            run2.ledger.mark_done(_stub_execute(unit, SPEC))
        paths = scheduler.run_local(2)
        documents = {
            json.loads(p.read_text())["shard"][0]: json.loads(p.read_text())
            for p in paths
        }
        assert documents[2]["telemetry"]["resumed"] == len(documents[2]["units"])
        # Shard 1's queue was partly drained by shard 2's idle slot.
        assert documents[1]["telemetry"]["stolen"] > 0
        assert documents[1]["telemetry"]["executed"] == len(documents[1]["units"])

    def test_resume_skips_terminal_units(self, tmp_path, stub_units):
        CampaignScheduler(SPEC, tmp_path).run_shard((1, 1))
        path = CampaignScheduler(SPEC, tmp_path).run_shard((1, 1))
        document = json.loads(path.read_text())
        assert document["telemetry"]["resumed"] == 9
        assert document["telemetry"]["executed"] == 0

    def test_foreign_ledger_is_rejected(self, tmp_path, stub_units):
        CampaignScheduler(SPEC, tmp_path).run_shard((1, 1))
        other = CampaignSpec(fuzz_iterations=1)
        with pytest.raises(ValueError, match="different campaign"):
            CampaignScheduler(other, tmp_path).run_shard((1, 1))

    def test_error_units_are_retried_and_flagged_as_flaky(
        self, tmp_path, monkeypatch
    ):
        failures = {"fuzz:00000000": 1}

        def flaky_execute(unit, spec, cache=None, attempt=1):
            if failures.get(unit.id, 0) >= attempt:
                return UnitResult(unit.id, "error", {"error_type": "Boom"},
                                  {}, attempt)
            return _stub_execute(unit, spec, cache, attempt)

        monkeypatch.setattr(scheduler_module, "execute_unit", flaky_execute)
        spec = CampaignSpec(fuzz_iterations=2)
        path = CampaignScheduler(spec, tmp_path, retries=1).run_shard((1, 1))
        document = json.loads(path.read_text())
        assert document["units"]["fuzz:00000000"]["outcome"] == "ok"
        assert document["units"]["fuzz:00000000"]  # final result recorded
        assert document["telemetry"]["retried"] == 1
        # The error attempt and the ok attempt disagree → flake ledger.
        assert "fuzz:00000000" in document["flakes"]

    def test_retries_exhausted_keeps_the_error_result(self, tmp_path, monkeypatch):
        def always_fail(unit, spec, cache=None, attempt=1):
            return UnitResult(unit.id, "error", {"error_type": "Boom"}, {}, attempt)

        monkeypatch.setattr(scheduler_module, "execute_unit", always_fail)
        spec = CampaignSpec(fuzz_iterations=1)
        path = CampaignScheduler(spec, tmp_path, retries=2).run_shard((1, 1))
        document = json.loads(path.read_text())
        result = document["units"]["fuzz:00000000"]
        assert result["outcome"] == "error"
        assert document["telemetry"]["retried"] == 2


class TestProcessPool:
    def test_pool_mode_matches_sequential_bytes(self, tmp_path):
        # Real (tiny) campaign: corpus analyses only, which are fast.
        spec = CampaignSpec(corpus=("figure1", "abcd"))
        seq = CampaignScheduler(spec, tmp_path / "seq").run_shard((1, 1))
        pool = CampaignScheduler(spec, tmp_path / "pool", jobs=2).run_shard((1, 1))
        seq_report, _ = merge_shard_documents([json.loads(seq.read_text())])
        pool_report, _ = merge_shard_documents([json.loads(pool.read_text())])
        assert render_report(seq_report) == render_report(pool_report)


class TestKillResume:
    """kill -9 a mid-campaign shard; resume must finish the job."""

    CMD = [
        sys.executable,
        "-m",
        "repro",
        "campaign",
        "run",
        "--fuzz-iterations",
        "8",
        "--corpus",
        "figure1",
        "--quiet",
    ]

    def _env(self):
        env = dict(os.environ)
        repo = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(repo / "src")
        return env

    def _merge(self, out: Path) -> str:
        documents = [
            json.loads(path.read_text())
            for path in sorted(out.glob("shard-*.json"))
            if not path.name.endswith(".tmp")
        ]
        report, _ = merge_shard_documents(documents)
        return render_report(report)

    def test_killed_shard_resumes_without_rerunning_terminal_units(
        self, tmp_path
    ):
        out = tmp_path / "killed"
        ledger = out / "shard-1-of-1.ledger.jsonl"
        process = subprocess.Popen(
            self.CMD + ["--out", str(out), "--shard", "1/1"],
            env=self._env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until at least one unit is terminal, then SIGKILL:
            # no drain, no atexit, nothing — the ledger is all that's left.
            deadline = time.time() + 120.0
            while time.time() < deadline:
                if ledger.exists() and '"state":"done"' in ledger.read_text():
                    break
                time.sleep(0.05)
            else:
                pytest.fail("campaign never completed a unit")
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)

        completed_before = sum(
            1
            for line in ledger.read_text().splitlines()
            if '"state":"done"' in line
        )
        assert completed_before >= 1

        # Resume: identical command, same --out.
        resumed = subprocess.run(
            self.CMD + ["--out", str(out), "--shard", "1/1"],
            env=self._env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        document = json.loads((out / "shard-1-of-1.json").read_text())
        # Only non-terminal units re-ran.
        assert document["telemetry"]["resumed"] == completed_before
        assert document["telemetry"]["executed"] == 9 - completed_before
        assert len(document["units"]) == 9

        # And the merged report is byte-identical to an uninterrupted run.
        clean_out = tmp_path / "clean"
        clean = subprocess.run(
            self.CMD + ["--out", str(clean_out), "--shard", "1/1"],
            env=self._env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert clean.returncode == 0, clean.stderr
        assert self._merge(out) == self._merge(clean_out)
