"""Shard ledger crash-safety: replay, interruption, flake history."""

from __future__ import annotations

from repro.campaign.ledger import ShardLedger
from repro.campaign.runner import UnitResult
from repro.campaign.units import fuzz_unit
from repro.robust.faults import FaultKind, FaultSpec, inject_faults


def _result(unit_id: str, payload: dict, attempt: int = 1) -> UnitResult:
    return UnitResult(unit_id, "ok", payload, {"elapsed_s": 0.1}, attempt)


class TestReplay:
    def test_done_units_are_terminal(self, tmp_path):
        ledger = ShardLedger(tmp_path / "s.jsonl")
        unit = fuzz_unit(1)
        ledger.mark_running(unit, 1)
        ledger.mark_done(_result(unit.id, {"x": 1}))
        state = ledger.replay()
        assert set(state.completed) == {unit.id}
        assert state.interrupted == {}
        assert state.completed[unit.id].payload == {"x": 1}

    def test_running_units_are_interrupted(self, tmp_path):
        ledger = ShardLedger(tmp_path / "s.jsonl")
        done, lost = fuzz_unit(1), fuzz_unit(2)
        ledger.mark_running(done, 1)
        ledger.mark_done(_result(done.id, {}))
        ledger.mark_running(lost, 1)  # killed before mark_done
        state = ledger.replay()
        assert set(state.completed) == {done.id}
        assert state.interrupted == {lost.id: 1}

    def test_torn_done_line_degrades_to_interrupted(self, tmp_path):
        ledger = ShardLedger(tmp_path / "s.jsonl")
        unit = fuzz_unit(1)
        ledger.mark_running(unit, 1)
        with inject_faults(FaultSpec(point="journal", kind=FaultKind.TORN_WRITE)):
            ledger.mark_done(_result(unit.id, {"x": 1}))
        assert ledger.torn_writes == 1
        state = ledger.replay()
        # The intact `running` snapshot wins: the unit re-runs.
        assert state.completed == {}
        assert state.interrupted == {unit.id: 1}


class TestFlakes:
    def test_agreeing_attempts_are_not_flaky(self, tmp_path):
        ledger = ShardLedger(tmp_path / "s.jsonl")
        unit = fuzz_unit(1)
        for attempt in (1, 2):
            ledger.mark_running(unit, attempt)
            ledger.mark_done(_result(unit.id, {"x": 1}, attempt))
        assert ledger.replay().flaky_units() == {}

    def test_disagreeing_attempts_are_flagged(self, tmp_path):
        ledger = ShardLedger(tmp_path / "s.jsonl")
        unit = fuzz_unit(1)
        ledger.mark_running(unit, 1)
        ledger.mark_done(_result(unit.id, {"x": 1}, 1))
        ledger.mark_running(unit, 2)
        ledger.mark_done(_result(unit.id, {"x": 2}, 2))
        flakes = ledger.replay().flaky_units()
        assert set(flakes) == {unit.id}
        assert len(flakes[unit.id]) == 2
        assert len(set(flakes[unit.id])) == 2
