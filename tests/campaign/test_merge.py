"""Merging shard files: validation, aggregation, gating, rendering."""

from __future__ import annotations

import json

import pytest

from repro.campaign.report import (
    MergeError,
    check_report,
    merge_shard_documents,
    render_report,
    render_summary_markdown,
)
from repro.campaign.runner import UnitResult
from repro.campaign.units import SCHEMA, CampaignSpec, partition_units, plan_units

SPEC = CampaignSpec(fuzz_iterations=4)


def _document(shard, units, *, spec=SPEC, flakes=None):
    return {
        "schema": SCHEMA,
        "campaign": spec.digest(),
        "spec": spec.to_json(),
        "shard": list(shard),
        "units": units,
        "flakes": flakes or {},
        "telemetry": {"executed": len(units), "cache_hits": 1},
    }


def _entry(payload=None, outcome="ok"):
    result = UnitResult("x", outcome, payload or {})
    return {
        "outcome": outcome,
        "payload": result.payload,
        "digest": result.digest(),
    }


def _documents(spec=SPEC, shards=2):
    parts = partition_units(plan_units(spec), shards)
    return [
        _document(
            (k + 1, shards),
            {unit.id: _entry({"conflicts": 1}) for unit in part},
            spec=spec,
        )
        for k, part in enumerate(parts)
    ]


class TestValidation:
    def test_merge_happy_path(self):
        report, telemetry = merge_shard_documents(_documents())
        assert len(report["units"]) == 4
        assert telemetry["shard_count"] == 2
        assert telemetry["totals"]["cache_hits"] == 2

    def test_wrong_schema_rejected(self):
        docs = _documents()
        docs[0]["schema"] = "bogus/9"
        with pytest.raises(MergeError, match="schema"):
            merge_shard_documents(docs)

    def test_campaign_mismatch_rejected(self):
        other = CampaignSpec(fuzz_iterations=5)
        with pytest.raises(MergeError, match="campaign digest mismatch"):
            merge_shard_documents([_documents()[0], _documents(other, 2)[1]])

    def test_missing_shard_rejected(self):
        with pytest.raises(MergeError, match="shard set"):
            merge_shard_documents(_documents()[:1])

    def test_duplicate_unit_rejected(self):
        docs = _documents()
        dupe = next(iter(docs[0]["units"]))
        docs[1]["units"][dupe] = docs[0]["units"][dupe]
        with pytest.raises(MergeError, match="more than one shard"):
            merge_shard_documents(docs)

    def test_coverage_hole_rejected(self):
        docs = _documents()
        docs[1]["units"].popitem()
        with pytest.raises(MergeError, match="missing from all shards"):
            merge_shard_documents(docs)

    def test_forged_digest_rejected(self):
        docs = _documents()
        docs[0]["campaign"] = "0" * 16
        docs[1]["campaign"] = "0" * 16
        with pytest.raises(MergeError, match="does not match the embedded spec"):
            merge_shard_documents(docs)


class TestAggregatesAndGate:
    def test_fuzz_counters_sum_across_units(self):
        docs = _documents()
        for doc in docs:
            for entry in doc["units"].values():
                entry["payload"] = {"conflicts": 2, "ambiguity": {"ambiguous": 1}}
                entry["digest"] = UnitResult("x", "ok", entry["payload"]).digest()
        report, _ = merge_shard_documents(docs)
        assert report["aggregates"]["fuzz"]["conflicts"] == 8
        assert report["aggregates"]["fuzz"]["ambiguity"] == {"ambiguous": 4}

    def test_clean_report_passes_the_gate(self):
        report, _ = merge_shard_documents(_documents())
        assert check_report(report) == []

    def test_error_units_fail_the_gate(self):
        docs = _documents()
        uid = next(iter(docs[0]["units"]))
        docs[0]["units"][uid] = _entry(
            {"error_type": "Boom", "error": "bad"}, outcome="error"
        )
        report, _ = merge_shard_documents(docs)
        failures = check_report(report)
        assert any("errored" in failure for failure in failures)

    def test_flakes_fail_the_gate(self):
        docs = _documents()
        docs[0]["flakes"] = {"fuzz:00000000": ["aaaa", "bbbb"]}
        report, _ = merge_shard_documents(docs)
        assert any("flaky" in failure for failure in check_report(report))

    def test_pinned_counters_catch_drift(self):
        report, _ = merge_shard_documents(_documents())
        assert check_report(report, expect={"fuzz.conflicts": 4}) == []
        assert any(
            "pinned" in failure
            for failure in check_report(report, expect={"fuzz.conflicts": 99})
        )
        assert any(
            "missing" in failure
            for failure in check_report(report, expect={"no.such.counter": 1})
        )


class TestRendering:
    def test_render_is_byte_stable_and_shard_free(self):
        one = merge_shard_documents(_documents(shards=1))[0]
        two = merge_shard_documents(_documents(shards=2))[0]
        four = merge_shard_documents(_documents(shards=4))[0]
        assert render_report(one) == render_report(two) == render_report(four)
        json.loads(render_report(one))  # stays valid JSON

    def test_summary_markdown_has_the_shard_table(self):
        report, telemetry = merge_shard_documents(_documents())
        summary = render_summary_markdown(report, telemetry)
        assert "| shard |" in summary
        assert "| 1-2 |" in summary and "| 2-2 |" in summary
        assert "2 shard(s)" in summary
