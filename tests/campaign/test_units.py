"""Campaign specs, unit addressing, and sharding arithmetic."""

from __future__ import annotations

import pytest

from repro.campaign.units import (
    CampaignSpec,
    WorkUnit,
    fuzz_unit,
    parse_shard,
    partition_units,
    plan_units,
    select_shard,
)

SPEC = CampaignSpec(
    fuzz_iterations=5, fuzz_seed=100, corpus=("figure1", "abcd"), bench=("eqn",)
)


class TestUnits:
    def test_fuzz_ids_zero_pad_to_numeric_order(self):
        assert fuzz_unit(7).id == "fuzz:00000007"
        ids = [fuzz_unit(seed).id for seed in (2, 10, 100)]
        assert ids == sorted(ids)

    def test_id_roundtrip(self):
        for unit in plan_units(SPEC):
            assert WorkUnit.from_id(unit.id) == unit
            assert WorkUnit.from_json(unit.to_json()) == unit

    def test_unknown_kind_and_malformed_id_rejected(self):
        with pytest.raises(ValueError):
            WorkUnit.from_json({"kind": "mystery", "key": "x"})
        with pytest.raises(ValueError):
            WorkUnit.from_id("no-colon")


class TestSpec:
    def test_json_roundtrip_preserves_digest(self):
        again = CampaignSpec.from_json(SPEC.to_json())
        assert again == SPEC
        assert again.digest() == SPEC.digest()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            CampaignSpec.from_json({"fuzz_iterationz": 3})

    def test_digest_tracks_content(self):
        other = CampaignSpec.from_json({**SPEC.to_json(), "fuzz_seed": 101})
        assert other.digest() != SPEC.digest()


class TestPlanning:
    def test_plan_order_is_fuzz_then_corpus_then_bench(self):
        ids = [unit.id for unit in plan_units(SPEC)]
        assert ids == [
            "fuzz:00000100",
            "fuzz:00000101",
            "fuzz:00000102",
            "fuzz:00000103",
            "fuzz:00000104",
            "corpus:figure1",
            "corpus:abcd",
            "bench:eqn",
        ]

    def test_duplicate_units_rejected(self):
        duplicated = CampaignSpec(corpus=("figure1", "figure1"))
        with pytest.raises(ValueError, match="duplicate unit"):
            plan_units(duplicated)


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("2/4") == (2, 4)
        for bad in ("", "3", "0/4", "5/4", "a/b", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 8, 20])
    def test_partition_is_exact_and_disjoint(self, shards):
        units = plan_units(SPEC)
        parts = partition_units(units, shards)
        assert len(parts) == shards
        flat = [unit.id for part in parts for unit in part]
        assert sorted(flat) == sorted(unit.id for unit in units)
        # Round-robin: shard k holds units[k-1::shards] in plan order.
        for k, part in enumerate(parts):
            assert part == units[k::shards]

    def test_select_shard_names(self):
        selection = select_shard(SPEC, (2, 4))
        assert selection.name == "shard-2-of-4"
        assert all(unit in plan_units(SPEC) for unit in selection.units)
        with pytest.raises(ValueError):
            select_shard(SPEC, (5, 4))
