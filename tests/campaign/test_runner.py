"""Unit execution: determinism, payload/telemetry split, error capture."""

from __future__ import annotations

from repro.campaign.runner import UnitResult, execute_unit
from repro.campaign.units import CampaignSpec, WorkUnit, fuzz_unit

FAST_SPEC = CampaignSpec(fuzz_iterations=1, fuzz_seed=3, corpus=("figure1",))


class TestUnitResult:
    def test_digest_covers_only_the_deterministic_half(self):
        base = UnitResult("fuzz:00000001", "ok", {"conflicts": 2}, {"t": 1.0})
        same_payload = UnitResult(
            "fuzz:00000001", "ok", {"conflicts": 2}, {"t": 9.9}, attempt=4
        )
        differs = UnitResult("fuzz:00000001", "ok", {"conflicts": 3})
        assert base.digest() == same_payload.digest()
        assert base.digest() != differs.digest()

    def test_json_roundtrip(self):
        result = UnitResult("corpus:abcd", "ok", {"a": 1}, {"b": 2}, attempt=2)
        again = UnitResult.from_json(result.to_json())
        assert again == result
        assert result.to_json()["digest"] == result.digest()


class TestExecution:
    def test_fuzz_unit_payload_is_seed_deterministic(self):
        unit = fuzz_unit(3)
        first = execute_unit(unit, FAST_SPEC)
        second = execute_unit(unit, FAST_SPEC, attempt=2)
        assert first.outcome == "ok"
        assert first.digest() == second.digest()
        # Telemetry may disagree (timings); the payload must not.
        assert first.payload == second.payload
        assert "elapsed_s" in first.telemetry

    def test_corpus_unit_reports_all_three_analyses(self):
        result = execute_unit(WorkUnit("corpus", "figure1"), FAST_SPEC)
        assert result.outcome == "ok"
        payload = result.payload
        assert payload["grammar"] == "figure1"
        assert payload["conflicts"] >= 1
        assert set(payload["lint"]) == {"info", "warning", "error"}
        assert set(payload["ambiguity"]) == {
            "unambiguous",
            "ambiguous",
            "inconclusive",
        }
        assert set(payload["provenance"]) == {
            "genuine",
            "merge_artifact",
            "unknown",
        }
        assert sum(payload["provenance"].values()) == payload["conflicts"]

    def test_unknown_grammar_becomes_an_error_result_not_an_exception(self):
        result = execute_unit(WorkUnit("corpus", "no-such-grammar"), FAST_SPEC)
        assert result.outcome == "error"
        assert result.payload["error_type"]
        assert "traceback" in result.telemetry

    def test_cache_deltas_are_recorded(self, tmp_path):
        from repro.perf.cache import AutomatonCache

        cache = AutomatonCache(tmp_path / "cache")
        unit = WorkUnit("corpus", "figure1")
        cold = execute_unit(unit, FAST_SPEC, cache)
        warm = execute_unit(unit, FAST_SPEC, cache)
        assert cold.telemetry["cache_misses"] > 0
        assert warm.telemetry["cache_hits"] > 0
        assert warm.telemetry["cache_misses"] == 0
        assert cold.digest() == warm.digest()  # cache must not change results
