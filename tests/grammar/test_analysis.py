"""Tests for nullable/FIRST/FOLLOW and the derivation oracles."""

import pytest

from repro.grammar import (
    END_OF_INPUT,
    GrammarAnalysis,
    GrammarBuilder,
    Nonterminal,
    Terminal,
    load_grammar,
)


def analyze(text: str) -> GrammarAnalysis:
    return GrammarAnalysis(load_grammar(text))


@pytest.fixture
def dragon():
    """The classic nullable/FIRST/FOLLOW example (Dragon book 4.2)."""
    return analyze(
        """
        %start E
        E : T Ep ;
        Ep : '+' T Ep | %empty ;
        T : F Tp ;
        Tp : '*' F Tp | %empty ;
        F : '(' E ')' | ID ;
        """
    )


class TestNullable:
    def test_dragon_nullable(self, dragon):
        names = {str(n) for n in dragon.nullable}
        assert names == {"Ep", "Tp"}

    def test_transitive_nullable(self):
        analysis = analyze("a : b b ; b : c ; c : %empty ;")
        assert {str(n) for n in analysis.nullable} == {"a", "b", "c"}

    def test_no_nullable(self, expr_grammar=None):
        analysis = analyze("s : 'a' ;")
        assert not analysis.nullable


class TestFirst:
    def test_dragon_first(self, dragon):
        def first(name):
            return {str(t) for t in dragon.first[Nonterminal(name)]}

        assert first("E") == {"(", "ID"}
        assert first("T") == {"(", "ID"}
        assert first("F") == {"(", "ID"}
        assert first("Ep") == {"+"}
        assert first("Tp") == {"*"}

    def test_terminal_first_is_self(self, dragon):
        assert dragon.first[Terminal("+")] == frozenset({Terminal("+")})

    def test_first_of_sequence_with_nullables(self, dragon):
        ep, t = Nonterminal("Ep"), Nonterminal("T")
        first, nullable = dragon.first_of_sequence_ex((ep, t))
        assert Terminal("+") in first
        assert Terminal("ID") in first  # reachable because Ep is nullable
        assert not nullable

    def test_first_of_sequence_tail(self, dragon):
        ep = Nonterminal("Ep")
        result = dragon.first_of_sequence((ep,), tail=(Terminal("END"),))
        assert Terminal("END") in result
        assert Terminal("+") in result

    def test_empty_sequence_is_tail(self, dragon):
        assert dragon.first_of_sequence((), tail=(Terminal("x"),)) == frozenset(
            {Terminal("x")}
        )


class TestFollow:
    def test_dragon_follow(self, dragon):
        def follow(name):
            return {str(t) for t in dragon.follow[Nonterminal(name)]}

        assert follow("E") == {")", "$"}
        assert follow("Ep") == {")", "$"}
        assert follow("T") == {"+", ")", "$"}
        assert follow("Tp") == {"+", ")", "$"}
        assert follow("F") == {"+", "*", ")", "$"}

    def test_start_followed_by_eof(self, dragon):
        assert END_OF_INPUT in dragon.follow[Nonterminal("E")]


class TestPreciseFollow:
    def test_last_symbol_returns_context(self, figure1):
        analysis = GrammarAnalysis(figure1)
        production = next(
            p for p in figure1.user_productions() if len(p.rhs) == 6
        )  # arr [ expr ] := expr
        context = frozenset({Terminal("DIGIT")})
        assert analysis.precise_follow(production, 5, context) == context

    def test_terminal_after_next(self, figure1):
        analysis = GrammarAnalysis(figure1)
        production = next(
            p
            for p in figure1.user_productions()
            if len(p.rhs) == 6 and str(p.rhs[0]) == "IF"
        )  # IF expr THEN stmt ELSE stmt
        # Item: stmt -> IF . expr THEN ...: follow of expr is {THEN}.
        result = analysis.precise_follow(production, 1, frozenset())
        assert result == frozenset({Terminal("THEN")})

    def test_requires_symbol_after_dot(self, figure1):
        analysis = GrammarAnalysis(figure1)
        production = next(iter(figure1.user_productions()))
        with pytest.raises(ValueError):
            analysis.precise_follow(production, len(production.rhs), frozenset())

    def test_nullable_cascade(self):
        analysis = analyze("s : A opt 'z' ; opt : 'o' | %empty ; A : 'a' ;")
        production = next(
            p for p in analysis.grammar.user_productions() if len(p.rhs) == 3
        )
        # Item: s -> . A opt 'z': follow of A = FIRST(opt) ∪ FIRST(z).
        result = analysis.precise_follow(production, 0, frozenset())
        assert result == frozenset({Terminal("o"), Terminal("z")})


class TestExpansionOracles:
    def test_shortest_expansion_terminal(self, dragon):
        assert dragon.shortest_expansion(Terminal("+")) == (Terminal("+"),)

    def test_shortest_expansion_nonterminal(self, dragon):
        assert dragon.shortest_expansion(Nonterminal("F")) == (Terminal("ID"),)
        assert dragon.shortest_expansion(Nonterminal("E")) == (Terminal("ID"),)

    def test_shortest_expansion_nullable(self, dragon):
        assert dragon.shortest_expansion(Nonterminal("Ep")) == ()

    def test_shortest_expansion_cyclic_terminates(self):
        analysis = analyze("s : s | 'a' ;")
        assert analysis.shortest_expansion(Nonterminal("s")) == (Terminal("a"),)

    def test_shortest_expansion_nonproductive_raises(self):
        analysis = analyze("s : 'a' | loop ; loop : loop 'x' ;")
        with pytest.raises(ValueError):
            analysis.shortest_expansion(Nonterminal("loop"))

    def test_min_yield_length(self, dragon):
        assert analysisval(dragon, "F") == 1.0
        assert analysisval(dragon, "Ep") == 0.0

    def test_starter_production(self, dragon):
        step = dragon.starter_production(Nonterminal("E"), Terminal("("))
        assert step is not None
        production, position = step
        assert production.lhs == Nonterminal("E")
        assert position == 0

    def test_starter_none_when_not_in_first(self, dragon):
        assert dragon.starter_production(Nonterminal("E"), Terminal("+")) is None

    def test_starter_skips_nullable_prefix(self):
        analysis = analyze("s : opt 'z' ; opt : 'o' | %empty ;")
        step = analysis.starter_production(Nonterminal("s"), Terminal("z"))
        assert step is not None
        production, position = step
        assert position == 1  # opt must derive epsilon first

    def test_nullable_production(self, dragon):
        production = analysis_nullable(dragon, "Ep")
        assert production.rhs == ()


class TestFirstSymbols:
    def test_includes_self(self, dragon):
        assert Nonterminal("E") in dragon.first_symbols[Nonterminal("E")]

    def test_includes_leading_nonterminals(self, dragon):
        firsts = dragon.first_symbols[Nonterminal("E")]
        assert Nonterminal("T") in firsts
        assert Nonterminal("F") in firsts
        assert Terminal("ID") in firsts

    def test_excludes_non_leading(self, dragon):
        firsts = dragon.first_symbols[Nonterminal("E")]
        assert Terminal("+") not in firsts

    def test_nullable_prefix_cascades(self):
        analysis = analyze("s : opt 'z' ; opt : 'o' | %empty ;")
        firsts, nullable = analysis.first_symbols_of_sequence(
            (Nonterminal("opt"), Terminal("z"))
        )
        assert Terminal("z") in firsts
        assert Terminal("o") in firsts
        assert not nullable


def analysisval(analysis: GrammarAnalysis, name: str) -> float:
    return analysis.min_yield_length(Nonterminal(name))


def analysis_nullable(analysis: GrammarAnalysis, name: str):
    return analysis.nullable_production(Nonterminal(name))
