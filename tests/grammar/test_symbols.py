"""Tests for grammar symbols."""

import pytest

from repro.grammar import END_OF_INPUT, Nonterminal, Symbol, Terminal
from repro.grammar.symbols import as_symbol


class TestInterning:
    def test_same_name_same_object(self):
        assert Terminal("x") is Terminal("x")
        assert Nonterminal("x") is Nonterminal("x")

    def test_terminal_and_nonterminal_distinct(self):
        assert Terminal("x") is not Nonterminal("x")
        assert Terminal("x") != Nonterminal("x")

    def test_symbol_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            Symbol("x")


class TestProperties:
    def test_kind_predicates(self):
        assert Terminal("a").is_terminal
        assert not Terminal("a").is_nonterminal
        assert Nonterminal("A").is_nonterminal
        assert not Nonterminal("A").is_terminal

    def test_str_is_name(self):
        assert str(Terminal("while")) == "while"
        assert str(Nonterminal("stmt")) == "stmt"

    def test_repr_shows_kind(self):
        assert repr(Terminal("a")) == "Terminal('a')"
        assert repr(Nonterminal("A")) == "Nonterminal('A')"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Terminal("a").name = "b"

    def test_end_of_input_is_terminal(self):
        assert END_OF_INPUT.is_terminal
        assert str(END_OF_INPUT) == "$"


class TestOrdering:
    def test_terminals_sort_before_nonterminals(self):
        assert Terminal("z") < Nonterminal("a")

    def test_same_kind_sorts_by_name(self):
        assert Terminal("a") < Terminal("b")
        assert Nonterminal("A") < Nonterminal("B")

    def test_sorted_is_deterministic(self):
        symbols = [Nonterminal("B"), Terminal("x"), Nonterminal("A"), Terminal("a")]
        assert [str(s) for s in sorted(symbols)] == ["a", "x", "A", "B"]


class TestAsSymbol:
    def test_resolves_by_membership(self):
        assert as_symbol("stmt", {"stmt"}) == Nonterminal("stmt")
        assert as_symbol("IF", {"stmt"}) == Terminal("IF")

    def test_passthrough(self):
        t = Terminal("t")
        assert as_symbol(t, {"t"}) is t
