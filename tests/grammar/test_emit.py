"""Tests for the grammar DSL emitter (round-trip with the loader)."""

import pytest

from repro.grammar import Terminal, load_grammar
from repro.grammar.emit import dump_grammar


def roundtrip(grammar):
    return load_grammar(dump_grammar(grammar))


def production_signature(grammar):
    """Productions in global index order. Order matters: yacc defaults
    resolve reduce/reduce conflicts toward the earliest production, and
    the emitter preserves it by starting a new rule block whenever the
    left-hand side changes."""
    return [
        (
            str(p.lhs),
            tuple(str(s) for s in p.rhs),
            None if p.prec_override is None else str(p.prec_override),
        )
        for p in grammar.user_productions()
    ]


class TestRoundTrip:
    def test_figure1(self, figure1):
        reloaded = roundtrip(figure1)
        assert production_signature(reloaded) == production_signature(figure1)
        assert reloaded.start == figure1.start
        assert reloaded.name == figure1.name

    def test_epsilon_productions(self):
        grammar = load_grammar("s : 'a' s | %empty ;")
        reloaded = roundtrip(grammar)
        assert production_signature(reloaded) == production_signature(grammar)

    def test_quoted_terminals(self):
        grammar = load_grammar("s : '(' s ')' | ':=' | ID ;")
        reloaded = roundtrip(grammar)
        assert production_signature(reloaded) == production_signature(grammar)

    def test_precedence_preserved(self):
        grammar = load_grammar(
            """
            %left '+' '-'
            %left '*'
            %right POW
            e : e '+' e | e '*' e | e POW e | '-' e %prec POW | ID ;
            """
        )
        reloaded = roundtrip(grammar)
        assert production_signature(reloaded) == production_signature(grammar)
        for name in ("+", "-", "*", "POW"):
            original = grammar.precedence.level_of(Terminal(name))
            restored = reloaded.precedence.level_of(Terminal(name))
            assert original.associativity == restored.associativity
        # Relative ranks preserved.
        assert (
            reloaded.precedence.level_of(Terminal("+")).rank
            < reloaded.precedence.level_of(Terminal("*")).rank
            < reloaded.precedence.level_of(Terminal("POW")).rank
        )

    def test_same_conflicts_after_roundtrip(self, figure1):
        from repro.automaton import build_lalr

        original = build_lalr(figure1)
        reloaded = build_lalr(roundtrip(figure1))
        assert len(original.conflicts) == len(reloaded.conflicts)
        assert len(original.states) == len(reloaded.states)

    @pytest.mark.parametrize(
        "corpus_name", ["figure3", "figure7", "abcd", "xi", "SQL.1", "Java.1"]
    )
    def test_corpus_roundtrips(self, corpus_name):
        from repro.corpus import load as load_corpus

        grammar = load_corpus(corpus_name)
        reloaded = roundtrip(grammar)
        assert production_signature(reloaded) == production_signature(grammar)


class TestRendering:
    def test_interleaved_production_order_preserved(self):
        # Regression (found by the DSL round-trip property test): the
        # emitter used to regroup productions by nonterminal, silently
        # renumbering them and changing reduce/reduce resolution.
        grammar = load_grammar("a : 'x' ; b : 'y' ; a : 'z' ;")
        assert production_signature(roundtrip(grammar)) == [
            ("a", ("x",), None),
            ("b", ("y",), None),
            ("a", ("z",), None),
        ]

    def test_groups_alternatives(self, expr_grammar):
        text = dump_grammar(expr_grammar)
        assert text.count("e :") == 1
        assert "| t" in text

    def test_empty_rendered_as_directive(self):
        grammar = load_grammar("s : 'a' | %empty ;")
        assert "%empty" in dump_grammar(grammar)

    def test_start_and_name_directives(self, figure1):
        text = dump_grammar(figure1)
        assert "%grammar figure1" in text
        assert "%start stmt" in text
